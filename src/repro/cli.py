"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate   compile mini-C to x86, translate to Arm, optionally run both
lift        show the lifted (optionally refined) LIR of a mini-C program
evaluate    run the Phoenix evaluation and print the §9 tables
litmus      enumerate outcomes of a named litmus test under a model
validate    fuzz-driven differential validation of the whole pipeline
tv          per-pass translation validation: prove each optimization
            pass invocation refines its input (exit 1 on refuted)
analyze     static analysis: escape/alias report, LIMM fencecheck linter
explain     instruction provenance: fence blame, x86/LIR/Arm map, coverage
stats       per-stage / per-pass telemetry breakdown for one program
profile     sampling profiler + deterministic work counters + memory
bench       write the BENCH_translate.json perf baseline; ``--compare``
            gates against the trajectory (exit 3 on regression)
warehouse   ingest bench/profile/ledger artifacts into the sqlite
            warehouse (``.repro/warehouse.sqlite``); ``runs`` lists them
diff        ranked deltas between two warehouse runs (time with a
            noise/work-change verdict, work cells, fence tiers, passes,
            flamegraph frames); exit 2 on unresolvable runs
dash        render the warehouse to one self-contained HTML dashboard
ledger      show run-ledger activity; ``--gc`` compacts the file

``translate``, ``evaluate`` and ``validate`` accept ``--trace FILE``
(Chrome trace-event JSON, loadable in https://ui.perfetto.dev) and
``--remarks[=FILTER]`` (LLVM ``-Rpass``-style optimization remarks,
optionally filtered by a regex over the remark origin).
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from pathlib import Path


def _read_source(path: str) -> str | None:
    """Read a source file; on failure print a clean error (no traceback)."""
    try:
        return Path(path).read_text()
    except OSError as exc:
        print(f"repro: cannot read {path!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return None


def _read_bytes(path: str) -> bytes | None:
    try:
        return Path(path).read_bytes()
    except OSError as exc:
        print(f"repro: cannot read {path!r}: {exc.strerror or exc}",
              file=sys.stderr)
        return None


def _load_input(path: str, entry: str = "main"):
    """Sniff and load a translation input.

    Returns ``(source, obj)``: for mini-C text, the source string and its
    minicc-compiled image; for a real ELF64 binary, ``source is None``
    and the object comes from ``repro.loader``.  ``(None, None)`` means
    the input could not be loaded (a clean error was printed).
    """
    raw = _read_bytes(path)
    if raw is None:
        return None, None
    from .loader import sniff_format

    if sniff_format(raw) == "elf64":
        from .core import ingest_binary
        from .loader import ElfError, TriageError

        try:
            obj, _report = ingest_binary(raw, entry)
        except (ElfError, TriageError) as exc:
            print(f"repro: cannot load {path!r}: {exc}", file=sys.stderr)
            return None, None
        return None, obj
    from .minicc import compile_to_x86

    source = raw.decode("utf-8", errors="replace")
    return source, compile_to_x86(source, entry)


def _telemetry_session(args: argparse.Namespace):
    """A telemetry session sized to the --trace/--remarks flags.

    Returns a ``nullcontext(None)`` when neither flag is given, keeping the
    default path on the zero-overhead no-op hooks.
    """
    trace_on = getattr(args, "trace", None) is not None
    remarks_on = getattr(args, "remarks", None) is not None
    if not trace_on and not remarks_on:
        return nullcontext(None)
    from . import telemetry

    return telemetry.session(
        trace=trace_on, metrics=True, remarks=remarks_on,
        remark_filter=(args.remarks or None) if remarks_on else None)


def _flush_telemetry(tel, args: argparse.Namespace) -> None:
    """Write the Chrome trace and print collected remarks, as requested."""
    if tel is None:
        return
    import json

    from . import telemetry

    if getattr(args, "trace", None) and tel.tracer is not None:
        Path(args.trace).write_text(
            json.dumps(telemetry.to_chrome_trace(tel.tracer,
                                                 metrics=tel.metrics)))
        print(f"trace written to {args.trace} "
              f"(open in https://ui.perfetto.dev)", file=sys.stderr)
    if getattr(args, "remarks", None) is not None and tel.remarks is not None:
        for remark in tel.remarks.remarks:
            print(remark.format(), file=sys.stderr)


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write a Chrome trace-event JSON file "
                             "(open in chrome://tracing or Perfetto)")
    parser.add_argument("--remarks", nargs="?", const="", default=None,
                        metavar="FILTER",
                        help="print optimization remarks, optionally "
                             "filtered by a regex over the remark origin "
                             "(e.g. --remarks=place)")


def _first_output_mismatch(expected: list[str], got: list[str]) -> int | None:
    """Index of the first differing output entry, or None if identical."""
    for i, (a, b) in enumerate(zip(expected, got)):
        if a != b:
            return i
    if len(expected) != len(got):
        return min(len(expected), len(got))
    return None


def _cmd_translate(args: argparse.Namespace) -> int:
    from time import perf_counter

    from .profiler import workcounters
    from .profiler.ledger import append_entry

    source, obj = _load_input(args.source)
    if obj is None:
        return 2
    if source is None and args.config == "native":
        print("repro translate: the native configuration recompiles "
              "source and cannot take an ELF binary", file=sys.stderr)
        return 2
    start = perf_counter()
    with _telemetry_session(args) as tel:
        with workcounters.collect() as wc:
            rc = _translate_and_check(args, source, obj)
    _flush_telemetry(tel, args)
    append_entry("translate", {
        "source": args.source,
        "config": args.config,
        "fence_analysis": args.fence_analysis,
        "seconds": round(perf_counter() - start, 6),
        "work_total": wc.total(),
        "work_digest": wc.digest(),
        "rc": rc,
    }, config={"source": args.source, "config": args.config,
               "fence_analysis": args.fence_analysis})
    return rc


def _translate_and_check(args: argparse.Namespace, source, obj) -> int:
    from .core import Lasagne
    from .x86 import X86Emulator

    lasagne = Lasagne(verify=not args.no_verify,
                      fence_analysis=args.fence_analysis,
                      tv=args.tv)
    if source is None:
        built = lasagne.translate(obj, args.config)
    else:
        built = lasagne.build(source, args.config)
    print(f"config={args.config}: {built.arm_instructions} Arm instructions, "
          f"{built.fences} fences, {built.lir_instructions} IR instructions",
          file=sys.stderr)
    if args.tv and built.tv_report is not None:
        report = built.tv_report
        print(f"tv: {report.proved} proved, {report.unknown} unknown, "
              f"{report.refuted} refuted "
              f"over {len(report.verdicts)} pass/function pair(s)",
              file=sys.stderr)
        for v in report.refutations():
            print(f"tv REFUTED {v.pass_name} (iteration {v.iteration}) "
                  f"on {v.function}: {v.detail}"
                  + (f" [x86 blame: {v.blame}]" if v.blame else ""),
                  file=sys.stderr)
        if report.refuted:
            return 1
    elif args.tv:
        print("tv: no passes ran for this configuration", file=sys.stderr)
    if built.delayset is not None:
        ds = built.delayset
        print(f"delay-sets: {ds.fences_before} fences after placement, "
              f"{ds.required} required, {ds.elided} elided, "
              f"{ds.kept_sc} sc kept"
              + (f", {ds.elided_sync} via sync refinement "
                 f"({ds.sync_dropped_conflicts} lock-ordered conflict "
                 "edge(s) dropped)" if ds.sync else "")
              + (" (capped: kept all)" if ds.kept_all else ""),
              file=sys.stderr)
    if args.dump_arm:
        print(built.program.dump())
    if args.dump_ir:
        from .lir import format_module

        print(format_module(built.module))
    if args.run:
        expected = None
        expected_output: list[str] = []
        if args.config != "native":
            emu = X86Emulator(obj)
            expected = emu.run()
            expected_output = emu.output
            print(f"x86 result: {expected}  output: {emu.output}")
        run = Lasagne.run(built)
        print(f"arm result: {run.result}  output: {run.output}  "
              f"cycles: {run.cycles}")
        if expected is not None:
            mismatched = False
            if run.result != expected:
                print("MISMATCH between x86 and translated Arm results!",
                      file=sys.stderr)
                mismatched = True
            index = _first_output_mismatch(expected_output, run.output)
            if index is not None:
                print(f"MISMATCH in output streams at index {index}: "
                      f"x86={expected_output[index:index + 1]!r} "
                      f"arm={run.output[index:index + 1]!r}",
                      file=sys.stderr)
                mismatched = True
            if mismatched:
                return 1
    return 0


def _cmd_tv(args: argparse.Namespace) -> int:
    """``repro tv <input>``: validate every optimization pass invocation.

    Translates the input with the per-pass translation validator
    attached and reports one refinement verdict per (pass invocation,
    function).  Exit 1 when any verdict is ``refuted`` — a concrete
    counterexample shows the pass miscompiled the function; ``unknown``
    verdicts (incompleteness) never fail the run.
    """
    from .core import Lasagne

    source, obj = _load_input(args.source)
    if obj is None:
        return 2
    if source is None and args.config == "native":
        print("repro tv: the native configuration recompiles source and "
              "cannot take an ELF binary", file=sys.stderr)
        return 2
    with _telemetry_session(args) as tel:
        lasagne = Lasagne(fence_analysis=args.fence_analysis, tv=True)
        if source is None:
            built = lasagne.translate(obj, args.config)
        else:
            built = lasagne.build(source, args.config)
    _flush_telemetry(tel, args)
    report = built.tv_report

    if args.sarif:
        from .analysis.sarif import tv_results, write_sarif

        results = tv_results(report, args.source)
        path = write_sarif(args.sarif, results)
        print(f"SARIF report ({len(results)} result(s)) written to {path}",
              file=sys.stderr)
    if args.json:
        import json

        doc = report.to_dict()
        doc["config"] = args.config
        doc["source"] = args.source
        print(json.dumps(doc, indent=2))
    else:
        print(f"== translation validation ({args.config}) ==")
        shown = report.verdicts if args.verbose else [
            v for v in report.verdicts if v.verdict != "proved"]
        for v in shown:
            line = (f"  {v.pass_name:<12} iter{v.iteration} "
                    f"{v.function:<16} {v.verdict:<8} {v.reason}")
            if v.verdict == "refuted":
                line += f"\n    {v.detail}"
                if v.blame:
                    line += f"\n    x86 blame: {v.blame}"
            print(line)
        print(f"tv: {report.proved} proved, {report.unknown} unknown, "
              f"{report.refuted} refuted over {len(report.verdicts)} "
              f"pass/function pair(s)")
    return 1 if report.refuted else 0


def _cmd_lift(args: argparse.Namespace) -> int:
    from .fences import place_fences
    from .lifter import lift_program
    from .lir import format_module
    from .refine import run_refinement

    _source, obj = _load_input(args.source)
    if obj is None:
        return 2
    module = lift_program(obj)
    if args.refine:
        run_refinement(module)
    if args.fences:
        place_fences(module)
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    print(format_module(module))
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    """``repro triage <input>``: machine-readable loader confidence.

    Works on both input formats: real ELF64 binaries go through the
    loader (non-strict, so undecodable functions become report entries,
    not errors); mini-C text is compiled by minicc and its ELF-lite
    image swept with the same per-function decoder."""
    from .loader import ElfError, ingest_elf, sniff_format, triage_object

    raw = _read_bytes(args.source)
    if raw is None:
        return 2
    if sniff_format(raw) == "elf64":
        try:
            _obj, report = ingest_elf(raw, entry=args.entry, strict=False)
        except ElfError as exc:
            print(f"repro triage: {args.source!r}: {exc}", file=sys.stderr)
            return 2
    else:
        from .minicc import compile_to_x86

        obj = compile_to_x86(raw.decode("utf-8", errors="replace"),
                             args.entry)
        report = triage_object(obj)
    print(report.to_json())
    if args.strict and report.externals_opaque:
        print(f"repro triage: {len(report.externals_opaque)} opaque "
              f"external(s): {sorted(report.externals_opaque)}",
              file=sys.stderr)
        return 1
    return 0 if report.ok else 1


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .phoenix import SIZE_SMALL, SIZE_TINY, evaluate_suite, geomean

    size = SIZE_TINY if args.size == "tiny" else SIZE_SMALL
    with _telemetry_session(args) as tel:
        rows = evaluate_suite(size=size, verify=False)
    _flush_telemetry(tel, args)
    configs = ["native", "lifted", "opt", "popt", "ppopt"]
    print(f"{'benchmark':<18}" + "".join(f"{c:>9}" for c in configs))
    norm = {c: [] for c in configs}
    for row in rows:
        cells = ""
        for c in configs:
            v = row.normalized_runtime(c)
            norm[c].append(v)
            cells += f"{v:>9.2f}"
        print(f"{row.program:<18}{cells}")
    print(f"{'GMean':<18}"
          + "".join(f"{geomean(norm[c]):>9.2f}" for c in configs))
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from . import memmodel as mm

    if args.delay_sets:
        return _litmus_delay_gate(args)
    if args.file:
        text = _read_source(args.file)
        if text is None:
            return 2
        test = mm.parse_litmus(text)
        program = test.program
        if test.exists is not None:
            allowed = test.exists_allowed(args.model)
            print(f"{program.name}: exists clause is "
                  f"{'ALLOWED' if allowed else 'forbidden'} under {args.model}")
        for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
            print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
        return 0

    program = getattr(mm, args.test, None)
    if program is None or not isinstance(program, mm.Program):
        names = sorted(
            n for n in dir(mm)
            if isinstance(getattr(mm, n), mm.Program)
        )
        print(f"unknown litmus test {args.test!r}; available: {names}",
              file=sys.stderr)
        return 1
    if args.map:
        mapper = {
            "x86-to-ir": mm.map_x86_to_ir,
            "ir-to-arm": mm.map_ir_to_arm,
            "x86-to-arm": mm.map_x86_to_arm,
            "arm-to-ir": mm.map_arm_to_ir,
            "ir-to-x86": mm.map_ir_to_x86,
            "arm-to-x86": mm.map_arm_to_x86,
        }[args.map]
        program = mapper(program)
    print(f"{program.name} under {args.model}:")
    for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
    return 0


def _litmus_delay_gate(args: argparse.Namespace) -> int:
    """``repro litmus --delay-sets``: the enumeration soundness gate.

    Each pure-x86 litmus program is mapped through Fig. 8a, its redundant
    fences elided by delay-set analysis, and the elided program's LIMM
    outcome set compared against the TSO source by exhaustive
    enumeration.  Any new weak behaviour is an unsound elision → exit 1.
    """
    from . import memmodel as mm
    from .analysis.delayset import check_litmus_elision

    programs: list
    if args.file:
        text = _read_source(args.file)
        if text is None:
            return 2
        programs = [mm.parse_litmus(text).program]
    elif args.test:
        program = getattr(mm, args.test, None)
        if program is None or not isinstance(program, mm.Program):
            print(f"unknown litmus test {args.test!r}", file=sys.stderr)
            return 1
        programs = [program]
    else:
        programs = list(mm.X86_SOURCE_CORPUS)

    rc = 0
    total_elided = total_required = total_sync = 0
    for program in programs:
        if not mm.is_x86_source(program):
            print(f"{program.name}: skipped (not pure x86 source: has "
                  "non-plain orderings or non-MFENCE fences)")
            continue
        sound, result = check_litmus_elision(program, sync=args.sync)
        total_elided += result.elided_count
        total_required += result.required_count
        sync_count = result.elided_sync_count if args.sync else 0
        total_sync += sync_count
        marker = "ok" if sound else "UNSOUND"
        print(f"{result.elided.name}: {result.required_count} required, "
              f"{result.elided_count} elided"
              + (f" ({sync_count} via sync)" if args.sync else "")
              + f" -> {marker}")
        if args.verbose:
            for d in result.decisions:
                print(f"  T{d.thread}[{d.index}] F{d.kind}: "
                      f"{d.verdict} ({d.reason})")
        if not sound:
            rc = 1
    print(f"delay-set gate: {total_required} fences required, "
          f"{total_elided} elided"
          + (f" ({total_sync} via sync refinement)" if args.sync else "")
          + f" across {len(programs)} program(s); "
          + ("all elisions sound" if rc == 0 else "UNSOUND ELISION FOUND"))
    return rc


def _cmd_validate(args: argparse.Namespace) -> int:
    import json

    from .validate import GenConfig, OracleOptions, RunnerOptions, run_corpus

    if args.count is None and args.minutes is None:
        args.count = 100
    opts = RunnerOptions(
        seed=args.seed,
        jobs=args.jobs,
        count=args.count,
        minutes=args.minutes,
        shrink=args.shrink,
        corpus_dir=args.corpus,
        trace_file=args.trace,
        collect_remarks=args.remarks is not None,
        remark_filter=args.remarks or None,
        gen=GenConfig(threads=args.threads),
        oracle=OracleOptions(verify=not args.no_verify,
                             include_native=not args.no_native,
                             fence_analysis=args.fence_analysis,
                             tv=args.tv),
    )

    def progress(row: dict) -> None:
        if not row["ok"]:
            print(f"divergence [{row['signature']}] seed={row['seed']}: "
                  f"{row['detail']}", file=sys.stderr)

    from .profiler.ledger import append_entry

    report = run_corpus(opts, progress=None if args.quiet else progress)
    append_entry("validate", {
        "seed": args.seed,
        "programs_run": report["programs_run"],
        "divergences": report["divergences"],
        "clean": report["clean"],
        "fence_analysis": args.fence_analysis,
    }, config={"seed": args.seed, "threads": args.threads,
               "fence_analysis": args.fence_analysis})
    if args.report:
        Path(args.report).write_text(json.dumps(report, indent=2))
    print(f"validate: {report['programs_run']} programs "
          f"({report['corpus_replayed']} from corpus), "
          f"{report['divergences']} divergences, "
          f"{report['throughput_per_minute']:.0f} programs/min, "
          f"report at {Path(opts.corpus_dir) / 'report.json'}")
    if report["stage_histogram"]:
        print("stage histogram: " + ", ".join(
            f"{stage}={count}"
            for stage, count in sorted(report["stage_histogram"].items())))
    timing = report.get("timing", {})
    if timing.get("median_seconds"):
        print(f"wall time per program: median {timing['median_seconds']:.3f}s, "
              f"p95 {timing['p95_seconds']:.3f}s, max {timing['max_seconds']:.3f}s")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(open in https://ui.perfetto.dev)", file=sys.stderr)
    if args.remarks is not None and report.get("remark_histogram"):
        print("remarks: " + ", ".join(
            f"{key}={n}"
            for key, n in sorted(report["remark_histogram"].items())),
            file=sys.stderr)
    return 0 if report["clean"] else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze_function, check_module
    from .core import Lasagne
    from .lir import Load, Store

    source = _read_source(args.source)
    if source is None:
        return 2
    if (args.delay_sets or args.sync) and args.config == "native":
        print("repro analyze: --delay-sets/--sync need a translated config "
              "(the native pipeline places no fences)", file=sys.stderr)
        return 2
    if args.sync:
        fence_analysis = "sync"
    elif args.delay_sets:
        fence_analysis = "delay-sets"
    else:
        fence_analysis = "escape"
    lasagne = Lasagne(verify=not args.no_verify,
                      fence_analysis=fence_analysis
                      if args.config != "native" else "escape")
    built = lasagne.build(source, args.config)
    module = built.module

    # With no mode flag, print every report (--delay-sets/--sync and
    # --racecheck are opt-in: the former change which pipeline ran, the
    # latter runs an extra whole-module classification).
    all_modes = not (args.fencecheck or args.escape or args.aliases
                     or args.delay_sets or args.sync or args.racecheck)

    if args.json:
        return _analyze_json(args, built, module, all_modes)

    if args.escape or all_modes:
        print(f"== escape analysis ({args.config}) ==")
        for func in module.functions.values():
            if func.is_declaration:
                continue
            alias = analyze_function(func, module)
            objs = alias.stack_objects()
            escaped = [o for o in objs if o.escaped]
            print(f"{func.name}: {len(objs)} stack object(s), "
                  f"{len(escaped)} escaped")
            for obj in objs:
                state = "escaped" if obj.escaped else "thread-local"
                print(f"  alloca {obj.name}: {state}")

    if args.aliases or all_modes:
        print(f"== access classification ({args.config}) ==")
        for func in module.functions.values():
            if func.is_declaration:
                continue
            alias = analyze_function(func, module)
            for bb in func.blocks:
                for inst in bb.instructions:
                    if isinstance(inst, (Load, Store)):
                        what = inst.opcode
                        print(f"  {func.name}:{bb.name}: {what} "
                              f"{inst.pointer.short_name()} -> "
                              f"{alias.describe(inst.pointer)}")

    rc = 0
    diags = None
    if args.fencecheck or all_modes:
        print(f"== fencecheck ({args.config}) ==")
        if args.config == "native":
            print("  (native config carries no LIMM mapping obligations; "
                  "checking anyway)")
        diags = check_module(module)
        for diag in diags:
            print(f"  {diag}")
        print(f"fencecheck: {len(diags)} violation(s)")
        if diags:
            rc = 1

    if args.delay_sets or args.sync:
        ds = built.delayset
        print(f"== delay-set analysis ({args.config}) ==")
        if ds is None:
            print("  (no delay-set pass ran)")
        else:
            for d in ds.decisions:
                print(f"  {d.func}:{d.block}:{d.index}: F{d.kind} "
                      f"{d.verdict}: {d.reason}")
            print(f"delay-sets: {ds.fences_before} fences after placement, "
                  f"{ds.required} required, {ds.elided} elided, "
                  f"{ds.kept_sc} sc kept, "
                  f"{ds.delay_edges} delay edge(s)"
                  + (f", {ds.elided_sync} via sync refinement "
                     f"({ds.sync_dropped_conflicts} lock-ordered conflict "
                     "edge(s) dropped)" if ds.sync else "")
                  + (" (capped: kept all)" if ds.kept_all else ""))

    race = None
    if args.racecheck:
        from .analysis.racecheck import classify_module

        # Classify the *refined* module: lock addresses only resolve
        # syntactically after pointer refinement, so earlier configs
        # under-report protection (never races — the sound direction).
        race = classify_module(module)
        print(f"== racecheck ({args.config}) ==")
        for d in race.diags:
            print(f"  {d}")
        print("racecheck: "
              + ", ".join(f"{race.count(c)} {c}"
                          for c in ("racy", "lock-protected", "atomic",
                                    "thread-local"))
              + (f"; locks seen: {', '.join(race.locks_seen)}"
                 if race.locks_seen else "")
              + (" (capped: conflict graph incomplete)"
                 if race.capped else ""))

    if args.sarif:
        _write_analysis_sarif(args, diags, built.delayset, race)
    return rc


def _write_analysis_sarif(args: argparse.Namespace, diags,
                          delayset, race=None) -> None:
    from .analysis.sarif import (
        delayset_results,
        fencecheck_results,
        racecheck_results,
        write_sarif,
    )

    results: list[dict] = []
    if diags is not None:
        results += fencecheck_results(diags, args.source)
    if delayset is not None:
        results += delayset_results(delayset.decisions, args.source)
    if race is not None:
        results += racecheck_results(race.diags, args.source)
    path = write_sarif(args.sarif, results)
    print(f"SARIF report ({len(results)} result(s)) written to {path}",
          file=sys.stderr)


def _analyze_json(args: argparse.Namespace, built, module,
                  all_modes: bool) -> int:
    """Machine-readable ``repro analyze --json`` output."""
    import json

    from .analysis import analyze_function, check_module
    from .lir import Load, Store

    report: dict = {"config": args.config}

    if args.escape or all_modes:
        escape: dict[str, list[dict]] = {}
        for func in module.functions.values():
            if func.is_declaration:
                continue
            alias = analyze_function(func, module)
            escape[func.name] = [
                {"alloca": obj.name, "escaped": obj.escaped}
                for obj in alias.stack_objects()
            ]
        report["escape"] = escape

    if args.aliases or all_modes:
        accesses: list[dict] = []
        for func in module.functions.values():
            if func.is_declaration:
                continue
            alias = analyze_function(func, module)
            for bb in func.blocks:
                for inst in bb.instructions:
                    if isinstance(inst, (Load, Store)):
                        accesses.append({
                            "function": func.name,
                            "block": bb.name,
                            "access": inst.opcode,
                            "pointer": inst.pointer.short_name(),
                            "class": alias.describe(inst.pointer),
                        })
        report["accesses"] = accesses

    rc = 0
    diags = None
    if args.fencecheck or all_modes:
        diags = check_module(module)
        report["fencecheck"] = {
            "violations": len(diags),
            "diagnostics": [d.to_dict() for d in diags],
        }
        if diags:
            rc = 1

    if (args.delay_sets or args.sync) and built.delayset is not None:
        ds = built.delayset
        report["delayset"] = {
            "fences_before": ds.fences_before,
            "required": ds.required,
            "elided": ds.elided,
            "elided_sync": ds.elided_sync,
            "sync": ds.sync,
            "sync_dropped_conflicts": ds.sync_dropped_conflicts,
            "kept_sc": ds.kept_sc,
            "kept_conservative": ds.kept_conservative,
            "delay_edges": ds.delay_edges,
            "capped": ds.capped,
            "kept_all": ds.kept_all,
            "decisions": [
                {"function": d.func, "block": d.block, "index": d.index,
                 "kind": d.kind, "verdict": d.verdict, "reason": d.reason,
                 "tier": d.tier, "x86": d.x86}
                for d in ds.decisions
            ],
        }

    race = None
    if args.racecheck:
        from .analysis.racecheck import classify_module

        race = classify_module(module)
        report["racecheck"] = {
            "counts": race.counts,
            "capped": race.capped,
            "locks_seen": list(race.locks_seen),
            "diagnostics": [d.to_dict() for d in race.diags],
        }

    if args.sarif:
        _write_analysis_sarif(args, diags, built.delayset, race)

    print(json.dumps(report, indent=2))
    return rc


def _cmd_explain(args: argparse.Namespace) -> int:
    from .provenance.explain import (
        build_explanation,
        explanation_to_dict,
        render_coverage,
        render_fences,
        render_map,
    )

    source, obj = _load_input(args.source)
    if source is None and obj is None:
        return 2
    if source is None and args.config == "native":
        print("repro explain: the native configuration recompiles source "
              "and cannot explain an ELF binary", file=sys.stderr)
        return 2
    expl = build_explanation(source, args.config,
                             verify=not args.no_verify,
                             obj=obj if source is None else None)

    if args.json:
        import json

        print(json.dumps(explanation_to_dict(expl), indent=2))
    else:
        # With no view flag, print every view.
        all_views = not (args.fences or args.map or args.coverage)
        sections = []
        if args.fences or all_views:
            sections.append(render_fences(expl))
        if args.map or all_views:
            sections.append(render_map(expl))
        if args.coverage or all_views:
            sections.append(render_coverage(expl))
        print("\n\n".join(sections))

    rc = 0
    cov = expl.coverage
    if args.min_fence_coverage is not None \
            and cov.fence_pct < args.min_fence_coverage:
        print(f"explain: fence provenance coverage {cov.fence_pct:.1f}% "
              f"is below the required {args.min_fence_coverage:.1f}%",
              file=sys.stderr)
        rc = 1
    if args.min_mem_coverage is not None \
            and cov.memory_pct < args.min_mem_coverage:
        print(f"explain: memory-access provenance coverage "
              f"{cov.memory_pct:.1f}% is below the required "
              f"{args.min_mem_coverage:.1f}%", file=sys.stderr)
        rc = 1
    return rc


def _cmd_stats(args: argparse.Namespace) -> int:
    from . import telemetry
    from .core import Lasagne

    source = _read_source(args.source)
    if source is None:
        return 2
    with telemetry.session() as tel:
        lasagne = Lasagne(verify=not args.no_verify)
        built = lasagne.build(source, args.config)
        if args.run:
            Lasagne.run(built)

    print(f"== stage breakdown ({args.config}) ==")
    print(telemetry.format_tree(tel.tracer.roots,
                                max_depth=None if args.full else 2))

    if built.pass_stats is not None:
        stats = built.pass_stats
        changed = [rec for rec in stats.records if rec.changed]
        print(f"\n== optimization passes "
              f"({len(stats.records)} runs over {stats.iterations} fixpoint "
              f"iterations, {len(changed)} changed) ==")
        print(f"{'pass':<14}{'iter':>5}{'before':>8}{'after':>8}{'removed':>9}")
        for rec in changed:
            print(f"{rec.name:<14}{rec.iteration:>5}{rec.before:>8}"
                  f"{rec.after:>8}{rec.before - rec.after:>9}")
        by_iter = stats.reduction_by_iteration()
        print("per-iteration reduction: " + ", ".join(
            f"iter{i}={by_iter[i]}" for i in sorted(by_iter)))

    snapshot = tel.metrics.snapshot()
    print("\n== metrics ==")
    for name, value in snapshot["counters"].items():
        print(f"  {name} = {value}")
    for name, value in snapshot["gauges"].items():
        print(f"  {name} = {value} (gauge)")

    histogram = tel.remarks.histogram()
    if histogram:
        print("\n== remarks (origin:kind -> count) ==")
        for key, n in sorted(histogram.items()):
            print(f"  {key} = {n}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile <input>``: drive one translation repeatedly under
    the sampling profiler, the deterministic work-counter collector and
    the memory accountant, then render the attribution report."""
    from time import perf_counter

    from .core import Lasagne
    from .profiler import (
        AttributionReport,
        SamplingProfiler,
        accounting,
        render_report,
        report_to_dict,
        workcounters,
        write_flamegraph,
    )
    from .profiler.ledger import append_entry

    source, obj = _load_input(args.source)
    if obj is None:
        return 2
    if source is None and args.config == "native":
        print("repro profile: the native configuration recompiles "
              "source and cannot take an ELF binary", file=sys.stderr)
        return 2
    lasagne = Lasagne(verify=not args.no_verify)
    builds = 0
    prof = SamplingProfiler(hz=args.sample_hz)
    with workcounters.collect() as wc, accounting() as acct, prof:
        start = perf_counter()
        # Keep translating until the sampler has had --min-seconds of
        # signal (at least one build regardless).
        while True:
            if source is None:
                lasagne.translate(obj, args.config)
            else:
                lasagne.build(source, args.config)
            builds += 1
            if perf_counter() - start >= args.min_seconds:
                break
    profile = prof.profile
    report = AttributionReport(source=args.source, config=args.config,
                               builds=builds, profile=profile,
                               counters=wc, memory=acct)
    print(render_report(report, top=args.top))
    if args.flamegraph:
        write_flamegraph(profile, args.flamegraph)
        print(f"flamegraph (collapsed stacks) written to {args.flamegraph} "
              "(feed to flamegraph.pl or https://www.speedscope.app)",
              file=sys.stderr)
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(report_to_dict(report, top=args.top), indent=2))
        print(f"profile JSON written to {args.json}", file=sys.stderr)
    append_entry("profile", {
        "source": args.source,
        "config": args.config,
        "builds": builds,
        "samples": profile.total,
        "known_stage_pct": round(profile.known_stage_pct(), 2),
        "work_total": wc.total(),
        "work_digest": wc.digest(),
    }, config={"source": args.source, "config": args.config})
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .profiler.ledger import append_entry
    from .telemetry.bench import read_trajectory, run_bench, write_bench

    report = run_bench(size=args.size, repeats=args.repeats,
                       configs=args.configs)
    rc = 0
    if args.compare is not None:
        from .profiler.regression import EXIT_REGRESSION, check_regression

        reg = check_regression(
            report["summary"], read_trajectory(args.out),
            size=args.size, ref=args.compare or None,
            window=args.window, time_threshold=args.time_threshold)
        print(reg.format())
        if not reg.ok:
            rc = EXIT_REGRESSION
    path = write_bench(report, args.out)
    for config, summary in report["summary"].items():
        if config == "loader":
            continue  # the ELF-ingestion row prints separately below
        print(f"{config:>8}: {summary['translate_seconds_total'] * 1e3:8.1f} ms "
              f"translate, {summary['arm_instructions_total']:6d} Arm "
              f"instructions, {summary['fences_total']:4d} fences, "
              f"{summary['fences_elided_total']:4d} elided "
              f"({summary['fences_elided_beyond_walk_total']} beyond walk), "
              f"{summary['fencecheck_violations_total']} fencecheck "
              f"violation(s)")
    loader = report["summary"].get("loader")
    if loader:
        print(f"{'loader':>8}: {loader['ingest_seconds_total'] * 1e3:8.1f} ms "
              f"ingest over {len(report['loader'])} ELF fixture(s), "
              f"{loader['functions_discovered']} functions, "
              f"{loader['externals_resolved']} externals resolved, "
              f"{loader['externals_opaque']} opaque")
    print(f"baseline written to {path}")
    append_entry("bench", {
        "size": args.size,
        "repeats": args.repeats,
        "compare": args.compare,
        "rc": rc,
        "work_digests": {
            config: summary.get("work_digest")
            for config, summary in report["summary"].items()
            if isinstance(summary, dict) and "work_digest" in summary},
        "translate_seconds": {
            config: summary.get("translate_seconds_total")
            for config, summary in report["summary"].items()
            if isinstance(summary, dict)
            and "translate_seconds_total" in summary},
    }, config={"size": args.size, "repeats": args.repeats,
               "configs": args.configs})
    return rc


def _open_ingested_warehouse(args: argparse.Namespace):
    """Open the warehouse named by ``--db`` and (unless ``--no-ingest``)
    refresh it from the artifacts under ``--root`` first."""
    from .warehouse import Warehouse, ingest_all

    db = args.db
    store = Warehouse(None if db == ":memory:" else db)
    if not getattr(args, "no_ingest", False):
        ingest_all(store, args.root, bench=args.bench_file)
    return store


def _add_warehouse_flags(parser: argparse.ArgumentParser) -> None:
    from .warehouse import DEFAULT_DB

    parser.add_argument("--db", default=DEFAULT_DB,
                        help="warehouse sqlite file "
                             f"(default {DEFAULT_DB}; ':memory:' works)")
    parser.add_argument("--root", default=".",
                        help="directory holding the bench file, ledger "
                             "and *.profile.json artifacts")
    parser.add_argument("--bench-file", default="BENCH_translate.json",
                        help="bench trajectory file name under --root")
    parser.add_argument("--no-ingest", action="store_true",
                        help="query the existing warehouse without "
                             "re-ingesting artifacts first")


def _cmd_warehouse(args: argparse.Namespace) -> int:
    """``repro warehouse ingest|runs``."""
    with _open_ingested_warehouse(args) as store:
        if args.action == "ingest":
            counts = store.counts()
            print("warehouse: " + ", ".join(
                f"{counts[t]} {t}" for t in sorted(counts))
                + f" (schema v{store.schema_version}, {store.path})")
            return 0
        runs = store.runs()
        if not runs:
            print("warehouse: no runs ingested yet (run `repro bench` "
                  "first)")
            return 0
        print(f"{'#':>3}  {'sha':<10} {'kind':<8} {'timestamp':<26} "
              f"{'size':<6} dirty")
        for index, run in enumerate(reversed(runs)):
            print(f"@{index:<2}  {run.sha:<10} {run.kind:<8} "
                  f"{run.timestamp:<26} {run.size:<6} "
                  f"{'yes' if run.dirty else 'no'}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    """``repro diff A B``: ranked deltas between two warehouse runs.

    Exit codes: 0 on success, 2 when a selector does not resolve or the
    warehouse holds nothing to compare (the CI contract).
    """
    from .warehouse import diff_runs, render_markdown, render_text, to_json

    with _open_ingested_warehouse(args) as store:
        kind = None if args.any_kind else "bench"
        run_a = store.resolve(args.run_a, kind)
        run_b = store.resolve(args.run_b, kind)
        missing = [sel for sel, run in
                   ((args.run_a, run_a), (args.run_b, run_b))
                   if run is None]
        if missing:
            for sel in missing:
                print(f"repro diff: cannot resolve run {sel!r} "
                      f"(try `repro warehouse runs`)", file=sys.stderr)
            return 2
        report = diff_runs(store, run_a, run_b, top=args.top)
    if args.json:
        print(to_json(report), end="")
    elif args.markdown:
        print(render_markdown(report), end="")
    else:
        print(render_text(report))
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    """``repro dash --html FILE``: the self-contained HTML dashboard."""
    from .warehouse import build_dashboard

    with _open_ingested_warehouse(args) as store:
        html = build_dashboard(store, title=args.title)
    if args.html is None:
        print(html, end="")
    else:
        try:
            Path(args.html).write_text(html)
        except OSError as exc:
            print(f"repro dash: cannot write {args.html!r}: "
                  f"{exc.strerror or exc}", file=sys.stderr)
            return 2
        print(f"dashboard written to {args.html} "
              f"({len(html)} bytes, self-contained)", file=sys.stderr)
    return 0


def _cmd_ledger(args: argparse.Namespace) -> int:
    """``repro ledger [--gc]``: run-ledger activity and compaction."""
    from .profiler.ledger import gc_ledger, ledger_path, read_ledger

    if args.gc:
        summary = gc_ledger(args.root, keep=args.keep)
        print(f"ledger gc: {summary['entries_before']} -> "
              f"{summary['entries_after']} entries, "
              f"{summary['bytes_reclaimed']} bytes reclaimed "
              f"({ledger_path(args.root)})")
        return 0
    entries = read_ledger(args.root)
    if not entries:
        print(f"ledger: no entries at {ledger_path(args.root)}")
        return 0
    by_command: dict[str, int] = {}
    failures = 0
    for entry in entries:
        command = str(entry.get("command", ""))
        by_command[command] = by_command.get(command, 0) + 1
        rc = entry.get("rc")
        if isinstance(rc, int) and rc != 0:
            failures += 1
    print(f"ledger: {len(entries)} entries at {ledger_path(args.root)} "
          f"({failures} non-zero exit(s))")
    for command in sorted(by_command):
        print(f"  {command:<12} {by_command[command]:>6}")
    if args.tail:
        import json

        for entry in entries[-args.tail:]:
            print(json.dumps(entry, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate mini-C to Arm")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--fence-analysis", default="escape",
                   choices=["walk", "escape", "delay-sets", "sync"],
                   help="fence-elision tier: syntactic walk, "
                        "interprocedural escape analysis (default), "
                        "escape + Shasha-Snir delay-set elision, or "
                        "delay sets refined by pthread must-locksets")
    p.add_argument("--run", action="store_true")
    p.add_argument("--dump-arm", action="store_true")
    p.add_argument("--dump-ir", action="store_true")
    p.add_argument("--tv", action="store_true",
                   help="per-pass translation validation: check every "
                        "optimization pass invocation for refinement and "
                        "exit 1 on a refuted (miscompiling) pass")
    p.add_argument("--no-verify", action="store_true")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser(
        "tv",
        help="per-pass translation validation: symbolically check that "
             "each optimization pass invocation's output refines its "
             "input (exit 1 on a refuted pass)")
    p.add_argument("source", help="mini-C source or ELF64 binary")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "opt", "popt", "ppopt"])
    p.add_argument("--fence-analysis", default="escape",
                   choices=["walk", "escape", "delay-sets", "sync"])
    p.add_argument("--json", action="store_true",
                   help="emit the full verdict list as JSON on stdout")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write tv/refuted and tv/unknown findings "
                        "as a SARIF 2.1.0 report")
    p.add_argument("--verbose", action="store_true",
                   help="also list proved verdicts, not just "
                        "unknown/refuted ones")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_tv)

    p = sub.add_parser("lift", help="show lifted LIR")
    p.add_argument("source")
    p.add_argument("--refine", action="store_true")
    p.add_argument("--fences", action="store_true")
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=_cmd_lift)

    p = sub.add_parser(
        "triage",
        help="inspect a binary: function discovery confidence, external "
             "resolution, and decode coverage, as JSON")
    p.add_argument("source", help="ELF64 executable or mini-C source")
    p.add_argument("--entry", default="main")
    p.add_argument("--strict", action="store_true",
                   help="also fail (rc 1) when any external is opaque, "
                        "i.e. not resolved against the catalog")
    p.set_defaults(func=_cmd_triage)

    p = sub.add_parser("evaluate", help="run the Phoenix evaluation")
    p.add_argument("--size", default="tiny", choices=["tiny", "small"])
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("litmus", help="enumerate litmus outcomes")
    p.add_argument("test", nargs="?", default="",
                   help="e.g. SB, MP, LB, IRIW, WRC")
    p.add_argument("--file", default=None,
                   help="herd-style litmus file instead of a named test")
    p.add_argument("--model", default="x86", choices=["x86", "arm", "limm"])
    p.add_argument("--map", default=None,
                   choices=["x86-to-ir", "ir-to-arm", "x86-to-arm",
                            "arm-to-ir", "ir-to-x86", "arm-to-x86"])
    p.add_argument("--delay-sets", action="store_true",
                   help="enumeration gate: map through Fig. 8a, elide "
                        "redundant fences via delay-set analysis, and "
                        "prove by exhaustive enumeration that no new "
                        "weak behaviour appears (exit 1 if one does); "
                        "runs the whole pure-x86 corpus when no test is "
                        "named")
    p.add_argument("--sync", action="store_true",
                   help="with --delay-sets, also run the lockset (sync) "
                        "refinement: conflict edges between accesses "
                        "holding a common lock are dropped before the "
                        "cycle search, and the extra elisions face the "
                        "same enumeration soundness check")
    p.add_argument("--verbose", action="store_true",
                   help="with --delay-sets, print per-fence verdicts")
    p.set_defaults(func=_cmd_litmus)

    p = sub.add_parser(
        "validate",
        help="differential validation: fuzz every pipeline rung in lockstep")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1)
    p.add_argument("--count", type=int, default=None,
                   help="number of generated programs (default 100)")
    p.add_argument("--minutes", type=float, default=None,
                   help="wall-clock budget instead of --count")
    p.add_argument("--shrink", action="store_true",
                   help="delta-debug each diverging program")
    p.add_argument("--corpus", default=".validate-corpus",
                   help="persistent corpus/crash directory")
    p.add_argument("--report", default=None,
                   help="also write the JSON report to this path")
    p.add_argument("--threads", action="store_true",
                   help="include commutative atomic-counter thread programs")
    p.add_argument("--fence-analysis", default="escape",
                   choices=["walk", "escape", "delay-sets", "sync"],
                   help="fence-elision tier for the translated rungs; "
                        "delay-sets (or sync) adds the certificate-audit "
                        "static rung")
    p.add_argument("--no-native", action="store_true",
                   help="skip the native-config Arm rung")
    p.add_argument("--tv", action="store_true",
                   help="add the static per-pass translation-validation "
                        "rung: a refuted pass invocation is a divergence "
                        "even when no execution observes it")
    p.add_argument("--no-verify", action="store_true")
    p.add_argument("--quiet", action="store_true")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "analyze",
        help="static analysis: escape report, access classification, "
             "LIMM fencecheck linter (exit 1 on violations)")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--fencecheck", action="store_true",
                   help="only run the LIMM-mapping linter")
    p.add_argument("--escape", action="store_true",
                   help="only print the per-function escape report")
    p.add_argument("--aliases", action="store_true",
                   help="only print the per-access points-to classification")
    p.add_argument("--delay-sets", action="store_true",
                   help="run the pipeline with the delay-set elision tier "
                        "and print every per-fence required/redundant "
                        "verdict with its critical-cycle witness")
    p.add_argument("--sync", action="store_true",
                   help="like --delay-sets but with the lockset (sync) "
                        "refinement on top: conflict edges between "
                        "accesses holding a common pthread mutex are "
                        "dropped before the cycle search")
    p.add_argument("--racecheck", action="store_true",
                   help="classify every shared access as racy / "
                        "lock-protected / atomic / thread-local via the "
                        "static happens-before analysis")
    p.add_argument("--sarif", default=None, metavar="FILE",
                   help="also write the fencecheck/delay-set/racecheck "
                        "findings as a SARIF 2.1.0 report")
    p.add_argument("--json", action="store_true",
                   help="emit the selected reports as JSON on stdout")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser(
        "explain",
        help="instruction provenance: per-fence x86 blame, side-by-side "
             "x86/LIR/Arm map, and provenance coverage")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--fences", action="store_true",
                   help="per-fence blame: protected access, placing rule, "
                        "and every merge/elide decision")
    p.add_argument("--map", action="store_true",
                   help="annotated x86/LIR/Arm disassembly keyed by address")
    p.add_argument("--coverage", action="store_true",
                   help="fraction of Arm instructions/accesses/fences with "
                        "resolvable provenance")
    p.add_argument("--json", action="store_true",
                   help="emit blame + coverage as JSON on stdout")
    p.add_argument("--min-fence-coverage", type=float, default=None,
                   metavar="PCT",
                   help="exit 1 if fence provenance coverage is below PCT")
    p.add_argument("--min-mem-coverage", type=float, default=None,
                   metavar="PCT",
                   help="exit 1 if memory-access coverage is below PCT")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "stats",
        help="telemetry breakdown: stage timings, passes, metrics, remarks")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--run", action="store_true",
                   help="also run the translated program (emulator metrics)")
    p.add_argument("--full", action="store_true",
                   help="print the full span tree including per-pass spans")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "profile",
        help="hot-path attribution: sampling profiler + deterministic "
             "work counters + per-stage memory for one translation")
    p.add_argument("source", help="mini-C source or ELF64 binary")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--sample-hz", type=float, default=211.0,
                   help="sampling rate of the profiler thread "
                        "(default 211 Hz; off-round to dodge lockstep "
                        "with periodic work)")
    p.add_argument("--min-seconds", type=float, default=1.0,
                   help="repeat the translation until this much "
                        "wall-clock has been sampled (default 1.0)")
    p.add_argument("--flamegraph", nargs="?", const="flamegraph.txt",
                   default=None, metavar="FILE",
                   help="write collapsed-stack output "
                        "(default FILE: flamegraph.txt)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the full attribution report as JSON")
    p.add_argument("--top", type=int, default=10,
                   help="frames shown in the self-sample leaderboard")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench", help="write the translate-time perf baseline "
                      "(BENCH_translate.json)")
    p.add_argument("--size", default="tiny", choices=["tiny", "small"])
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--out", default="BENCH_translate.json")
    p.add_argument("--configs", nargs="+", default=None,
                   metavar="CONFIG",
                   help="bench only these pipeline configs")
    p.add_argument("--compare", nargs="?", const="", default=None,
                   metavar="REF",
                   help="perf-regression gate: compare this run against "
                        "the median of the last --window clean trajectory "
                        "entries (or the entries matching git ref REF) "
                        "BEFORE appending it; exit 3 on regression")
    p.add_argument("--window", type=int, default=5,
                   help="trajectory entries in the baseline median")
    p.add_argument("--time-threshold", type=float, default=0.15,
                   help="wall-time regression floor as a fraction "
                        "(default 0.15 = 15%%; MAD noise can widen it)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "warehouse",
        help="sqlite warehouse over bench/profile/ledger artifacts: "
             "`ingest` refreshes it, `runs` lists comparable runs")
    p.add_argument("action", choices=["ingest", "runs"])
    _add_warehouse_flags(p)
    p.set_defaults(func=_cmd_warehouse)

    p = sub.add_parser(
        "diff",
        help="ranked deltas between two warehouse runs: wall time with "
             "a noise/work-change digest verdict, work counters, "
             "stage×function cells, fence-elision tiers, pass "
             "effectiveness, flamegraph frames (exit 2 if a run "
             "selector does not resolve)")
    p.add_argument("run_a", help="baseline run: a sha prefix, 'latest', "
                                 "'prev', 'latest-clean', 'prev-clean' "
                                 "or '@N' (N-th newest)")
    p.add_argument("run_b", nargs="?", default="latest",
                   help="candidate run (default 'latest')")
    p.add_argument("--json", action="store_true",
                   help="emit the report as deterministic JSON")
    p.add_argument("--markdown", action="store_true",
                   help="emit the report as markdown tables")
    p.add_argument("--top", type=int, default=15,
                   help="rows kept per ranked section (default 15)")
    p.add_argument("--any-kind", action="store_true",
                   help="resolve selectors over profile/trace runs too, "
                        "not just bench trajectory entries")
    _add_warehouse_flags(p)
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "dash",
        help="render the warehouse to one self-contained HTML page "
             "(inline SVG sparklines, MAD anomaly flags, per-program "
             "drill-down)")
    p.add_argument("--html", nargs="?", const="dash.html", default=None,
                   metavar="FILE",
                   help="write to FILE (default dash.html); omit the "
                        "flag to print the HTML on stdout")
    p.add_argument("--title", default="repro dashboard")
    _add_warehouse_flags(p)
    p.set_defaults(func=_cmd_dash)

    p = sub.add_parser(
        "ledger",
        help="run-ledger activity summary; --gc drops the rotated "
             "generation and truncates the live file")
    p.add_argument("--root", default=".",
                   help="directory holding .repro/ledger.jsonl")
    p.add_argument("--gc", action="store_true",
                   help="compact the ledger in place")
    p.add_argument("--keep", type=int, default=500,
                   help="entries kept by --gc (default 500)")
    p.add_argument("--tail", type=int, default=0, metavar="N",
                   help="also print the newest N entries as JSON lines")
    p.set_defaults(func=_cmd_ledger)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
