"""Command-line interface: ``python -m repro <command>``.

Commands
--------
translate   compile mini-C to x86, translate to Arm, optionally run both
lift        show the lifted (optionally refined) LIR of a mini-C program
evaluate    run the Phoenix evaluation and print the §9 tables
litmus      enumerate outcomes of a named litmus test under a model
"""

from __future__ import annotations

import argparse
import sys


def _cmd_translate(args: argparse.Namespace) -> int:
    from .arm import is_fence
    from .core import Lasagne
    from .minicc import compile_to_x86
    from .x86 import X86Emulator

    source = open(args.source).read()
    obj = compile_to_x86(source)
    lasagne = Lasagne(verify=not args.no_verify)
    built = lasagne.build(source, args.config)
    print(f"config={args.config}: {built.arm_instructions} Arm instructions, "
          f"{built.fences} fences, {built.lir_instructions} IR instructions",
          file=sys.stderr)
    if args.dump_arm:
        print(built.program.dump())
    if args.dump_ir:
        from .lir import format_module

        print(format_module(built.module))
    if args.run:
        expected = None
        if args.config != "native":
            emu = X86Emulator(obj)
            expected = emu.run()
            print(f"x86 result: {expected}  output: {emu.output}")
        run = Lasagne.run(built)
        print(f"arm result: {run.result}  output: {run.output}  "
              f"cycles: {run.cycles}")
        if expected is not None and run.result != expected:
            print("MISMATCH between x86 and translated Arm!", file=sys.stderr)
            return 1
    return 0


def _cmd_lift(args: argparse.Namespace) -> int:
    from .fences import place_fences
    from .lifter import lift_program
    from .lir import format_module
    from .minicc import compile_to_x86
    from .refine import run_refinement

    source = open(args.source).read()
    obj = compile_to_x86(source)
    module = lift_program(obj)
    if args.refine:
        run_refinement(module)
    if args.fences:
        place_fences(module)
    if args.optimize:
        from .opt import optimize_module

        optimize_module(module)
    print(format_module(module))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .phoenix import SIZE_SMALL, SIZE_TINY, evaluate_suite, geomean

    size = SIZE_TINY if args.size == "tiny" else SIZE_SMALL
    rows = evaluate_suite(size=size, verify=False)
    configs = ["native", "lifted", "opt", "popt", "ppopt"]
    print(f"{'benchmark':<18}" + "".join(f"{c:>9}" for c in configs))
    norm = {c: [] for c in configs}
    for row in rows:
        cells = ""
        for c in configs:
            v = row.normalized_runtime(c)
            norm[c].append(v)
            cells += f"{v:>9.2f}"
        print(f"{row.program:<18}{cells}")
    print(f"{'GMean':<18}"
          + "".join(f"{geomean(norm[c]):>9.2f}" for c in configs))
    return 0


def _cmd_litmus(args: argparse.Namespace) -> int:
    from . import memmodel as mm

    if args.file:
        test = mm.parse_litmus(open(args.file).read())
        program = test.program
        if test.exists is not None:
            allowed = test.exists_allowed(args.model)
            print(f"{program.name}: exists clause is "
                  f"{'ALLOWED' if allowed else 'forbidden'} under {args.model}")
        for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
            print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
        return 0

    program = getattr(mm, args.test, None)
    if program is None or not isinstance(program, mm.Program):
        names = sorted(
            n for n in dir(mm)
            if isinstance(getattr(mm, n), mm.Program)
        )
        print(f"unknown litmus test {args.test!r}; available: {names}",
              file=sys.stderr)
        return 1
    if args.map:
        mapper = {
            "x86-to-ir": mm.map_x86_to_ir,
            "ir-to-arm": mm.map_ir_to_arm,
            "x86-to-arm": mm.map_x86_to_arm,
            "arm-to-ir": mm.map_arm_to_ir,
            "ir-to-x86": mm.map_ir_to_x86,
            "arm-to-x86": mm.map_arm_to_x86,
        }[args.map]
        program = mapper(program)
    print(f"{program.name} under {args.model}:")
    for outcome in sorted(mm.outcomes(program, args.model), key=sorted):
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(outcome)))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("translate", help="translate mini-C to Arm")
    p.add_argument("source")
    p.add_argument("--config", default="ppopt",
                   choices=["native", "lifted", "opt", "popt", "ppopt"])
    p.add_argument("--run", action="store_true")
    p.add_argument("--dump-arm", action="store_true")
    p.add_argument("--dump-ir", action="store_true")
    p.add_argument("--no-verify", action="store_true")
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser("lift", help="show lifted LIR")
    p.add_argument("source")
    p.add_argument("--refine", action="store_true")
    p.add_argument("--fences", action="store_true")
    p.add_argument("--optimize", action="store_true")
    p.set_defaults(func=_cmd_lift)

    p = sub.add_parser("evaluate", help="run the Phoenix evaluation")
    p.add_argument("--size", default="tiny", choices=["tiny", "small"])
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("litmus", help="enumerate litmus outcomes")
    p.add_argument("test", nargs="?", default="",
                   help="e.g. SB, MP, LB, IRIW, WRC")
    p.add_argument("--file", default=None,
                   help="herd-style litmus file instead of a named test")
    p.add_argument("--model", default="x86", choices=["x86", "arm", "limm"])
    p.add_argument("--map", default=None,
                   choices=["x86-to-ir", "ir-to-arm", "x86-to-arm",
                            "arm-to-ir", "ir-to-x86", "arm-to-x86"])
    p.set_defaults(func=_cmd_litmus)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
