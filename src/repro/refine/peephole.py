"""IR refinement peepholes (§5.1, Figure 5): raise integer address
arithmetic to typed pointer operations.

Every ``inttoptr`` is traced backwards through its integer operand chain
(``add``/``sub`` nodes).  The chain is separated into

* at most one *pointer root* — a ``ptrtoint`` of some pointer value,
* dynamic index terms (non-constant values),
* a folded constant offset.

When a pointer root exists, the ``inttoptr`` is rewritten as the
pointer-typed equivalent: ``bitcast`` of the root to ``i8*``, one
``getelementptr i8`` per dynamic term, one for the constant offset, and a
final ``bitcast`` to the original destination type.  This generalizes the
paper's three rules:

* Rule 1 (pointer casting): zero offset → plain ``bitcast``;
* Rule 2 (stack offset): constant offset from ``ptrtoint %stacktop``;
* Rule 3 (parameter offset): an integer *argument* root is first wrapped in
  ``inttoptr %arg to i8*`` so that pointer-parameter promotion (§5.2) can
  subsequently retype the parameter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..lir import (
    Argument,
    BinOp,
    Cast,
    ConstantInt,
    Function,
    GEP,
    I8,
    IntType,
    Value,
    ptr,
)
from ..opt.utils import erase_if_trivially_dead


@dataclass
class _Chain:
    root_ptr: Optional[Value] = None       # pointer behind a ptrtoint
    arg_root: Optional[Argument] = None    # integer argument root (rule 3)
    dynamic: list[Value] = field(default_factory=list)
    offset: int = 0
    ok: bool = True


def _trace(value: Value, chain: _Chain, sign: int, depth: int = 0) -> None:
    if not chain.ok or depth > 64:
        chain.ok = False
        return
    if isinstance(value, ConstantInt):
        chain.offset += sign * value.signed_value
        return
    if isinstance(value, Cast) and value.op == "ptrtoint":
        if chain.root_ptr is not None or chain.arg_root is not None or sign < 0:
            chain.ok = False
            return
        chain.root_ptr = value.value
        return
    if isinstance(value, BinOp) and value.op == "add":
        _trace(value.lhs, chain, sign, depth + 1)
        _trace(value.rhs, chain, sign, depth + 1)
        return
    if isinstance(value, BinOp) and value.op == "sub":
        _trace(value.lhs, chain, sign, depth + 1)
        _trace(value.rhs, chain, -sign, depth + 1)
        return
    if isinstance(value, Argument) and isinstance(value.type, IntType):
        if chain.root_ptr is not None or chain.arg_root is not None or sign < 0:
            chain.ok = False
            return
        chain.arg_root = value
        return
    # Anything else is an opaque dynamic term.
    if sign < 0:
        chain.ok = False
        return
    chain.dynamic.append(value)


def _classify_rule(chain: _Chain) -> str:
    """Which of the paper's Figure 5 rules this chain instantiates."""
    if chain.arg_root is not None:
        return "rule3-parameter-offset"
    if not chain.dynamic and chain.offset == 0:
        return "rule1-pointer-cast"
    return "rule2-address-offset"


def run_peephole(func: Function) -> bool:
    """Rewrite inttoptr chains whose root is a pointer or an int argument."""
    changed = False
    emit = telemetry.remarks_enabled()
    for bb in list(func.blocks):
        for inst in list(bb.instructions):
            if not isinstance(inst, Cast) or inst.op != "inttoptr":
                continue
            chain = _Chain()
            _trace(inst.value, chain, +1)
            if not chain.ok:
                continue
            if chain.root_ptr is None and chain.arg_root is None:
                continue
            rule = _classify_rule(chain)
            telemetry.count("refine.peephole_rewrites", rule=rule)
            if emit:
                telemetry.remark(
                    "refine-peephole", rule,
                    f"raised inttoptr chain to typed pointer ops "
                    f"({len(chain.dynamic)} dynamic terms, "
                    f"constant offset {chain.offset})",
                    function=func.name, block=bb.name,
                    instruction=f"inttoptr {inst.value.short_name()}",
                    dynamic_terms=len(chain.dynamic), offset=chain.offset)

            insert_before = inst
            new_insts: list = []

            def place(new_inst):
                # Replacement pointer ops inherit the inttoptr's provenance.
                new_inst.origins = inst.origins
                bb.insert_before(insert_before, new_inst)
                new_insts.append(new_inst)
                return new_inst

            if chain.root_ptr is not None:
                base = chain.root_ptr
                if base.type != ptr(I8):
                    base = place(Cast("bitcast", base, ptr(I8)))
            else:
                # Rule 3: expose the argument as a raw i8 pointer; pointer
                # parameter promotion will retype it.
                base = place(Cast("inttoptr", chain.arg_root, ptr(I8)))
            for term in chain.dynamic:
                base = place(GEP(I8, base, [term]))
            if chain.offset != 0:
                base = place(
                    GEP(I8, base, [ConstantInt(IntType(64), chain.offset)])
                )
            if base.type == inst.type:
                final = base
            else:
                final = place(Cast("bitcast", base, inst.type))
            inst.replace_all_uses_with(final)
            inst.erase_from_parent()
            changed = True
    if changed:
        for bb in func.blocks:
            for inst in reversed(list(bb.instructions)):
                erase_if_trivially_dead(inst)
    return changed


def count_pointer_casts(func: Function) -> int:
    """Number of inttoptr/ptrtoint instructions (Figure 13's metric)."""
    return sum(
        1
        for bb in func.blocks
        for inst in bb.instructions
        if isinstance(inst, Cast) and inst.op in ("inttoptr", "ptrtoint")
    )
