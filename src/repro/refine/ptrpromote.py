"""Pointer parameter promotion (§5.2).

For every integer parameter whose uses are all ``inttoptr`` instructions,
rewrite the parameter to a pointer type: the common destination pointer
type if all ``inttoptr`` users agree, otherwise ``i8*`` with ``bitcast``\\ s
at the uses.  Call sites are rewritten to pass pointer-typed values —
unwrapping ``ptrtoint`` chains where the caller built the address from a
pointer, inserting an ``inttoptr`` otherwise.

Functions whose address is taken (e.g. thread entry points passed to
``spawn``) are skipped: their callers are not statically visible.
"""

from __future__ import annotations

from .. import telemetry
from ..lir import (
    Argument,
    Call,
    Cast,
    Function,
    FunctionType,
    I8,
    IntType,
    Module,
    PointerType,
    Value,
    ptr,
)
from ..opt.utils import erase_if_trivially_dead


def _address_taken(module: Module, func: Function) -> bool:
    for user in func.users:
        if not (isinstance(user, Call) and user.callee is func):
            return True
    return False


def _promotable_type(arg: Argument) -> PointerType | None:
    if not isinstance(arg.type, IntType) or not arg.users:
        return None
    dest_types = set()
    for user in arg.users:
        if not (isinstance(user, Cast) and user.op == "inttoptr"):
            return None
        if user.value is not arg:
            return None
        dest_types.add(user.type)
    if len(dest_types) == 1:
        return next(iter(dest_types))
    return ptr(I8)


def run_pointer_promotion(module: Module) -> bool:
    changed = False
    emit = telemetry.remarks_enabled()
    for func in module.functions.values():
        if func.is_declaration or _address_taken(module, func):
            continue
        for index, arg in enumerate(func.arguments):
            new_type = _promotable_type(arg)
            if new_type is None:
                continue
            telemetry.count("refine.params_promoted")
            if emit:
                telemetry.remark(
                    "refine-ptrpromote", "parameter-promoted",
                    f"integer parameter #{index} "
                    f"({arg.short_name()}) promoted to {new_type} "
                    f"(section 5.2: every use is an inttoptr)",
                    function=func.name, instruction=arg.short_name(),
                    index=index, new_type=str(new_type))
            _promote(module, func, index, new_type)
            changed = True
    return changed


def _promote(
    module: Module, func: Function, index: int, new_type: PointerType
) -> None:
    arg = func.arguments[index]
    # Retype the argument and the function signature.
    arg.type = new_type
    params = list(func.ftype.params)
    params[index] = new_type
    func.ftype = FunctionType(func.ftype.ret, tuple(params), func.ftype.variadic)
    func.type = ptr(func.ftype)

    # Rewrite uses: inttoptr of the arg becomes the arg (or a bitcast).
    for user in list(arg.users):
        assert isinstance(user, Cast) and user.op == "inttoptr"
        if user.type == new_type:
            user.replace_all_uses_with(arg)
            user.erase_from_parent()
        else:
            bb = user.parent
            cast = Cast("bitcast", arg, user.type)
            bb.insert_before(user, cast)
            user.replace_all_uses_with(cast)
            user.erase_from_parent()

    # Rewrite call sites.
    for caller in module.functions.values():
        for bb in caller.blocks:
            for inst in list(bb.instructions):
                if not isinstance(inst, Call) or inst.callee is not func:
                    continue
                inst.ftype = func.ftype
                value = inst.args[index]
                new_value = _as_pointer(bb, inst, value, new_type)
                inst.set_operand(1 + index, new_value)
    # Dead ptrtoint feeders may remain at call sites.
    for caller in module.functions.values():
        for bb in caller.blocks:
            for inst in reversed(list(bb.instructions)):
                erase_if_trivially_dead(inst)


def _as_pointer(bb, call: Call, value: Value, want: PointerType) -> Value:
    if isinstance(value, Cast) and value.op == "ptrtoint":
        src = value.value
        if src.type == want:
            return src
        cast = Cast("bitcast", src, want)
        cast.origins = call.origins
        bb.insert_before(call, cast)
        return cast
    cast = Cast("inttoptr", value, want)
    cast.origins = call.origins
    bb.insert_before(call, cast)
    return cast
