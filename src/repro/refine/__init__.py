"""IR refinement (§5): expose typed pointers in lifted code."""

from __future__ import annotations

from .. import telemetry
from ..lir import Module
from ..opt import run_dce, run_instcombine, run_mem2reg, run_reassociate
from .peephole import count_pointer_casts, run_peephole
from .ptrpromote import run_pointer_promotion


def run_refinement(module: Module) -> None:
    """The full §5 refinement stage.

    The lifter materializes registers as memory slots, so refinement first
    promotes those slots to SSA (mem2reg) and folds the resulting address
    arithmetic (instcombine/reassociate) — this exposes the
    ptrtoint/add/inttoptr chains of Figure 5 — then applies the peephole
    rules and pointer-parameter promotion until a fixpoint.
    """
    with telemetry.span("refine:normalize", category="refine"):
        for func in module.functions.values():
            if func.is_declaration:
                continue
            run_mem2reg(func)
            run_instcombine(func)
            run_reassociate(func)
            run_instcombine(func)
    with telemetry.span("refine:fixpoint", category="refine"):
        for _ in range(4):
            changed = False
            for func in module.functions.values():
                if func.is_declaration:
                    continue
                changed |= run_peephole(func)
                changed |= run_instcombine(func)
            changed |= run_pointer_promotion(module)
            for func in module.functions.values():
                if not func.is_declaration:
                    run_dce(func)
            if not changed:
                break


def module_pointer_casts(module: Module) -> int:
    return sum(
        count_pointer_casts(f)
        for f in module.functions.values()
        if not f.is_declaration
    )


__all__ = [
    "run_refinement",
    "run_peephole",
    "run_pointer_promotion",
    "count_pointer_casts",
    "module_pointer_casts",
]
