"""fencecheck — static linter for the LIMM fence-mapping obligations.

Lasagne's verified x86→LIMM mapping (Fig. 8a) requires, for every access
that another thread could observe:

* ``ld  →  ldna ; Frm``   — each non-atomic load is followed by a
  read-ordering fence before the next memory access on *every* path;
* ``st  →  Fww ; stna``   — each non-atomic store is preceded by a
  write-ordering fence after the previous memory access on every path;
* ``rmw →  RMWsc``        — atomic read-modify-writes (and cmpxchg) carry
  sequentially-consistent ordering themselves.

``Fsc`` is stronger than both ``Frm`` and ``Fww``, so it discharges either
obligation; ``sc`` loads/stores are self-ordered; accesses whose address
is provably thread-local (per :mod:`repro.analysis.pointsto`) have no
obligation because no other thread can observe them.

Fence placement establishes these facts trivially (the fence sits adjacent
to the access); the point of the checker is everything that runs *after*
placement — O2 passes and fence merging — which may legally move, merge or
delete fences only while preserving the obligations.  The checker
re-derives them from scratch with two dataflow problems on the generic
engine (fences *since* the last access, forward; fences *before* the next
access, backward), so any weakening along any path surfaces as a
diagnostic with a ``function:block:instruction`` location.

Two relaxations, both proof-carrying:

* thread-locality comes from the *interprocedural* analysis
  (:func:`repro.analysis.summaries.analyze_module`) so the exemption
  matches what placement elides — pass ``module_analysis`` to share it;
* an access stamped with a ``delayset_cert`` (a cycle-freeness
  certificate from :mod:`repro.analysis.delayset`, audited separately by
  the oracle's delay-set rung) is exempt from the fence obligation the
  certificate names — its missing fence covered no critical-cycle edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import telemetry
from ..lir import (
    AtomicRMW,
    BasicBlock,
    CmpXchg,
    Fence,
    Function,
    Load,
    Module,
    Store,
    format_instruction,
)
from ..provenance.origin import format_origins
from .dataflow import BACKWARD, FORWARD, DataflowProblem, run_dataflow
from .pointsto import AliasInfo, analyze_function

# Fence kinds that discharge each obligation (Fsc subsumes both).
READ_FENCES = frozenset({"rm", "sc"})
WRITE_FENCES = frozenset({"ww", "sc"})
_ALL_KINDS = frozenset({"rm", "ww", "sc"})


@dataclass(frozen=True)
class FenceDiag:
    """One discharged-obligation failure, locatable in the printed IR."""

    function: str
    block: str
    index: int           # instruction position within the block
    kind: str            # "missing-frm" | "missing-fww" | "rmw-not-sc"
    message: str
    instruction: str     # formatted instruction text
    x86: str = ""        # originating x86 instruction(s), when provenance
                         # survived to the checked module

    @property
    def location(self) -> str:
        """The x86 source location when known, else the LIR position."""
        if self.x86:
            return f"{self.function} @ {self.x86}"
        return f"{self.function}:{self.block}:{self.index}"

    @property
    def lir_location(self) -> str:
        return f"{self.function}:{self.block}:{self.index}"

    def __str__(self) -> str:
        return f"{self.location}: {self.kind}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "instruction": self.instruction,
            "x86": self.x86,
        }


class _FencesSinceAccess(DataflowProblem):
    """Forward: fence kinds executed since the last memory access, on
    every path.  At function entry nothing has executed, so the boundary
    is the empty set; join is intersection (must-hold on all paths)."""

    direction = FORWARD

    def top(self, func: Function) -> frozenset[str]:
        return _ALL_KINDS

    def boundary(self, func: Function) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a & b

    def transfer(self, block: BasicBlock,
                 state: frozenset[str]) -> frozenset[str]:
        for inst in block.instructions:
            if isinstance(inst, Fence):
                state = state | {inst.kind}
            elif inst.accesses_memory():
                state = frozenset()
        return state


class _FencesBeforeNextAccess(DataflowProblem):
    """Backward: fence kinds guaranteed to execute before the next memory
    access (or function exit), on every path.  Function exit offers no
    fences — the caller resumes with arbitrary accesses."""

    direction = BACKWARD

    def top(self, func: Function) -> frozenset[str]:
        return _ALL_KINDS

    def boundary(self, func: Function) -> frozenset[str]:
        return frozenset()

    def join(self, a: frozenset[str], b: frozenset[str]) -> frozenset[str]:
        return a & b

    def transfer(self, block: BasicBlock,
                 state: frozenset[str]) -> frozenset[str]:
        for inst in reversed(block.instructions):
            if isinstance(inst, Fence):
                state = state | {inst.kind}
            elif inst.accesses_memory():
                state = frozenset()
        return state


def _fences_after(block: BasicBlock, index: int,
                  block_exit: frozenset[str]) -> frozenset[str]:
    """Fence kinds guaranteed between instruction ``index`` and the next
    memory access (``block_exit`` = the backward state at block end)."""
    kinds: set[str] = set()
    for inst in block.instructions[index + 1:]:
        if isinstance(inst, Fence):
            kinds.add(inst.kind)
        elif inst.accesses_memory():
            return frozenset(kinds)
    return frozenset(kinds) | block_exit


def _fences_before(block: BasicBlock, index: int,
                   block_entry: frozenset[str]) -> frozenset[str]:
    """Fence kinds guaranteed between the previous memory access and
    instruction ``index`` (``block_entry`` = the forward state at entry)."""
    kinds: set[str] = set()
    for inst in reversed(block.instructions[:index]):
        if isinstance(inst, Fence):
            kinds.add(inst.kind)
        elif inst.accesses_memory():
            return frozenset(kinds)
    return frozenset(kinds) | block_entry


def _certified(inst, obligation: str) -> bool:
    """Does ``inst`` carry a delay-set cycle-freeness certificate for the
    named fence obligation (``"rm"``/``"ww"``)?"""
    return obligation in getattr(inst, "delayset_cert", ())


def check_function(func: Function,
                   alias: Optional[AliasInfo] = None,
                   module: Optional[Module] = None) -> list[FenceDiag]:
    """Check one function's LIMM obligations; returns the diagnostics.

    ``alias`` enables the thread-locality exemption; pass ``None`` to
    compute it here, or a pre-computed :class:`AliasInfo` to share work.
    """
    if func.is_declaration:
        return []
    if alias is None:
        alias = analyze_function(func, module)

    forward = run_dataflow(func, _FencesSinceAccess())
    backward = run_dataflow(func, _FencesBeforeNextAccess())

    diags: list[FenceDiag] = []

    def diag(block: BasicBlock, index: int, kind: str, message: str) -> None:
        inst = block.instructions[index]
        diags.append(FenceDiag(
            function=func.name, block=block.name, index=index,
            kind=kind, message=message,
            instruction=format_instruction(inst).strip(),
            x86=format_origins(inst.origins) if inst.origins else ""))

    for block in func.blocks:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, Load) and inst.ordering == "na":
                if alias.is_thread_local(inst.pointer):
                    continue
                have = _fences_after(block, index, backward.block_out(block))
                if not (have & READ_FENCES):
                    if _certified(inst, "rm"):
                        telemetry.count("fencecheck.certified")
                        continue
                    diag(block, index, "missing-frm",
                         "non-thread-local ldna is not followed by Frm/Fsc "
                         "before the next memory access")
            elif isinstance(inst, Store) and inst.ordering == "na":
                if alias.is_thread_local(inst.pointer):
                    continue
                have = _fences_before(block, index, forward.block_in(block))
                if not (have & WRITE_FENCES):
                    if _certified(inst, "ww"):
                        telemetry.count("fencecheck.certified")
                        continue
                    diag(block, index, "missing-fww",
                         "non-thread-local stna is not preceded by Fww/Fsc "
                         "after the previous memory access")
            elif isinstance(inst, (AtomicRMW, CmpXchg)):
                if inst.ordering != "sc":
                    diag(block, index, "rmw-not-sc",
                         f"{inst.opcode} must map to RMWsc, "
                         f"found ordering {inst.ordering!r}")

    if telemetry.remarks_enabled():
        for d in diags:
            telemetry.remark(
                "fencecheck", d.kind, d.message,
                function=d.function, block=d.block, instruction=d.index,
                x86=d.x86)
    telemetry.count("fencecheck.functions")
    if diags:
        telemetry.count("fencecheck.violations", len(diags))
    return diags


def check_module(module: Module,
                 module_analysis: Optional[object] = None) -> list[FenceDiag]:
    """Run :func:`check_function` over every defined function.

    Thread-locality comes from the shared interprocedural analysis so the
    checker's exemption matches what fence placement elides; pass a
    pre-built :class:`~repro.analysis.summaries.ModuleAnalysis` to reuse
    one, or let it be computed here.
    """
    from .summaries import analyze_module
    ma = module_analysis or analyze_module(module)
    diags: list[FenceDiag] = []
    for func in module.functions.values():
        if func.is_declaration:
            continue
        diags.extend(check_function(func, alias=ma.alias(func), module=module))
    return diags
