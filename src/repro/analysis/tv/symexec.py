"""Per-function symbolic evaluation of LIR into TV terms.

:class:`FunctionEvaluator` executes one (acyclic) function symbolically
and produces a :class:`SymSummary` — the function's observable behavior
as three terms:

* ``ret``  — the returned value, merged over all ``ret`` paths;
* ``mem``  — the final memory, an SSA chain of ``store``/``barrier``/
  ``clobber`` nodes threaded through the CFG (conditional paths merge
  with ``ite`` nodes over *arrival conditions*);
* ``eff``  — the ordered chain of uninterpreted effects: fences,
  ``sc`` accesses, atomics and calls.  Reordering, duplicating or
  deleting any of these changes the chain, so LIMM-relevant
  transformations are never accidentally provable.

Non-atomic loads are resolved against the memory chain by a forwarding
walk that skips provably disjoint stores (structural base+offset
reasoning plus :mod:`repro.analysis.pointsto` alias queries) and skips
barriers only for provably thread-local locations — deliberately the
same discipline :mod:`repro.opt.gvn` applies, so everything GVN does is
provable and nothing it refuses to do is.

Anything outside the supported fragment (loops, vector ops, aggregate
loads) raises :class:`SymUnknown`; the checker reports those as
``unknown``, never as failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...lir.dominators import DominatorTree
from ...lir.function import BasicBlock, Function, Module
from ...lir.instructions import (
    GEP,
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    FCmp,
    Fence,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from ...lir.types import FloatType, IntType, PointerType, Type
from ...lir.values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Value,
)
from ..pointsto import analyze_function
from .terms import Term, TermBuilder, _typekey_sort

#: Bound on the CFG size the evaluator will unroll; beyond this the
#: nested arrival conditions stop paying for themselves.
MAX_BLOCKS = 400

#: Recursion bound for the load-forwarding walk through ``ite`` memory.
_FORWARD_DEPTH = 8


class SymUnknown(Exception):
    """The function (or one instruction) is outside the provable
    fragment.  ``reason`` is a stable category string for counters."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class SymSummary:
    """Observable behavior of one function, as terms."""

    ret: Optional[Term]
    mem: Term
    eff: Term


def typekey(t: Type) -> str:
    """The access-type tag used on load/store nodes (must agree between
    a store and the loads it may forward to)."""
    if isinstance(t, IntType):
        return f"i{t.bits}"
    if isinstance(t, FloatType):
        return f"f{t.bits}"
    if isinstance(t, PointerType):
        return "p64"
    raise SymUnknown("aggregate-access")


def value_sort(t: Type) -> tuple[str, int]:
    if isinstance(t, FloatType):
        return "f", t.bits
    if isinstance(t, IntType):
        return "i", t.bits
    if isinstance(t, PointerType):
        return "i", 64
    raise SymUnknown("aggregate-value")


class FunctionEvaluator:
    """Symbolically evaluate ``func`` with terms from ``builder``.

    The builder is shared between the two functions of a refinement
    check so identical subcomputations intern to identical nodes.
    """

    def __init__(self, func: Function, builder: TermBuilder,
                 module: Optional[Module] = None,
                 extra_local: Optional[set[int]] = None) -> None:
        self.func = func
        self.b = builder
        self.module = module
        self.vmap: dict[int, Term] = {}
        # tid -> LIR pointer Value, for alias/thread-locality queries.
        # Two values mapping to the same term are equal pointers, so any
        # representative is as good as another.
        self.ptr_values: dict[int, Value] = {}
        # Address-term tids externally proven thread-local.  The checker
        # seeds this with the *other* side's proofs: locality is a
        # semantic property of the shared address terms, and the pass
        # under test routinely improves what pointsto can see (mem2reg
        # deletes the store that made a slot look escaped), so each side
        # may borrow the other's sound facts.
        self.extra_local: set[int] = extra_local or set()
        self._alloca_serial = 0
        try:
            self.alias = analyze_function(func, module)
        except Exception:  # pragma: no cover - analysis must never abort TV
            self.alias = None

    # ---- entry point ---------------------------------------------------
    def run(self) -> SymSummary:
        func = self.func
        if func.is_declaration:
            raise SymUnknown("declaration")
        dt = DominatorTree(func)
        if dt.back_edges():
            raise SymUnknown("loops")
        if len(dt.rpo) > MAX_BLOCKS:
            raise SymUnknown("cfg-size")

        order = {id(bb): i for i, bb in enumerate(dt.rpo)}
        states: dict[int, tuple[Term, Term, Term]] = {}
        exits: list[tuple[Term, Optional[Term], Term, Term]] = []

        for bb in dt.rpo:
            if bb is func.entry:
                reach, mem, eff = self.b.true, self.b.mem0, self.b.eff0
            else:
                preds = [p for p in bb.predecessors() if id(p) in states]
                if not preds:
                    raise SymUnknown("cfg-order")
                preds.sort(key=lambda p: order[id(p)])
                arrives = [
                    self.b.and_(states[id(p)][0], self._edge_cond(p, bb))
                    for p in preds
                ]
                reach = arrives[0]
                for a in arrives[1:]:
                    reach = self.b.or_(reach, a)
                mem = self._merge(arrives,
                                  [states[id(p)][1] for p in preds])
                eff = self._merge(arrives,
                                  [states[id(p)][2] for p in preds])
                for phi in bb.phis():
                    vals = []
                    for p in preds:
                        v = phi.incoming_for(p)
                        if v is None:
                            raise SymUnknown("phi-incoming")
                        vals.append(self._value(v))
                    self.vmap[id(phi)] = self._merge(arrives, vals)

            for inst in bb.instructions:
                if isinstance(inst, Phi):
                    continue
                if isinstance(inst, Ret):
                    rv = None if inst.value is None \
                        else self._value(inst.value)
                    exits.append((reach, rv, mem, eff))
                    break
                if isinstance(inst, (Br, Unreachable)):
                    break
                mem, eff = self._step(inst, mem, eff)
            states[id(bb)] = (reach, mem, eff)

        if not exits:
            return SymSummary(None, self.b.mem0, self.b.eff0)
        reach_n, ret, mem, eff = exits[-1]
        for reach_i, ret_i, mem_i, eff_i in reversed(exits[:-1]):
            if ret is not None and ret_i is not None:
                ret = self.b.ite(reach_i, ret_i, ret)
            mem = self.b.ite(reach_i, mem_i, mem)
            eff = self.b.ite(reach_i, eff_i, eff)
        return SymSummary(ret, mem, eff)

    # ---- CFG helpers ---------------------------------------------------
    def _merge(self, arrives: list[Term], vals: list[Term]) -> Term:
        result = vals[-1]
        for arrive, val in zip(reversed(arrives[:-1]), reversed(vals[:-1])):
            result = self.b.ite(arrive, val, result)
        return result

    def _edge_cond(self, pred: BasicBlock, bb: BasicBlock) -> Term:
        term = pred.terminator
        if not isinstance(term, Br) or not term.is_conditional:
            return self.b.true
        if term.targets[0] is term.targets[1]:
            return self.b.true
        cond = self._value(term.cond)
        if bb is term.targets[0]:
            return cond
        return self.b.not_(cond)

    # ---- value mapping -------------------------------------------------
    def _value(self, v: Value) -> Term:
        t = self.vmap.get(id(v))
        if t is not None:
            return t
        t = self._leaf(v)
        self.vmap[id(v)] = t
        return t

    def _leaf(self, v: Value) -> Term:
        if isinstance(v, ConstantInt):
            return self.b.const(v.type.bits, v.value)
        if isinstance(v, ConstantFloat):
            return self.b.fconst(v.type.bits, v.value)
        if isinstance(v, ConstantPointerNull):
            return self.b.const(64, 0)
        if isinstance(v, UndefValue):
            kind, bits = value_sort(v.type)
            return self.b.undef(bits, kind)
        if isinstance(v, Argument):
            kind, bits = value_sort(v.type)
            term = self.b.var(f"arg{v.index}", bits, kind)
            if isinstance(v.type, PointerType):
                self.ptr_values[term.tid] = v
            return term
        if isinstance(v, GlobalVariable):
            term = self.b.var(f"global:{v.name}", 64)
            self.ptr_values[term.tid] = v
            return term
        if isinstance(v, GlobalValue):  # functions / externals as values
            return self.b.var(f"func:{v.name}", 64)
        # An instruction result that was never defined on a path reaching
        # its use would be an SSA violation; the verifier owns that.
        raise SymUnknown("unmodeled-value")

    # ---- instruction semantics ----------------------------------------
    def _step(self, inst, mem: Term, eff: Term) -> tuple[Term, Term]:
        b = self.b
        if isinstance(inst, Alloca):
            self._alloca_serial += 1
            label = inst.name or f"#{self._alloca_serial}"
            term = b.var(f"stack:{label}", 64)
            self.ptr_values[term.tid] = inst
            self.vmap[id(inst)] = term
            return mem, eff
        if isinstance(inst, GEP):
            self.vmap[id(inst)] = self._gep(inst)
            return mem, eff
        if isinstance(inst, BinOp):
            self.vmap[id(inst)] = b.binop(
                inst.op, self._value(inst.lhs), self._value(inst.rhs))
            return mem, eff
        if isinstance(inst, ICmp):
            self.vmap[id(inst)] = b.icmp(
                inst.pred, self._value(inst.lhs), self._value(inst.rhs))
            return mem, eff
        if isinstance(inst, FCmp):
            self.vmap[id(inst)] = b.fcmp(
                inst.pred, self._value(inst.lhs), self._value(inst.rhs))
            return mem, eff
        if isinstance(inst, Cast):
            kind, bits = value_sort(inst.type)
            self.vmap[id(inst)] = b.cast(
                inst.op, self._value(inst.value), bits, kind)
            return mem, eff
        if isinstance(inst, Select):
            self.vmap[id(inst)] = b.ite(
                self._value(inst.cond),
                self._value(inst.true_value),
                self._value(inst.false_value))
            return mem, eff
        if isinstance(inst, Load):
            return self._load(inst, mem, eff)
        if isinstance(inst, Store):
            return self._store(inst, mem, eff)
        if isinstance(inst, Fence):
            eff = b.effect(eff, f"fence:{inst.kind}")
            return b.barrier(mem, inst.kind), eff
        if isinstance(inst, AtomicRMW):
            tk = typekey(inst.type)
            eff = b.effect(eff, f"rmw:{inst.op}:{tk}",
                           self._value(inst.pointer),
                           self._value(inst.value))
            self.vmap[id(inst)] = b.effres(eff, tk)
            return b.clobber(mem, eff), eff
        if isinstance(inst, CmpXchg):
            tk = typekey(inst.type)
            eff = b.effect(eff, f"cmpxchg:{tk}",
                           self._value(inst.pointer),
                           self._value(inst.expected),
                           self._value(inst.new))
            self.vmap[id(inst)] = b.effres(eff, tk)
            return b.clobber(mem, eff), eff
        if isinstance(inst, Call):
            return self._call(inst, mem, eff)
        raise SymUnknown(f"unsupported:{inst.opcode}")

    def _gep(self, inst: GEP) -> Term:
        b = self.b
        addr = self._value(inst.pointer)
        sizes = [inst.source_type.size_bytes()]
        if len(inst.indices) == 2:
            sizes.append(inst.source_type.element.size_bytes())
        for idx, size in zip(inst.indices, sizes):
            it = self._value(idx)
            if it.bits < 64:
                # interp treats sub-64-bit indices as unsigned 64-bit
                it = b.cast("zext", it, 64)
            addr = b.binop("add", addr, b.binop("mul", it, b.const(64, size)))
        self.ptr_values[addr.tid] = inst
        return addr

    def _load(self, inst: Load, mem: Term, eff: Term) -> tuple[Term, Term]:
        b = self.b
        tk = typekey(inst.type)
        addr = self._value(inst.pointer)
        self.ptr_values.setdefault(addr.tid, inst.pointer)
        if inst.ordering == "sc":
            eff = b.effect(eff, f"load-sc:{tk}", addr)
            self.vmap[id(inst)] = b.effres(eff, tk)
            return b.barrier(mem, "sc"), eff
        self.vmap[id(inst)] = self._forward(mem, addr, tk, _FORWARD_DEPTH)
        return mem, eff

    def _store(self, inst: Store, mem: Term, eff: Term) -> tuple[Term, Term]:
        b = self.b
        tk = typekey(inst.value.type)
        addr = self._value(inst.pointer)
        val = self._value(inst.value)
        self.ptr_values.setdefault(addr.tid, inst.pointer)
        if inst.ordering == "sc":
            eff = b.effect(eff, f"store-sc:{tk}", addr, val)
            return b.barrier(b.store(mem, addr, val, tk), "sc"), eff
        return b.store(mem, addr, val, tk), eff

    def _call(self, inst: Call, mem: Term, eff: Term) -> tuple[Term, Term]:
        b = self.b
        callee = inst.callee
        name = getattr(callee, "name", "") or "?indirect"
        argterms = [self._value(a) for a in inst.args]
        if not isinstance(callee, GlobalValue):
            argterms.insert(0, self._value(callee))
        eff = b.effect(eff, f"call:{name}", *argterms)
        if not inst.type.is_void:
            self.vmap[id(inst)] = b.effres(eff, typekey(inst.type))
        if not inst.is_readnone_callee():
            mem = b.clobber(mem, eff)
        return mem, eff

    # ---- load forwarding ----------------------------------------------
    def _forward(self, mem: Term, addr: Term, tk: str, depth: int) -> Term:
        """Resolve a non-atomic load against the store chain.  Returns
        the forwarded value, or a symbolic ``load`` over the residual
        chain when the walk gets stuck."""
        b = self.b
        cursor = mem
        while True:
            if cursor.op == "store":
                inner, saddr, sval = cursor.args
                stk = cursor.attr[0]
                if saddr is addr:
                    if stk == tk:
                        return sval
                    return b.load(cursor, addr, tk)  # type-punned reload
                if self._disjoint(saddr, stk, addr, tk):
                    cursor = inner
                    continue
                return b.load(cursor, addr, tk)
            if cursor.op in ("barrier", "clobber"):
                if self._is_local(addr):
                    cursor = cursor.args[0]
                    continue
                return b.load(cursor, addr, tk)
            if cursor.op == "ite" and depth > 0:
                cond, mt, mf = cursor.args
                return b.ite(cond,
                             self._forward(mt, addr, tk, depth - 1),
                             self._forward(mf, addr, tk, depth - 1))
            if cursor.op == "mem0" and self._is_local(addr):
                # Reading a fresh stack slot before any store: the value
                # is undef, and a pass may refine it to anything (mem2reg
                # materializes 0 for uninitialized promoted slots).
                kind, bits = _typekey_sort(tk)
                return b.undef(bits, kind)
            return b.load(cursor, addr, tk)

    def _is_local(self, addr: Term) -> bool:
        if addr.tid in self.extra_local:
            return True
        base, _ = _split_addr(addr)
        if base is not addr and base.tid in self.extra_local:
            return True
        if self.alias is None:
            return False
        v = self.ptr_values.get(addr.tid)
        if v is not None and self.alias.is_thread_local(v):
            return True
        if base is not addr:
            v = self.ptr_values.get(base.tid)
            return v is not None and self.alias.is_thread_local(v)
        return False

    def proved_local_tids(self) -> set[int]:
        """Tids of every address term this side can prove thread-local."""
        out = set(self.extra_local)
        if self.alias is not None:
            for tid, v in self.ptr_values.items():
                if self.alias.is_thread_local(v):
                    out.add(tid)
        return out

    def _disjoint(self, a: Term, atk: str, b: Term, btk: str) -> bool:
        abase, aoff = _split_addr(a)
        bbase, boff = _split_addr(b)
        if abase is bbase:
            asize = _access_bytes(atk)
            bsize = _access_bytes(btk)
            return aoff + asize <= boff or boff + bsize <= aoff
        if (abase.op == "var" and bbase.op == "var"
                and abase.attr[0].split(":", 1)[0] in ("stack", "global")
                and bbase.attr[0].split(":", 1)[0] in ("stack", "global")):
            # Distinct allocation bases occupy disjoint address ranges
            # (same object-separation assumption the interpreter and
            # pointsto make); offsets stay in range on the acyclic
            # fragment we evaluate.
            return True
        if self.alias is not None:
            va = self.ptr_values.get(a.tid)
            vb = self.ptr_values.get(b.tid)
            if va is not None and vb is not None:
                return self.alias.alias(va, vb) == "no"
        return False


def _split_addr(term: Term) -> tuple[Term, int]:
    """Decompose an address term into (base, constant byte offset)."""
    offset = 0
    while (term.op == "binop" and term.attr[0] == "add"
           and term.args[1].is_const):
        off = term.args[1].value
        if off >= 1 << 63:
            off -= 1 << 64
        offset += off
        term = term.args[0]
    return term, offset


def _access_bytes(tk: str) -> int:
    return max(1, int(tk[1:]) // 8)


def observable_memory(mem: Term, builder: TermBuilder,
                      is_local) -> Term:
    """Project a memory chain down to what other threads (and the
    caller) can observe:

    * stores to provably thread-local locations are dropped — the
      storage dies when the function returns (this is what licenses
      ``mem2reg``/``sroa``/DSE on locals);
    * a store fully shadowed by a later store to the same address and
      access type is dropped, but only when no ``barrier``/``clobber``
      intervenes — under LIMM another thread may legitimately observe
      the intermediate value across a fence, so DSE across a fence
      would (correctly) fail to verify;
    * barriers, clobbers and everything else are kept in order.
    """

    memo: dict[tuple[int, frozenset], Term] = {}

    def project(node: Term, killed: frozenset) -> Term:
        cached = memo.get((node.tid, killed))
        if cached is not None:
            return cached
        result = _project(node, killed)
        memo[(node.tid, killed)] = result
        return result

    def _project(node: Term, killed: frozenset) -> Term:
        if node.op == "store":
            inner, addr, val = node.args
            tk = node.attr[0]
            if is_local(addr):
                return project(inner, killed)
            if (addr.tid, tk) in killed:
                return project(inner, killed)
            new_inner = project(inner, killed | {(addr.tid, tk)})
            return builder.store(new_inner, addr, val, tk)
        if node.op == "barrier":
            return builder.barrier(project(node.args[0], frozenset()),
                                   node.attr[0])
        if node.op == "clobber":
            return builder.clobber(project(node.args[0], frozenset()),
                                   node.args[1])
        if node.op == "ite":
            cond, t, f = node.args
            return builder.ite(cond, project(t, killed), project(f, killed))
        return node

    return project(mem, frozenset())
