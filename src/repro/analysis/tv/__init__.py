"""Per-pass translation validation (Alive-style refinement checking).

The dynamic co-simulation oracle samples inputs; this package gives the
optimizer a *static* correctness gate instead: after every pass
invocation, each function's observable behavior — return value,
observable memory, and the ordered chain of fences/atomics/calls — is
evaluated symbolically on both sides and compared.  Verdicts are
``proved``, ``unknown`` (incompleteness, counted but never failed) or
``refuted`` (confirmed by a concrete counterexample and blamed back to
x86 provenance).

Entry points:

* :class:`TVChecker` — the pass-manager hook; accumulates a
  :class:`TVReport`.
* ``repro tv`` / ``repro translate --tv`` — CLI surfaces.
* :mod:`.mutations` — deliberate-miscompile injection for smoke tests.
"""

from .checker import (
    DEFAULT_SAMPLES,
    DEFAULT_TERM_CAP,
    MODULE_PASSES,
    TVChecker,
    TVReport,
    TVVerdict,
)
from .symexec import FunctionEvaluator, SymSummary, SymUnknown
from .terms import ALGEBRAIC_RULES, Rule, Term, TermBuilder, TermCapExceeded

__all__ = [
    "ALGEBRAIC_RULES",
    "DEFAULT_SAMPLES",
    "DEFAULT_TERM_CAP",
    "MODULE_PASSES",
    "FunctionEvaluator",
    "Rule",
    "SymSummary",
    "SymUnknown",
    "Term",
    "TermBuilder",
    "TermCapExceeded",
    "TVChecker",
    "TVReport",
    "TVVerdict",
]
