"""Concrete evaluation of TV terms — the counterexample confirmer.

A structural mismatch between two normalized term graphs is *evidence*
of a miscompile, not proof: the rewriter is deliberately incomplete, so
semantically equal programs can normalize to different terms.  Before
the checker reports ``refuted`` it evaluates both graphs on concrete
random assignments; only a sample on which the observables genuinely
differ upgrades the mismatch to a counterexample (otherwise the verdict
degrades to ``unknown``).

Semantics here are single-threaded and deterministic:

* uninterpreted results (``effres``, ``opaque``, ``undef``, initial
  memory bytes) come from a seeded :class:`Oracle` — a pure function of
  the *concrete* inputs, so structurally different but concretely equal
  effect chains yield identical results and can never fabricate a
  divergence;
* memory is a layered byte store; ``barrier``/``clobber`` layers are
  transparent to reads (single-threaded view) — cross-thread
  orderings are compared through the effect chain instead;
* a trapping sample (division by zero, float-to-int overflow) is
  *invalid* and skipped — traps are outside the refinement relation
  this validator checks.

The arithmetic reuses :mod:`repro.lir.interp`'s apply functions so the
confirmer can never disagree with the reference interpreter.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Optional

from ...lir.interp import (
    InterpError,
    _binop_apply,
    _fcmp_apply,
    _icmp_apply,
    _sext,
    _signed,
)
from ...lir.types import FloatType, IntType
from .terms import Term


class SampleInvalid(Exception):
    """This concrete assignment triggers a trap; try another one."""


class Oracle:
    """Deterministic source of values for uninterpreted terms.

    Keys must be built from *concrete* values only (never term ids), so
    two structurally different terms that denote the same computation
    always receive the same oracle value.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._cache: dict[tuple, int] = {}

    def value(self, key: tuple, bits: int) -> int:
        full = (bits,) + key
        cached = self._cache.get(full)
        if cached is None:
            h = hashlib.sha256(f"{self.seed}|{full!r}".encode()).digest()
            cached = int.from_bytes(h[:8], "little") & ((1 << bits) - 1)
            self._cache[full] = cached
        return cached

    def fvalue(self, key: tuple, bits: int) -> float:
        raw = self.value(("float",) + key, 64)
        val = struct.unpack("<d", raw.to_bytes(8, "little"))[0]
        if val != val or val in (float("inf"), float("-inf")):
            val = float(raw % 4096) / 16.0  # keep oracle floats tame
        if bits == 32:
            val = struct.unpack("<f", struct.pack("<f", val))[0]
        return val

    def initial_byte(self, addr: int) -> int:
        return self.value(("initmem", addr), 8)


def canon(v: object) -> object:
    """Hashable, equality-safe canonical form of a concrete value
    (floats by bit pattern so NaN == NaN and -0.0 != 0.0)."""
    if isinstance(v, float):
        return ("f", struct.pack("<d", v))
    return v


def evaluate(term: Term, env: dict[str, object], oracle: Oracle,
             memo: Optional[dict[int, object]] = None) -> object:
    """Evaluate ``term`` under ``env`` (var name → value).

    Integers evaluate to masked ints, floats to Python floats, memory
    and effect chains to nested tuples.  Raises :class:`SampleInvalid`
    on traps.  ``ite`` evaluates lazily, so a trap on an untaken branch
    does not invalidate the sample.
    """
    if memo is None:
        memo = {}

    def ev(t: Term) -> object:
        hit = memo.get(t.tid)
        if hit is None and t.tid not in memo:
            hit = _ev(t)
            memo[t.tid] = hit
        return hit

    def _ev(t: Term) -> object:
        op = t.op
        if op == "const":
            return t.attr[1]
        if op == "fconst":
            return t.attr[0]
        if op == "var":
            name = t.attr[0]
            if name in env:
                return env[name]
            if t.sort[0] == "f":
                return oracle.fvalue(("var", name), t.bits)
            return oracle.value(("var", name), t.bits)
        if op == "undef":
            return oracle.value(("undef", t.attr[0]), t.bits)
        if op == "binop":
            bop, bits = t.attr
            lhs, rhs = ev(t.args[0]), ev(t.args[1])
            type_ = FloatType(bits) if t.sort[0] == "f" else IntType(bits)
            try:
                result = _binop_apply(bop, lhs, rhs, type_)
            except (InterpError, ZeroDivisionError, OverflowError) as exc:
                raise SampleInvalid(str(exc)) from exc
            return float(result) if t.sort[0] == "f" else int(result)
        if op == "icmp":
            pred, bits = t.attr
            return _icmp_apply(pred, int(ev(t.args[0])),
                               int(ev(t.args[1])), IntType(bits))
        if op == "fcmp":
            return _fcmp_apply(t.attr[0], float(ev(t.args[0])),
                               float(ev(t.args[1])))
        if op == "cast":
            return _cast(t, ev(t.args[0]))
        if op == "ite":
            cond = int(ev(t.args[0]))
            return ev(t.args[1] if cond & 1 else t.args[2])
        if op == "load":
            mem = ev(t.args[0])
            addr = int(ev(t.args[1]))
            return _read(mem, addr, t.attr[0], oracle)
        if op == "store":
            inner = ev(t.args[0])
            addr = int(ev(t.args[1]))
            data = _value_bytes(ev(t.args[2]), t.attr[0])
            return ("store", inner, addr, len(data), data)
        if op == "barrier":
            return ("barrier", ev(t.args[0]), t.attr[0])
        if op == "clobber":
            return ("clobber", ev(t.args[0]), ev(t.args[1]))
        if op == "effect":
            inner = ev(t.args[0])
            argvals = tuple(canon(ev(a)) for a in t.args[1:])
            return ("effect", inner, t.attr[0], argvals)
        if op == "effres":
            key = ("effres", t.attr[0], ev(t.args[0]))
            if t.sort[0] == "f":
                return oracle.fvalue(key, t.bits)
            return oracle.value(key, t.bits)
        if op == "opaque":
            argvals = tuple(canon(ev(a)) for a in t.args)
            key = ("opaque", t.attr[0], argvals)
            if t.sort[0] == "f":
                return oracle.fvalue(key, t.bits)
            return oracle.value(key, t.bits)
        if op == "mem0":
            return ("mem0",)
        if op == "eff0":
            return ("eff0",)
        raise SampleInvalid(f"unevaluable op {op}")

    return ev(term)


def _cast(t: Term, v: object) -> object:
    op, from_bits, to_bits = t.attr
    if op in ("ptrtoint", "inttoptr"):
        return int(v) & ((1 << 64) - 1)
    if op == "trunc":
        return int(v) & ((1 << to_bits) - 1)
    if op == "zext":
        return int(v)
    if op == "sext":
        return _sext(int(v), from_bits, to_bits)
    if op == "bitcast":
        if t.sort[0] == "f":
            if isinstance(v, float):
                return v
            fmt = "<f" if to_bits == 32 else "<d"
            return struct.unpack(fmt, int(v).to_bytes(to_bits // 8,
                                                      "little"))[0]
        if isinstance(v, float):
            fmt = "<f" if from_bits == 32 else "<d"
            return int.from_bytes(struct.pack(fmt, v), "little")
        return int(v) & ((1 << to_bits) - 1)
    if op == "sitofp":
        return float(_signed(int(v), from_bits))
    if op == "uitofp":
        return float(int(v))
    if op in ("fptosi", "fptoui"):
        f = float(v)
        if f != f or f in (float("inf"), float("-inf")):
            raise SampleInvalid("float-to-int of nan/inf")
        try:
            return int(f) & ((1 << to_bits) - 1)
        except (OverflowError, ValueError) as exc:
            raise SampleInvalid(str(exc)) from exc
    if op == "fpext":
        return float(v)
    if op == "fptrunc":
        return struct.unpack("<f", struct.pack("<f", float(v)))[0]
    raise SampleInvalid(f"unevaluable cast {op}")


def _value_bytes(v: object, tk: str) -> bytes:
    size = max(1, int(tk[1:]) // 8)
    if tk.startswith("f"):
        fmt = "<f" if tk == "f32" else "<d"
        return struct.pack(fmt, float(v))
    return (int(v) & ((1 << (size * 8)) - 1)).to_bytes(size, "little")


def _read(mem: object, addr: int, tk: str, oracle: Oracle) -> object:
    size = max(1, int(tk[1:]) // 8)
    out = bytearray(size)
    missing = set(range(size))
    layer = mem
    while missing and isinstance(layer, tuple) and layer[0] != "mem0":
        kind = layer[0]
        if kind == "store":
            _, inner, saddr, ssize, data = layer
            for i in list(missing):
                off = addr + i - saddr
                if 0 <= off < ssize:
                    out[i] = data[off]
                    missing.discard(i)
            layer = inner
        else:  # barrier / clobber: transparent to single-threaded reads
            layer = layer[1]
    for i in missing:
        out[i] = oracle.initial_byte(addr + i)
    raw = bytes(out)
    if tk.startswith("f"):
        fmt = "<f" if tk == "f32" else "<d"
        return struct.unpack(fmt, raw)[0]
    return int.from_bytes(raw, "little")


def _touched(mem: object) -> set[tuple[int, int]]:
    """All (addr, size) store ranges in a concrete memory value."""
    ranges: set[tuple[int, int]] = set()
    layer = mem
    while isinstance(layer, tuple) and layer[0] != "mem0":
        if layer[0] == "store":
            _, inner, addr, size, _data = layer
            ranges.add((addr, size))
            layer = inner
        else:
            layer = layer[1]
    return ranges


def memories_equal(m1: object, m2: object, oracle: Oracle) -> bool:
    """Final-state comparison: every byte either memory wrote reads the
    same from both (barriers transparent)."""
    addrs: set[int] = set()
    for addr, size in _touched(m1) | _touched(m2):
        addrs.update(range(addr, addr + size))
    return all(
        _read(m1, a, "i8", oracle) == _read(m2, a, "i8", oracle)
        for a in addrs
    )


def values_equal(v1: object, v2: object) -> bool:
    return canon(v1) == canon(v2)
