"""Per-pass refinement verdicts: proved / unknown / refuted.

:class:`TVChecker` is the policy layer of the translation validator.
The pass manager hands it a snapshot of the module from before each
pass invocation plus the (mutated) module from after; for every defined
function it renders one of three verdicts:

``proved``
    The printed IR is unchanged, or both sides symbolically evaluate
    (:mod:`.symexec`) to identical observable terms — return value,
    observable memory, and the ordered effect chain all intern to the
    same nodes of a shared :class:`~.terms.TermBuilder`.

``unknown``
    The function is outside the provable fragment (loops, vector ops,
    term budget), the pass is interprocedural (inlining makes the
    effect chains incomparable), an ``undef`` reached an observable, or
    the terms mismatch but no concrete sample confirms a divergence.
    Unknown is *counted, never failed* — incompleteness is not
    evidence of a bug.

``refuted``
    The terms mismatch AND a concrete random assignment
    (:mod:`.concrete`) makes the two sides observably disagree.  The
    verdict carries the divergent observable, the sample, both term
    renderings, and x86 provenance blame recovered from the before-
    function's ``origins``.

Verdicts are recorded in a :class:`TVReport`, mirrored to telemetry
remarks (origin ``tv``) and counted under ``tv.*`` work counters.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field
from typing import Optional

from ... import telemetry
from ...lir.function import Function, Module
from ...lir.printer import format_function
from ...profiler import workcounters
from ...provenance.origin import origins_of
from .concrete import (
    Oracle,
    SampleInvalid,
    evaluate,
    memories_equal,
    values_equal,
)
from .symexec import (
    FunctionEvaluator,
    SymSummary,
    SymUnknown,
    observable_memory,
)
from .terms import Term, TermBuilder, TermCapExceeded, contains_op, render

#: Passes that rewrite across function boundaries; a per-function
#: symbolic comparison cannot relate their before/after effect chains
#: (an inlined callee's effects replace a single ``call:`` effect), so
#: changed functions become ``unknown`` rather than false alarms.
MODULE_PASSES = frozenset({"ipsccp", "inline"})

#: Per-check budget on freshly created term nodes.
DEFAULT_TERM_CAP = 60_000

#: Concrete assignments tried before a mismatch may become ``refuted``.
DEFAULT_SAMPLES = 8

_ADDR_BASE = 0x0010_0000
_ADDR_STRIDE = 0x0001_0000


@dataclass
class TVVerdict:
    """One (pass invocation, function) refinement verdict."""

    pass_name: str
    iteration: int
    function: str
    verdict: str           # "proved" | "unknown" | "refuted"
    reason: str            # e.g. "unchanged", "checked", "loops", ...
    detail: str = ""       # human-readable divergence description
    blame: str = ""        # x86 provenance, e.g. "0x401020(mov)"

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "iteration": self.iteration,
            "function": self.function,
            "verdict": self.verdict,
            "reason": self.reason,
            "detail": self.detail,
            "blame": self.blame,
        }


@dataclass
class TVReport:
    """Accumulated verdicts for one translation."""

    verdicts: list[TVVerdict] = field(default_factory=list)

    @property
    def proved(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "proved")

    @property
    def unknown(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "unknown")

    @property
    def refuted(self) -> int:
        return sum(1 for v in self.verdicts if v.verdict == "refuted")

    def refutations(self) -> list[TVVerdict]:
        return [v for v in self.verdicts if v.verdict == "refuted"]

    def counts(self) -> dict[str, int]:
        return {"proved": self.proved, "unknown": self.unknown,
                "refuted": self.refuted}

    def to_dict(self) -> dict:
        return {
            "summary": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }


class TVChecker:
    """Checks that each pass invocation's output refines its input."""

    def __init__(self, cap: int = DEFAULT_TERM_CAP,
                 samples: int = DEFAULT_SAMPLES, seed: int = 0,
                 module_passes: frozenset = MODULE_PASSES) -> None:
        self.cap = cap
        self.samples = samples
        self.seed = seed
        self.module_passes = module_passes
        self.report = TVReport()

    # ---- pass-manager hook --------------------------------------------
    def check_pass(self, before: Module, after: Module, pass_name: str,
                   iteration: int = 0) -> list[TVVerdict]:
        """Compare every defined function across one pass invocation."""
        out: list[TVVerdict] = []
        after_funcs = {name: f for name, f in after.functions.items()
                       if not f.is_declaration}
        for name, bfunc in before.functions.items():
            if bfunc.is_declaration:
                continue
            workcounters.work("tv.checks", function=name)
            afunc = after_funcs.get(name)
            if afunc is None:
                out.append(self._verdict(pass_name, iteration, name,
                                         "unknown", "function-removed"))
                continue
            out.append(self._check_function(before, after, bfunc, afunc,
                                            pass_name, iteration))
        self.report.verdicts.extend(out)
        return out

    # ---- one function --------------------------------------------------
    def _check_function(self, bmod: Module, amod: Module,
                        bfunc: Function, afunc: Function,
                        pass_name: str, iteration: int) -> TVVerdict:
        name = bfunc.name
        if format_function(bfunc) == format_function(afunc):
            return self._verdict(pass_name, iteration, name,
                                 "proved", "unchanged")
        if pass_name in self.module_passes:
            return self._verdict(pass_name, iteration, name,
                                 "unknown", "module-pass")

        builder = TermBuilder(cap=self.cap)
        limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(limit, 20_000))
        try:
            bev = FunctionEvaluator(bfunc, builder, bmod)
            bsum = bev.run()
            aev = FunctionEvaluator(afunc, builder, amod)
            asum = aev.run()
            # Thread-locality is a semantic property of the (shared)
            # address terms, so a sound proof found on either side
            # licenses load forwarding and store dropping on both — the
            # pass under test often *improves* what pointsto can prove
            # (mem2reg deletes the store that made a slot look escaped),
            # and evaluating each side with only its own facts would
            # misreport that asymmetry as a divergence.  Re-evaluate any
            # side the union taught something new.
            blocal = bev.proved_local_tids()
            alocal = aev.proved_local_tids()
            union = blocal | alocal
            if union - blocal:
                bev = FunctionEvaluator(bfunc, builder, bmod,
                                        extra_local=union)
                bsum = bev.run()
            if union - alocal:
                aev = FunctionEvaluator(afunc, builder, amod,
                                        extra_local=union)
                asum = aev.run()
            is_local = lambda t: bev._is_local(t) or aev._is_local(t)
            bobs = observable_memory(bsum.mem, builder, is_local)
            aobs = observable_memory(asum.mem, builder, is_local)
        except SymUnknown as exc:
            return self._verdict(pass_name, iteration, name,
                                 "unknown", exc.reason)
        except (TermCapExceeded, RecursionError):
            return self._verdict(pass_name, iteration, name,
                                 "unknown", "term-cap")
        finally:
            sys.setrecursionlimit(limit)
            workcounters.work("tv.terms", builder.created, function=name)

        mismatches = self._mismatches(bsum, bobs, asum, aobs)
        if not mismatches:
            return self._verdict(pass_name, iteration, name,
                                 "proved", "checked")
        for _, bterm, aterm in mismatches:
            if (bterm is not None and contains_op(bterm, "undef")) or \
                    (aterm is not None and contains_op(aterm, "undef")):
                return self._verdict(pass_name, iteration, name,
                                     "unknown", "undef")
        return self._confirm(bfunc, mismatches, bsum, bobs, asum, aobs,
                             pass_name, iteration)

    @classmethod
    def _mismatches(cls, bsum: SymSummary, bobs: Term,
                    asum: SymSummary, aobs: Term) -> list[tuple]:
        out = []
        memo: dict[tuple[int, int], bool] = {}
        if not cls._refines(bsum.ret, asum.ret, memo):
            out.append(("return value", bsum.ret, asum.ret))
        if not cls._refines(bobs, aobs, memo):
            out.append(("observable memory", bobs, aobs))
        if not cls._refines(bsum.eff, asum.eff, memo):
            out.append(("effect chain", bsum.eff, asum.eff))
        return out

    @classmethod
    def _refines(cls, bterm: Optional[Term], aterm: Optional[Term],
                 memo: dict) -> bool:
        """Does ``aterm`` refine ``bterm``?  Identical interned nodes
        trivially refine; an ``undef`` on the *before* side is a
        wildcard the pass may replace with any same-sorted value (this
        is LLVM's refinement order, and it is deliberately asymmetric —
        introducing fresh undef on the after side does not verify)."""
        if bterm is aterm:
            return True
        if bterm is None or aterm is None:
            return False
        if bterm.op == "undef":
            return bterm.sort == aterm.sort
        key = (bterm.tid, aterm.tid)
        cached = memo.get(key)
        if cached is not None:
            return cached
        memo[key] = True  # optimistic for sharing; cycles impossible (DAG)
        ok = (bterm.op == aterm.op and bterm.attr == aterm.attr
              and len(bterm.args) == len(aterm.args)
              and all(cls._refines(x, y, memo)
                      for x, y in zip(bterm.args, aterm.args)))
        memo[key] = ok
        return ok

    # ---- concrete confirmation ----------------------------------------
    def _confirm(self, bfunc: Function, mismatches: list[tuple],
                 bsum: SymSummary, bobs: Term, asum: SymSummary,
                 aobs: Term, pass_name: str, iteration: int) -> TVVerdict:
        name = bfunc.name
        roots = [t for pair in mismatches for t in pair[1:]
                 if t is not None]
        var_terms = _free_vars(roots)
        oracle = Oracle(self.seed)
        for sample in range(self.samples):
            env = self._sample_env(var_terms, sample)
            workcounters.work("tv.confirms", function=name)
            try:
                divergence = self._diverges(env, oracle, mismatches)
            except (SampleInvalid, RecursionError):
                continue
            if divergence is not None:
                what, bterm, aterm = divergence
                detail = (
                    f"{what} diverges on {_format_env(env)}: "
                    f"before={render(bterm) if bterm is not None else 'void'}"
                    f" vs after="
                    f"{render(aterm) if aterm is not None else 'void'}"
                )
                return self._verdict(pass_name, iteration, name,
                                     "refuted", what, detail,
                                     _blame(bfunc))
        return self._verdict(pass_name, iteration, name,
                             "unknown", "unconfirmed-mismatch")

    def _diverges(self, env: dict, oracle: Oracle,
                  mismatches: list[tuple]) -> Optional[tuple]:
        bmemo: dict[int, object] = {}
        amemo: dict[int, object] = {}
        for what, bterm, aterm in mismatches:
            if bterm is None or aterm is None:
                continue
            bval = evaluate(bterm, env, oracle, bmemo)
            aval = evaluate(aterm, env, oracle, amemo)
            if what == "observable memory":
                if not memories_equal(bval, aval, oracle):
                    return (what, bterm, aterm)
            elif not values_equal(bval, aval):
                return (what, bterm, aterm)
        return None

    def _sample_env(self, var_terms: list[Term], sample: int) -> dict:
        rng = random.Random((self.seed << 20) ^ (sample * 0x9E3779B9))
        env: dict[str, object] = {}
        addr_slot = 0
        for term in sorted(var_terms, key=lambda t: t.attr[0]):
            vname = term.attr[0]
            prefix = vname.split(":", 1)[0]
            if prefix in ("stack", "global", "func"):
                env[vname] = _ADDR_BASE + addr_slot * _ADDR_STRIDE
                addr_slot += 1
                continue
            bits = term.bits or 64
            if term.sort[0] == "f":
                env[vname] = float(rng.choice(
                    [0.0, 1.0, -1.0, 0.5, float(rng.randrange(1 << 10))]))
                continue
            mask = (1 << bits) - 1
            style = sample % 4
            if style == 0:
                env[vname] = rng.randrange(0, min(16, mask + 1))
            elif style == 1:
                env[vname] = rng.choice([0, 1, mask, mask >> 1])
            else:
                env[vname] = rng.randrange(0, mask + 1)
        return env

    # ---- bookkeeping ---------------------------------------------------
    def _verdict(self, pass_name: str, iteration: int, function: str,
                 verdict: str, reason: str, detail: str = "",
                 blame: str = "") -> TVVerdict:
        workcounters.work(f"tv.{verdict}", function=function)
        if telemetry.remarks_enabled():
            telemetry.remark(
                "tv", verdict,
                f"{pass_name}: {verdict} ({reason})" +
                (f" — {detail}" if detail else ""),
                function=function, pass_name=pass_name,
                iteration=iteration, blame=blame)
        return TVVerdict(pass_name, iteration, function, verdict,
                         reason, detail, blame)


def _free_vars(roots: list[Term]) -> list[Term]:
    seen: set[int] = set()
    out: dict[str, Term] = {}
    stack = list(roots)
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen.add(t.tid)
        if t.op == "var":
            out.setdefault(t.attr[0], t)
        stack.extend(t.args)
    return list(out.values())


def _blame(func: Function) -> str:
    """x86 provenance blame: the lowest real origin address in the
    function the pass miscompiled."""
    best = None
    for inst in func.instructions():
        for origin in origins_of(inst):
            if origin.is_synthetic:
                continue
            if best is None or origin.addr < best.addr:
                best = origin
    if best is None:
        return ""
    return best.format()


def _format_env(env: dict) -> str:
    items = sorted(env.items())
    shown = ", ".join(f"{k}={v}" for k, v in items[:6])
    if len(items) > 6:
        shown += f", ... ({len(items) - 6} more)"
    return "{" + shown + "}"
