"""Deliberate miscompile injection — the validator's own smoke test.

A translation validator that never fires is indistinguishable from one
that cannot fire.  This module wraps a named optimization pass so that,
after the real pass runs, one deliberate miscompile is planted in its
output.  The mutation smoke tests (and the CI ``tv-smoke`` job) then
assert that :class:`~.checker.TVChecker` reports ``refuted`` with the
right pass and function blame for each of the three seeded bugs:

* ``swap-branch-arms`` — a conditional branch's targets are exchanged
  (the classic simplifycfg polarity bug);
* ``drop-store``       — a live store to shared memory is deleted (an
  over-eager DSE);
* ``swap-phi-operands``— two phi incoming values are exchanged without
  exchanging their blocks (a mem2reg wiring bug).

Every mutation keeps the IR verifier-clean (SSA, dominance, types), so
the *only* thing that can catch it is the refinement check.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Optional

from ...lir.dominators import DominatorTree
from ...lir.function import BasicBlock, Function
from ...lir.instructions import Br, Cast, Instruction, Phi, Store
from ...lir.values import GlobalVariable, Value
from ...opt import pass_manager


def _defining_block(v: Value) -> Optional[BasicBlock]:
    if isinstance(v, Instruction):
        return v.parent
    return None


def _peel_casts(v: Value) -> Value:
    while isinstance(v, Cast):
        v = v.operands[0]
    return v


def swap_branch_arms(func: Function) -> bool:
    """Exchange the two targets of the first conditional branch."""
    for bb in func.blocks:
        term = bb.terminator
        if (isinstance(term, Br) and term.is_conditional
                and term.targets[0] is not term.targets[1]):
            term.targets[0], term.targets[1] = (
                term.targets[1], term.targets[0])
            return True
    return False


def drop_store(func: Function) -> bool:
    """Delete the first plain store whose address is a global (possibly
    behind bitcasts, as the lifter emits them) — shared memory, so the
    store is observable and its loss is a real bug."""
    for bb in func.blocks:
        for inst in bb.instructions:
            if (isinstance(inst, Store) and inst.ordering == "na"
                    and isinstance(_peel_casts(inst.pointer),
                                   GlobalVariable)):
                inst.erase_from_parent()
                return True
    return False


def swap_phi_operands(func: Function) -> bool:
    """Exchange two incoming *values* of a phi, keeping the incoming
    blocks — the merged value now flows from the wrong predecessor.

    Only phis whose first two incoming values each dominate *both*
    predecessor edges are eligible, so the mutation stays SSA-clean and
    survives the (strengthened) verifier.
    """
    dt: Optional[DominatorTree] = None
    for bb in func.blocks:
        for phi in bb.phis():
            if len(phi.operands) < 2:
                continue
            v0, v1 = phi.operands[0], phi.operands[1]
            if v0 is v1:
                continue
            b0, b1 = phi.incoming_blocks[0], phi.incoming_blocks[1]
            ok = True
            for v in (v0, v1):
                dbb = _defining_block(v)
                if dbb is None:
                    continue  # constants/arguments dominate everything
                if dt is None:
                    dt = DominatorTree(func)
                if not (dt.dominates(dbb, b0) and dt.dominates(dbb, b1)):
                    ok = False
                    break
            if not ok:
                continue
            phi.set_operand(0, v1)
            phi.set_operand(1, v0)
            return True
    return False


#: mutation name -> (function-level mutator, the pass it impersonates)
MUTATIONS: dict[str, tuple[Callable[[Function], bool], str]] = {
    "swap-branch-arms": (swap_branch_arms, "simplifycfg"),
    "drop-store": (drop_store, "dse"),
    "swap-phi-operands": (swap_phi_operands, "mem2reg"),
}


@contextmanager
def inject(pass_name: str, mutation: str):
    """Temporarily replace ``pass_name`` with a version that runs the
    real pass and then plants ``mutation`` in the first function where
    it applies (once per ``inject``).  Yields a state dict whose
    ``"function"`` entry records where the bug landed."""
    mutator, _ = MUTATIONS[mutation]
    original = pass_manager.FUNCTION_PASSES[pass_name]
    state: dict[str, Optional[str]] = {"function": None}

    def sabotaged(func: Function) -> bool:
        changed = original(func)
        if state["function"] is None and mutator(func):
            state["function"] = func.name
            return True
        return changed

    pass_manager.FUNCTION_PASSES[pass_name] = sabotaged
    try:
        yield state
    finally:
        pass_manager.FUNCTION_PASSES[pass_name] = original
