"""Hash-consed bitvector terms + the normalizing rewriter.

The term language is the vocabulary of the translation validator
(:mod:`repro.analysis.tv`): every LIR value a pass could rewrite is
mapped to a term, and two program fragments are considered equal when
their terms normalize to the *same interned node*.  Three design rules
keep that decision procedure sound and cheap:

* **Hash-consing** — every structurally distinct term exists exactly
  once per :class:`TermBuilder`, so semantic comparison of normalized
  terms is pointer identity and common subterms are shared (the DAG
  stays linear in program size even for exponentially many paths).
* **Normalization at construction** — the smart constructors apply the
  same algebraic identities the optimizer's scalar passes do (constant
  folding, commutative canonicalization, ``x+0``, ``x^x``,
  re-association of constant chains, cast collapsing, icmp/select
  folds), so an instcombine/GVN/reassociate/SCCP rewrite maps both the
  before- and after-function to one normal form.  Constant folding
  calls into :mod:`repro.lir.interp`'s arithmetic so the rewriter can
  never disagree with the concrete semantics the confirmer replays.
* **Uninterpreted effects** — fences, atomics and calls have no
  algebraic laws at all.  They build opaque, *ordered* chains
  (``effect``/``barrier``/``clobber`` nodes), so a LIMM-relevant
  reordering always produces a different term and is never provable
  away (see docs/translation-validation.md).

Every identity the rewriter applies is also listed declaratively in
:data:`ALGEBRAIC_RULES` so the test suite can validate each rule by
exhaustive 4-bit concrete evaluation of both sides.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, NamedTuple, Optional

from ...lir.interp import InterpError, _binop_apply, _fcmp_apply, _icmp_apply
from ...lir.types import FloatType, IntType

#: Operators the optimizer treats as commutative (mirrors
#: ``BinOp.is_commutative`` and instcombine's canonicalization).
COMMUTATIVE = {"add", "mul", "and", "or", "xor", "fadd", "fmul"}

#: Operators whose constant chains instcombine/reassociate re-associate.
ASSOCIATIVE = {"add", "mul", "and", "or", "xor"}

_INT_BINOPS = {"add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
               "and", "or", "xor", "shl", "lshr", "ashr"}

_SWAPPED_PRED = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ugt": "ult", "ule": "uge", "uge": "ule",
    "slt": "sgt", "sgt": "slt", "sle": "sge", "sge": "sle",
}

_REFLEXIVE_TRUE = {"eq", "ule", "uge", "sle", "sge"}
_REFLEXIVE_FALSE = {"ne", "ult", "ugt", "slt", "sgt"}


class TermCapExceeded(Exception):
    """The builder created more nodes than the per-check budget allows."""


class Term:
    """One interned node of the term DAG.  Never construct directly —
    always go through a :class:`TermBuilder` so interning and
    normalization hold."""

    __slots__ = ("op", "attr", "args", "tid", "sort")

    def __init__(self, op: str, attr: tuple, args: tuple, tid: int,
                 sort: tuple) -> None:
        self.op = op
        self.attr = attr
        self.args = args
        self.tid = tid
        self.sort = sort  # ("i", bits) | ("f", bits) | ("mem",) | ("eff",)

    @property
    def bits(self) -> int:
        return self.sort[1] if self.sort[0] in ("i", "f") else 0

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        assert self.op in ("const", "fconst")
        return self.attr[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return render(self, max_depth=4)


def render(term: Term, max_depth: int = 6) -> str:
    """A bounded, human-readable rendering (for refuted-verdict detail)."""
    if max_depth <= 0:
        return "..."
    if term.op == "const":
        return str(term.attr[1])
    if term.op in ("var", "fconst"):
        return str(term.attr[0] if term.op == "var" else term.attr[1])
    inner = ", ".join(render(a, max_depth - 1) for a in term.args)
    tag = ":".join(str(a) for a in term.attr)
    head = term.op + (f"[{tag}]" if tag else "")
    return f"{head}({inner})" if inner else head


class TermBuilder:
    """Interning factory with normalization-at-construction.

    One builder is shared by the before- and after-function evaluation
    of a check, so identical computations intern to identical nodes and
    the commutative canonical order (by interning id) is consistent
    across both sides.  ``simplify=False`` turns every smart
    constructor into a raw one — the rule-validation tests use that to
    build the un-rewritten side of each identity.
    """

    def __init__(self, simplify: bool = True,
                 cap: Optional[int] = None) -> None:
        self.simplify = simplify
        self.cap = cap
        self.created = 0
        self._interned: dict[tuple, Term] = {}
        self._serials: dict[int, str] = {}
        self.true = self.const(1, 1)
        self.false = self.const(1, 0)
        self.mem0 = self._mk("mem0", (), (), ("mem",))
        self.eff0 = self._mk("eff0", (), (), ("eff",))

    # ---- interning -----------------------------------------------------
    def _mk(self, op: str, attr: tuple, args: tuple, sort: tuple) -> Term:
        key = (op, attr, tuple(a.tid for a in args))
        term = self._interned.get(key)
        if term is None:
            if self.cap is not None and self.created >= self.cap:
                raise TermCapExceeded(f"term budget of {self.cap} exhausted")
            term = Term(op, attr, args, len(self._interned), sort)
            self._interned[key] = term
            self.created += 1
        return term

    def serial(self, term: Term) -> str:
        """A stable structural digest (oracle key for uninterpreted
        nodes): equal terms — even across builders — share it."""
        memo = self._serials
        stack = [term]
        while stack:
            t = stack[-1]
            if t.tid in memo:
                stack.pop()
                continue
            missing = [a for a in t.args if a.tid not in memo]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            h = hashlib.sha256()
            h.update(repr((t.op, t.attr,
                           tuple(memo[a.tid] for a in t.args))).encode())
            memo[t.tid] = h.hexdigest()[:24]
        return memo[term.tid]

    # ---- leaves --------------------------------------------------------
    def const(self, bits: int, value: int) -> Term:
        mask = (1 << bits) - 1
        return self._mk("const", (bits, value & mask), (), ("i", bits))

    def fconst(self, bits: int, value: float) -> Term:
        # Key by bit pattern so -0.0/0.0 and NaN payloads stay distinct.
        fmt = "<f" if bits == 32 else "<d"
        pattern = struct.unpack("<I" if bits == 32 else "<Q",
                                struct.pack(fmt, value))[0]
        return self._mk("fconst", (value, pattern), (), ("f", bits))

    def var(self, name: str, bits: int, kind: str = "i") -> Term:
        return self._mk("var", (name, bits), (), (kind, bits))

    def undef(self, bits: int, kind: str = "i") -> Term:
        return self._mk("undef", (bits,), (), (kind, bits))

    def opaque(self, tag: str, args: tuple[Term, ...], bits: int,
               kind: str = "i") -> Term:
        """A deterministic uninterpreted function of its operands."""
        return self._mk("opaque", (tag, bits), tuple(args), (kind, bits))

    # ---- integer / float arithmetic -----------------------------------
    def binop(self, op: str, a: Term, b: Term) -> Term:
        if op not in _INT_BINOPS:
            return self._fbinop(op, a, b)
        bits = a.bits
        raw = lambda x, y: self._mk("binop", (op, bits), (x, y), ("i", bits))
        if not self.simplify:
            return raw(a, b)
        if a.is_const and b.is_const:
            folded = self._fold_binop(op, a.value, b.value, bits)
            if folded is not None:
                return self.const(bits, folded)
        if op in COMMUTATIVE:
            # Constants to the right; otherwise a canonical operand order
            # (interning ids are consistent across both sides of a check
            # because the builder is shared).
            if a.is_const and not b.is_const:
                a, b = b, a
            elif not a.is_const and not b.is_const and a.tid > b.tid:
                a, b = b, a
        if op == "sub" and b.is_const and b.value != 0:
            return self.binop("add", a, self.const(bits, -b.value))
        if b.is_const:
            c = b.value
            mask = (1 << bits) - 1
            if c == 0 and op in ("add", "sub", "or", "xor",
                                 "shl", "lshr", "ashr"):
                return a
            if c == 1 and op in ("mul", "sdiv", "udiv"):
                return a
            if c == 0 and op in ("mul", "and"):
                return self.const(bits, 0)
            if c == mask and op == "and":
                return a
            if c == mask and op == "or":
                return self.const(bits, mask)
            if (op in ASSOCIATIVE and a.op == "binop" and a.attr[0] == op
                    and a.args[1].is_const):
                folded = self._fold_binop(op, a.args[1].value, c, bits)
                if folded is not None:
                    return self.binop(op, a.args[0],
                                      self.const(bits, folded))
        if a is b:
            if op in ("sub", "xor"):
                return self.const(bits, 0)
            if op in ("and", "or"):
                return a
        return raw(a, b)

    @staticmethod
    def _fold_binop(op: str, x: int, y: int, bits: int) -> Optional[int]:
        try:
            return int(_binop_apply(op, x, y, IntType(bits)))
        except (InterpError, ZeroDivisionError):
            return None  # division by zero: keep the term symbolic

    def _fbinop(self, op: str, a: Term, b: Term) -> Term:
        bits = a.bits
        if (self.simplify and a.op == "fconst" and b.op == "fconst"):
            try:
                folded = _binop_apply(op, a.attr[0], b.attr[0],
                                      FloatType(bits))
                return self.fconst(bits, float(folded))
            except (InterpError, ZeroDivisionError, OverflowError):
                pass
        return self._mk("binop", (op, bits), (a, b), ("f", bits))

    def icmp(self, pred: str, a: Term, b: Term) -> Term:
        bits = a.bits
        raw = lambda p, x, y: self._mk("icmp", (p, bits), (x, y), ("i", 1))
        if not self.simplify:
            return raw(pred, a, b)
        if a.is_const and b.is_const:
            return self.const(1, _icmp_apply(pred, a.value, b.value,
                                             IntType(bits)))
        if a.is_const and not b.is_const:
            pred, a, b = _SWAPPED_PRED[pred], b, a
        if a is b:
            if pred in _REFLEXIVE_TRUE:
                return self.true
            if pred in _REFLEXIVE_FALSE:
                return self.false
        # icmp (zext i1 x) vs 0  ->  !x / x  (the boolean-test idiom
        # instcombine reduces after mem2reg exposes the flag).
        if (b.is_const and b.value == 0 and a.op == "cast"
                and a.attr[0] == "zext" and a.attr[1] == 1):
            if pred == "eq":
                return self.not_(a.args[0])
            if pred == "ne":
                return a.args[0]
        if pred in ("eq", "ne") and not a.is_const and not b.is_const \
                and a.tid > b.tid:
            a, b = b, a
        return raw(pred, a, b)

    def fcmp(self, pred: str, a: Term, b: Term) -> Term:
        if self.simplify and a.op == "fconst" and b.op == "fconst":
            return self.const(1, _fcmp_apply(pred, a.attr[0], b.attr[0]))
        return self._mk("fcmp", (pred, a.bits), (a, b), ("i", 1))

    def not_(self, a: Term) -> Term:
        return self.binop("xor", a, self.true)

    # ---- casts ---------------------------------------------------------
    def cast(self, op: str, a: Term, to_bits: int, kind: str = "i") -> Term:
        from_bits = a.bits
        raw = lambda x: self._mk("cast", (op, from_bits, to_bits), (x,),
                                 (kind, to_bits))
        if not self.simplify:
            return raw(a)
        if op in ("ptrtoint", "inttoptr"):
            return a  # pointers are 64-bit bitvectors in this model
        if op == "bitcast" and a.sort == (kind, to_bits):
            return a
        if op in ("trunc", "zext", "sext"):
            if to_bits == from_bits:
                return a
            if a.is_const:
                v = a.value
                if op == "sext" and v >> (from_bits - 1):
                    v -= 1 << from_bits
                return self.const(to_bits, v)
            if op == "trunc" and a.op == "cast" \
                    and a.attr[0] in ("zext", "sext"):
                inner = a.args[0]
                if to_bits == inner.bits:
                    return inner
                if to_bits < inner.bits:
                    return self.cast("trunc", inner, to_bits)
                return self.cast(a.attr[0], inner, to_bits)
            if op in ("zext", "sext") and a.op == "cast" \
                    and a.attr[0] == op:
                return self.cast(op, a.args[0], to_bits)
        return raw(a)

    # ---- select / control merge ---------------------------------------
    def ite(self, cond: Term, t: Term, f: Term) -> Term:
        sort = t.sort
        raw = lambda c, x, y: self._mk("ite", (sort,), (c, x, y), sort)
        if not self.simplify:
            return raw(cond, t, f)
        if t is f:
            return t
        if cond.is_const:
            return t if cond.value & 1 else f
        if cond.op == "binop" and cond.attr == ("xor", 1) \
                and cond.args[1] is self.true:
            return self.ite(cond.args[0], f, t)
        if sort == ("i", 1) and t.is_const and f.is_const:
            if t.value == 1 and f.value == 0:
                return cond
            if t.value == 0 and f.value == 1:
                return self.not_(cond)
        if t.op == "ite" and t.args[0] is cond:
            t = t.args[1]
        if f.op == "ite" and f.args[0] is cond:
            f = f.args[2]
        if t is f:
            return t
        return raw(cond, t, f)

    def and_(self, a: Term, b: Term) -> Term:
        return self.binop("and", a, b)

    def or_(self, a: Term, b: Term) -> Term:
        return self.binop("or", a, b)

    # ---- memory / effect chains (never simplified) ---------------------
    def load(self, mem: Term, addr: Term, typekey: str) -> Term:
        kind, bits = _typekey_sort(typekey)
        return self._mk("load", (typekey,), (mem, addr), (kind, bits))

    def store(self, mem: Term, addr: Term, val: Term, typekey: str) -> Term:
        return self._mk("store", (typekey,), (mem, addr, val), ("mem",))

    def barrier(self, mem: Term, kind: str) -> Term:
        return self._mk("barrier", (kind,), (mem,), ("mem",))

    def clobber(self, mem: Term, eff: Term) -> Term:
        return self._mk("clobber", (), (mem, eff), ("mem",))

    def effect(self, eff: Term, tag: str, *values: Term) -> Term:
        return self._mk("effect", (tag,), (eff, *values), ("eff",))

    def effres(self, eff: Term, typekey: str) -> Term:
        kind, bits = _typekey_sort(typekey)
        return self._mk("effres", (typekey,), (eff,), (kind, bits))


def _typekey_sort(typekey: str) -> tuple[str, int]:
    if typekey.startswith("f"):
        return "f", int(typekey[1:])
    if typekey.startswith("i"):
        return "i", int(typekey[1:])
    return "i", 64  # pointers and anything address-shaped


def contains_op(term: Term, op: str) -> bool:
    """Does ``op`` occur anywhere in the term DAG?"""
    seen: set[int] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen.add(t.tid)
        if t.op == op:
            return True
        stack.extend(t.args)
    return False


# --------------------------------------------------------------------------
# Declarative rule table: one entry per algebraic identity the smart
# constructors implement.  ``lhs``/``rhs`` build the two sides of the
# identity from fresh variables; tests/test_tv_terms.py validates every
# rule by exhaustive 4-bit concrete evaluation of both sides and checks
# the normalizing builder maps lhs and rhs to the same node.
# --------------------------------------------------------------------------

class Rule(NamedTuple):
    name: str
    nvars: int
    lhs: Callable[..., Term]      # (builder, bits, *vars) -> Term
    rhs: Callable[..., Term]


def _c(b: TermBuilder, bits: int, v: int) -> Term:
    return b.const(bits, v)


ALGEBRAIC_RULES: list[Rule] = [
    Rule("add-zero", 1,
         lambda b, n, x: b.binop("add", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("sub-zero", 1,
         lambda b, n, x: b.binop("sub", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("or-zero", 1,
         lambda b, n, x: b.binop("or", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("xor-zero", 1,
         lambda b, n, x: b.binop("xor", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("shl-zero", 1,
         lambda b, n, x: b.binop("shl", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("lshr-zero", 1,
         lambda b, n, x: b.binop("lshr", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("ashr-zero", 1,
         lambda b, n, x: b.binop("ashr", x, _c(b, n, 0)),
         lambda b, n, x: x),
    Rule("mul-one", 1,
         lambda b, n, x: b.binop("mul", x, _c(b, n, 1)),
         lambda b, n, x: x),
    Rule("udiv-one", 1,
         lambda b, n, x: b.binop("udiv", x, _c(b, n, 1)),
         lambda b, n, x: x),
    Rule("sdiv-one", 1,
         lambda b, n, x: b.binop("sdiv", x, _c(b, n, 1)),
         lambda b, n, x: x),
    Rule("mul-zero", 1,
         lambda b, n, x: b.binop("mul", x, _c(b, n, 0)),
         lambda b, n, x: _c(b, n, 0)),
    Rule("and-zero", 1,
         lambda b, n, x: b.binop("and", x, _c(b, n, 0)),
         lambda b, n, x: _c(b, n, 0)),
    Rule("and-allones", 1,
         lambda b, n, x: b.binop("and", x, _c(b, n, (1 << n) - 1)),
         lambda b, n, x: x),
    Rule("or-allones", 1,
         lambda b, n, x: b.binop("or", x, _c(b, n, (1 << n) - 1)),
         lambda b, n, x: _c(b, n, (1 << n) - 1)),
    Rule("sub-self", 1,
         lambda b, n, x: b.binop("sub", x, x),
         lambda b, n, x: _c(b, n, 0)),
    Rule("xor-self", 1,
         lambda b, n, x: b.binop("xor", x, x),
         lambda b, n, x: _c(b, n, 0)),
    Rule("and-self", 1,
         lambda b, n, x: b.binop("and", x, x),
         lambda b, n, x: x),
    Rule("or-self", 1,
         lambda b, n, x: b.binop("or", x, x),
         lambda b, n, x: x),
    Rule("add-commute", 2,
         lambda b, n, x, y: b.binop("add", x, y),
         lambda b, n, x, y: b.binop("add", y, x)),
    Rule("mul-commute", 2,
         lambda b, n, x, y: b.binop("mul", x, y),
         lambda b, n, x, y: b.binop("mul", y, x)),
    Rule("and-commute", 2,
         lambda b, n, x, y: b.binop("and", x, y),
         lambda b, n, x, y: b.binop("and", y, x)),
    Rule("or-commute", 2,
         lambda b, n, x, y: b.binop("or", x, y),
         lambda b, n, x, y: b.binop("or", y, x)),
    Rule("xor-commute", 2,
         lambda b, n, x, y: b.binop("xor", x, y),
         lambda b, n, x, y: b.binop("xor", y, x)),
    Rule("sub-const-to-add", 1,
         lambda b, n, x: b.binop("sub", x, _c(b, n, 3)),
         lambda b, n, x: b.binop("add", x, _c(b, n, -3))),
    Rule("add-reassociate", 1,
         lambda b, n, x: b.binop("add", b.binop("add", x, _c(b, n, 3)),
                                 _c(b, n, 5)),
         lambda b, n, x: b.binop("add", x, _c(b, n, 8))),
    Rule("mul-reassociate", 1,
         lambda b, n, x: b.binop("mul", b.binop("mul", x, _c(b, n, 3)),
                                 _c(b, n, 5)),
         lambda b, n, x: b.binop("mul", x, _c(b, n, 15))),
    Rule("and-reassociate", 1,
         lambda b, n, x: b.binop("and", b.binop("and", x, _c(b, n, 12)),
                                 _c(b, n, 6)),
         lambda b, n, x: b.binop("and", x, _c(b, n, 4))),
    Rule("or-reassociate", 1,
         lambda b, n, x: b.binop("or", b.binop("or", x, _c(b, n, 1)),
                                _c(b, n, 4)),
         lambda b, n, x: b.binop("or", x, _c(b, n, 5))),
    Rule("xor-reassociate", 1,
         lambda b, n, x: b.binop("xor", b.binop("xor", x, _c(b, n, 6)),
                                 _c(b, n, 5)),
         lambda b, n, x: b.binop("xor", x, _c(b, n, 3))),
    Rule("double-negate-bool", 1,
         lambda b, n, x: b.binop("xor", b.binop("xor", x, _c(b, n, 1)),
                                 _c(b, n, 1)),
         lambda b, n, x: x),
    Rule("icmp-self-eq", 1,
         lambda b, n, x: b.icmp("eq", x, x),
         lambda b, n, x: _c(b, 1, 1)),
    Rule("icmp-self-ne", 1,
         lambda b, n, x: b.icmp("ne", x, x),
         lambda b, n, x: _c(b, 1, 0)),
    Rule("icmp-self-ule", 1,
         lambda b, n, x: b.icmp("ule", x, x),
         lambda b, n, x: _c(b, 1, 1)),
    Rule("icmp-self-slt", 1,
         lambda b, n, x: b.icmp("slt", x, x),
         lambda b, n, x: _c(b, 1, 0)),
    Rule("icmp-swap-const", 1,
         lambda b, n, x: b.icmp("slt", _c(b, n, 2), x),
         lambda b, n, x: b.icmp("sgt", x, _c(b, n, 2))),
    Rule("trunc-of-zext-roundtrip", 1,
         lambda b, n, x: b.cast("trunc", b.cast("zext", x, 2 * n), n),
         lambda b, n, x: x),
    Rule("trunc-of-sext-roundtrip", 1,
         lambda b, n, x: b.cast("trunc", b.cast("sext", x, 2 * n), n),
         lambda b, n, x: x),
    Rule("zext-of-zext", 1,
         lambda b, n, x: b.cast("zext", b.cast("zext", x, 2 * n), 4 * n),
         lambda b, n, x: b.cast("zext", x, 4 * n)),
    Rule("sext-of-sext", 1,
         lambda b, n, x: b.cast("sext", b.cast("sext", x, 2 * n), 4 * n),
         lambda b, n, x: b.cast("sext", x, 4 * n)),
    Rule("select-same-arms", 2,
         lambda b, n, x, y: b.ite(b.icmp("eq", x, y), y, y),
         lambda b, n, x, y: y),
    Rule("select-bool-identity", 1,
         lambda b, n, x: b.ite(b.icmp("ne", x, _c(b, n, 0)),
                               _c(b, 1, 1), _c(b, 1, 0)),
         lambda b, n, x: b.icmp("ne", x, _c(b, n, 0))),
    Rule("select-bool-negate", 1,
         lambda b, n, x: b.ite(b.icmp("ne", x, _c(b, n, 0)),
                               _c(b, 1, 0), _c(b, 1, 1)),
         lambda b, n, x: b.binop("xor", b.icmp("ne", x, _c(b, n, 0)),
                                 _c(b, 1, 1))),
    Rule("icmp-zext-bool-eq-zero", 1,
         lambda b, n, x: b.icmp(
             "eq", b.cast("zext", b.icmp("ne", x, _c(b, n, 0)), n),
             _c(b, n, 0)),
         lambda b, n, x: b.binop("xor", b.icmp("ne", x, _c(b, n, 0)),
                                 _c(b, 1, 1))),
    Rule("icmp-zext-bool-ne-zero", 1,
         lambda b, n, x: b.icmp(
             "ne", b.cast("zext", b.icmp("ne", x, _c(b, n, 0)), n),
             _c(b, n, 0)),
         lambda b, n, x: b.icmp("ne", x, _c(b, n, 0))),
]
