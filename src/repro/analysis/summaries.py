"""Bottom-up interprocedural function summaries.

A :class:`FunctionSummary` condenses what one function does to pointer
provenance, so callers can apply the effect of a call precisely instead
of escaping every argument (the PR-3 worst case).  Summaries are computed
in bottom-up SCC order over the call graph: when a function is solved,
all of its (non-recursive) callees already have summaries, which the
points-to solver applies at each call site (:mod:`repro.analysis.pointsto`,
``summary_mode``).

Provenance that crosses the call boundary is expressed as *tokens*
relative to the callee's formals:

* ``("param", i)`` — the i-th argument value itself;
* ``("contents", i)`` — whatever the i-th argument's pointee held on entry;
* ``("unknown",)`` — anything else (callee-owned stack, globals, heap).

``stores_into[i]`` lists the tokens the callee may store into ``*argi``;
``returns`` the tokens the return value may carry.  ``param_escapes`` /
``contents_escape`` record publication, ``param_modref`` whether the
callee may load/store through each parameter, and ``touches`` whether it
mod/refs any memory the caller did not pass in (globals, escaped, heap).

Mutually-recursive SCCs and functions we cannot model keep the
conservative worst case (every pointer argument escapes), matching the
intraprocedural behaviour.

Entry points: :func:`compute_summaries`, :func:`analyze_module` →
:class:`ModuleAnalysis` (cached per-function :class:`AliasInfo` views
that share one summary table).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lir import AtomicRMW, Call, CmpXchg, Function, Load, Module, Store
from .callgraph import CallGraph, build_callgraph, tarjan_sccs
from .pointsto import MOD, MOD_REF, REF, AliasInfo, _Solver

UNKNOWN_TOKEN = ("unknown",)


@dataclass(frozen=True)
class FunctionSummary:
    """Caller-visible effect of calling one defined function."""

    function: str
    nparams: int
    param_escapes: tuple[bool, ...]     # arg published to other threads
    contents_escape: tuple[bool, ...]   # *arg's prior pointees published
    param_modref: tuple[int, ...]       # REF/MOD bits per parameter memory
    stores_into: tuple[frozenset, ...]  # tokens stored into *arg
    returns: frozenset                  # tokens the return value carries
    touches: int                        # mod/ref on caller-invisible memory
    recursive: bool = False             # conservatively summarised

    def is_conservative(self) -> bool:
        return self.recursive

    def describe(self) -> str:
        bits = {0: "-", REF: "r", MOD: "w", MOD_REF: "rw"}
        params = []
        for i in range(self.nparams):
            flags = bits[self.param_modref[i]]
            if self.param_escapes[i]:
                flags += "!"
            elif self.contents_escape[i]:
                flags += "*!"
            if self.stores_into[i]:
                flags += "s"
            params.append(f"arg{i}:{flags}")
        ret = ",".join(sorted(":".join(map(str, t)) for t in self.returns))
        return (f"{self.function}({' '.join(params)}) "
                f"-> {{{ret or 'none'}}} touches={bits[self.touches]}"
                + (" [recursive]" if self.recursive else ""))


def _conservative_summary(func: Function) -> FunctionSummary:
    n = len(func.arguments)
    return FunctionSummary(
        function=func.name,
        nparams=n,
        param_escapes=(True,) * n,
        contents_escape=(True,) * n,
        param_modref=(MOD_REF,) * n,
        stores_into=(frozenset({UNKNOWN_TOKEN}),) * n,
        returns=frozenset({UNKNOWN_TOKEN}),
        touches=MOD_REF,
        recursive=True,
    )


def _tokenize(solver: _Solver, objs) -> frozenset:
    param_idx = {id(o): i for i, o in solver.param_objects.items()}
    cont_idx = {id(o): i for i, o in solver.param_contents.items()}
    tokens = set()
    for obj in objs:
        if id(obj) in param_idx:
            tokens.add(("param", param_idx[id(obj)]))
        elif id(obj) in cont_idx:
            tokens.add(("contents", cont_idx[id(obj)]))
        else:
            tokens.add(UNKNOWN_TOKEN)
    return frozenset(tokens)


def _derive_summary(solver: _Solver) -> FunctionSummary:
    func = solver.func
    n = len(func.arguments)
    param_idx = {id(o): i for i, o in solver.param_objects.items()}
    cont_idx = {id(o): i for i, o in solver.param_contents.items()}
    modref = [0] * n
    touches = 0

    def classify(objs, bits: int) -> None:
        nonlocal touches
        for obj in objs:
            i = param_idx.get(id(obj), cont_idx.get(id(obj)))
            if i is not None:
                modref[i] |= bits
            elif obj.kind == "stack" and not obj.escaped:
                pass  # invisible to the caller
            else:
                touches |= bits

    for inst in func.instructions():
        if isinstance(inst, Load):
            classify(solver.lookup(inst.pointer), REF)
        elif isinstance(inst, Store):
            classify(solver.lookup(inst.pointer), MOD)
        elif isinstance(inst, (AtomicRMW, CmpXchg)):
            classify(solver.lookup(inst.pointer), MOD_REF)
        elif isinstance(inst, Call):
            inner = solver._call_summary(inst)
            if inner is None:
                if inst.is_readnone_callee():
                    continue
                touches |= MOD_REF
                for arg in inst.args:
                    classify(solver.lookup(arg), MOD_REF)
                    for obj in solver.lookup(arg):
                        classify(obj.contents, MOD_REF)
            else:
                touches |= inner.touches
                for j, arg in enumerate(inst.args):
                    if j < inner.nparams:
                        bits = inner.param_modref[j]
                    else:
                        bits = MOD_REF
                    if not bits:
                        continue
                    classify(solver.lookup(arg), bits)
                    for obj in solver.lookup(arg):
                        classify(obj.contents, bits)

    stores = []
    for i in range(n):
        param = solver.param_objects[i]
        cont = solver.param_contents[i]
        extra = {o for o in param.contents if o is not cont}
        stores.append(_tokenize(solver, extra))
    return FunctionSummary(
        function=func.name,
        nparams=n,
        param_escapes=tuple(solver.param_objects[i].escaped
                            for i in range(n)),
        contents_escape=tuple(solver.param_contents[i].escaped
                              for i in range(n)),
        param_modref=tuple(modref),
        stores_into=tuple(stores),
        returns=_tokenize(solver, solver.return_objs),
        touches=touches,
    )


class ModuleAnalysis:
    """Whole-module escape analysis: one summary table computed bottom-up
    plus cached interprocedural :class:`AliasInfo` views per function."""

    def __init__(self, module: Module,
                 callgraph: CallGraph | None = None) -> None:
        self.module = module
        self.callgraph = callgraph or build_callgraph(module)
        self.summaries: dict[str, FunctionSummary] = {}
        self._alias: dict[str, AliasInfo] = {}
        self._compute()

    def _compute(self) -> None:
        graph = self.callgraph
        for scc in tarjan_sccs(graph):
            recursive = (len(scc) > 1
                         or scc[0] in graph.callees.get(scc[0], ()))
            for name in sorted(scc):
                func = self.module.functions[name]
                if recursive:
                    # In-SCC calls have no summary yet, so each member is
                    # solved with its SCC siblings treated conservatively;
                    # publish only the worst-case summary for callers
                    # *outside* the SCC (a fixpoint would be sounder to
                    # tighten, not to loosen — keep it simple).
                    solver = _Solver(func, self.module,
                                     summaries=self.summaries,
                                     summary_mode=True)
                    solver.solve()
                    self._alias[name] = AliasInfo(solver)
                    self.summaries[name] = _conservative_summary(func)
                else:
                    solver = _Solver(func, self.module,
                                     summaries=self.summaries,
                                     summary_mode=True)
                    solver.solve()
                    self._alias[name] = AliasInfo(solver)
                    self.summaries[name] = _derive_summary(solver)

    # -- queries -------------------------------------------------------

    def alias(self, func: Function) -> AliasInfo:
        """Interprocedural :class:`AliasInfo` for a defined function."""
        info = self._alias.get(func.name)
        if info is None or info.func is not func:
            info = analyze_with_summaries(func, self.module, self.summaries)
            self._alias[func.name] = info
        return info

    def summary(self, func: Function) -> FunctionSummary | None:
        return self.summaries.get(func.name)


def analyze_with_summaries(func: Function, module: Module,
                           summaries: dict[str, FunctionSummary]) -> AliasInfo:
    solver = _Solver(func, module, summaries=summaries, summary_mode=True)
    if not func.is_declaration:
        solver.solve()
    return AliasInfo(solver)


def compute_summaries(module: Module,
                      callgraph: CallGraph | None = None
                      ) -> dict[str, FunctionSummary]:
    """Summary table for every defined function, bottom-up."""
    return ModuleAnalysis(module, callgraph).summaries


def analyze_module(module: Module) -> ModuleAnalysis:
    """One-stop whole-module analysis used by fence placement, the
    delay-set tier and fencecheck."""
    return ModuleAnalysis(module)
