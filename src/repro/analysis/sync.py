"""Must-lockset dataflow over pthread mutex synchronization.

The delay-set tier (:mod:`repro.analysis.delayset`) and the race linter
(:mod:`repro.analysis.racecheck`) both need the same fact: *which locks
does this thread provably hold when it performs this memory access?*
This module computes it as a classic forward must-dataflow on the
generic RPO-worklist engine (:mod:`repro.analysis.dataflow`):

* the state is the set of **must-held lock keys** (join = intersection,
  with an unreachable ``TOP`` identity) paired with the **may-released**
  set accumulated so far (join = union);
* ``pthread_mutex_lock(&m)`` with a resolvable key adds it;
  ``pthread_mutex_unlock(&m)`` removes it; ``pthread_mutex_trylock``
  never adds (it may fail); an unlock of an *unresolvable* mutex clears
  the whole state (it could release any held lock);
* calls to defined functions apply a bottom-up **lock summary** —
  the per-function (must-acquire, may-release) delta, computed over the
  Tarjan SCC condensation exactly like the PR 5 escape summaries, with
  recursive SCCs conservative (acquire nothing, may release anything);
* calls we know nothing about (indirect calls, externals outside the
  loader catalog) also clear the state — a callee could unlock any
  mutex it can reach.

Every approximation errs toward *smaller* locksets, which is the sound
direction for both consumers: fewer sync-elided fences, more reported
races.

Lock identity is a syntactic must-key: the mutex operand peeled through
``ptrtoint``/``inttoptr``/``bitcast`` casts and constant GEPs down to a
global plus byte offset.  Anything else (a mutex behind a phi, in
malloc'd memory, or computed in lifted register slots) yields no key and
therefore never enlarges a lockset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lir import (
    GEP,
    AtomicRMW,
    Call,
    Cast,
    CmpXchg,
    ConstantInt,
    ExternalFunction,
    Function,
    GlobalVariable,
    Load,
    Module,
    Store,
)
from ..loader.externs import CATALOG, normalize_name
from .callgraph import CallGraph, build_callgraph, tarjan_sccs
from .dataflow import DataflowProblem, run_dataflow

#: "may release any lock" — the conservative release set.
ALL_LOCKS = ("<all-locks>",)

MUTEX_ACQUIRE = frozenset({"pthread_mutex_lock"})
MUTEX_RELEASE = frozenset({"pthread_mutex_unlock"})
#: mutex calls with no effect on the must-lockset (trylock may fail;
#: init/destroy must not be called on a held mutex anyway)
MUTEX_NEUTRAL = frozenset({
    "pthread_mutex_init", "pthread_mutex_destroy", "pthread_mutex_trylock",
})
MUTEX_FUNCTIONS = MUTEX_ACQUIRE | MUTEX_RELEASE | MUTEX_NEUTRAL


def lock_key(value) -> Optional[tuple]:
    """Must-identity of a mutex operand: ``("lock", global, offset)``, or
    None when the operand does not syntactically resolve to a global.

    Walks through pointer/integer casts (the minicc frontend passes
    mutexes as ``ptrtoint``ed i64s) and constant GEPs.  A ``None`` key
    acquires nothing and releases everything — the sound degradation.
    """
    offset = 0
    for _ in range(64):
        if isinstance(value, GlobalVariable):
            return ("lock", value.name, offset)
        if isinstance(value, Cast) and value.op in (
                "bitcast", "ptrtoint", "inttoptr"):
            value = value.value
        elif isinstance(value, GEP):
            element = (value.source_type.element
                       if len(value.indices) == 2 else value.source_type)
            scales = ([value.source_type.size_bytes(), element.size_bytes()]
                      if len(value.indices) == 2
                      else [value.source_type.size_bytes()])
            for idx, scale in zip(value.indices, scales):
                if not isinstance(idx, ConstantInt):
                    return None
                offset += idx.value * scale
            value = value.pointer
        else:
            return None
    return None


def _extern_name(callee) -> str:
    """Canonical catalog name of an external callee (strips the loader's
    ``@addr`` disambiguation and glibc decoration)."""
    return normalize_name(callee.name.split("@", 1)[0])


@dataclass(frozen=True)
class LockSummary:
    """Net effect of calling a function on the caller's must-lockset:
    ``held' = (held - releases) | acquires``."""

    acquires: frozenset = frozenset()
    #: may-release set, or ALL_LOCKS when any lock may be released
    releases: object = frozenset()
    conservative: bool = False

    def apply(self, held: frozenset) -> frozenset:
        if self.releases is ALL_LOCKS:
            return frozenset(self.acquires)
        return (held - self.releases) | self.acquires


#: recursive SCCs, opaque calls: acquire nothing, may release anything
CONSERVATIVE_LOCK_SUMMARY = LockSummary(
    frozenset(), ALL_LOCKS, conservative=True)


# State: (must_held, may_released) — None encodes the unreachable TOP.
_State = Optional[tuple[frozenset, object]]


def _join_released(a: object, b: object) -> object:
    if a is ALL_LOCKS or b is ALL_LOCKS:
        return ALL_LOCKS
    return a | b


class _LocksetProblem(DataflowProblem):
    """Forward must-held / may-released lockset problem for one function."""

    direction = "forward"

    def __init__(self, summaries: dict[str, LockSummary]) -> None:
        self.summaries = summaries

    def top(self, func: Function) -> _State:
        return None  # unreachable: identity of join

    def boundary(self, func: Function) -> _State:
        return (frozenset(), frozenset())

    def join(self, a: _State, b: _State) -> _State:
        if a is None:
            return b
        if b is None:
            return a
        return (a[0] & b[0], _join_released(a[1], b[1]))

    def transfer(self, block, state: _State) -> _State:
        if state is None:
            return None
        held, released = state
        for inst in block.instructions:
            held, released = transfer_instruction(
                inst, held, released, self.summaries)
        return (held, released)


def transfer_instruction(inst, held: frozenset, released: object,
                         summaries: dict[str, LockSummary]
                         ) -> tuple[frozenset, object]:
    """The per-instruction lockset transfer (shared with the per-access
    walk so both always agree)."""
    if not isinstance(inst, Call):
        return held, released
    callee = inst.callee
    if isinstance(callee, Function) and not callee.is_declaration:
        summary = summaries.get(callee.name, CONSERVATIVE_LOCK_SUMMARY)
        return summary.apply(held), _join_released(released,
                                                   summary.releases)
    if isinstance(callee, (ExternalFunction, Function)):
        name = _extern_name(callee)
        if name in MUTEX_ACQUIRE:
            key = lock_key(inst.args[0]) if inst.args else None
            if key is not None:
                return held | {key}, released
            return held, released  # unknown lock: holds *something* unnamed
        if name in MUTEX_RELEASE:
            key = lock_key(inst.args[0]) if inst.args else None
            if key is not None:
                return held - {key}, _join_released(released,
                                                    frozenset({key}))
            return frozenset(), ALL_LOCKS  # could release any held lock
        if name in MUTEX_NEUTRAL:
            return held, released
        if name in CATALOG:
            return held, released  # catalogued externals touch no mutex
    # Indirect call or unknown external: it may unlock anything.
    return frozenset(), ALL_LOCKS


def _function_summary(func: Function, result) -> LockSummary:
    """Collapse a solved lockset fixpoint into the callable delta."""
    exit_states = [
        result.block_out(bb) for bb in func.blocks if not bb.successors()
    ]
    exit_states = [s for s in exit_states if s is not None]
    if not exit_states:
        # Never returns (or no reachable exit): callers resume nowhere.
        return LockSummary(frozenset(), frozenset())
    acquires = frozenset.intersection(*[s[0] for s in exit_states])
    releases: object = frozenset()
    for s in exit_states:
        releases = _join_released(releases, s[1])
    return LockSummary(acquires, releases)


@dataclass
class ModuleLocksets:
    """Module-wide lockset facts: per-function summaries plus the
    must-lockset in force at every memory access instruction."""

    summaries: dict[str, LockSummary] = field(default_factory=dict)
    #: id(instruction) -> must-held lock keys right before the access
    at_instruction: dict[int, frozenset] = field(default_factory=dict)
    #: lock keys seen anywhere in the module (diagnostic)
    locks_seen: set = field(default_factory=set)

    def locks_for(self, inst) -> frozenset:
        return self.at_instruction.get(id(inst), frozenset())


def compute_locksets(module: Module,
                     ma: Optional[object] = None,
                     callgraph: Optional[CallGraph] = None) -> ModuleLocksets:
    """Solve the lockset problem for every defined function, bottom-up
    over the SCC condensation, and record the must-lockset at each memory
    access (Load/Store/AtomicRMW/CmpXchg).

    ``ma`` may be a :class:`repro.analysis.summaries.ModuleAnalysis`
    (its call graph is reused); otherwise one is built here.
    """
    if callgraph is None:
        callgraph = getattr(ma, "callgraph", None) or build_callgraph(module)
    out = ModuleLocksets()
    solved: dict[str, object] = {}
    for scc in tarjan_sccs(callgraph):
        recursive = (len(scc) > 1
                     or scc[0] in callgraph.callees.get(scc[0], ()))
        if recursive:
            # Conservative: members acquire nothing, may release anything.
            for name in scc:
                out.summaries[name] = CONSERVATIVE_LOCK_SUMMARY
            for name in scc:
                func = module.functions[name]
                solved[name] = run_dataflow(
                    func, _LocksetProblem(out.summaries))
            continue
        name = scc[0]
        func = module.functions[name]
        result = run_dataflow(func, _LocksetProblem(out.summaries))
        solved[name] = result
        out.summaries[name] = _function_summary(func, result)
    # Per-access locksets: replay each block from its fixpoint in-state.
    for func in module.functions.values():
        if func.is_declaration or func.name not in solved:
            continue
        result = solved[func.name]
        for bb in func.blocks:
            state = result.block_in(bb)
            if state is None:
                continue  # unreachable block
            held, released = state
            for inst in bb.instructions:
                if isinstance(inst, (Load, Store, AtomicRMW, CmpXchg)):
                    if held:
                        out.at_instruction[id(inst)] = frozenset(held)
                        out.locks_seen |= held
                held, released = transfer_instruction(
                    inst, held, released, out.summaries)
    return out
