"""Minimal SARIF 2.1.0 emission for the static-analysis commands.

``repro analyze --fencecheck --sarif out.sarif`` and
``repro analyze --delay-sets --sarif out.sarif`` serialise their findings
in the Static Analysis Results Interchange Format so CI systems (GitHub
code scanning among them) can ingest them as first-class annotations.

The subset emitted (documented in docs/analysis.md):

* one ``run`` with ``tool.driver.name = "repro"`` and one rule per
  distinct finding kind (``fencecheck/missing-frm``,
  ``delayset/redundant``, ...);
* one ``result`` per finding: ``ruleId``, ``level`` (``error`` for
  fencecheck violations, ``note`` for delay-set verdicts), a
  ``message.text`` carrying the human explanation (including the
  critical-cycle witness for required fences), a ``physicalLocation``
  pointing at the analyzed source artifact, and a ``logicalLocation``
  whose ``fullyQualifiedName`` is the LIR position
  ``function:block:index`` (``decoratedName`` holds the originating x86
  address when provenance survived).
"""

from __future__ import annotations

import json
from pathlib import Path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

# One-line help texts for every rule id we may emit.
_RULE_HELP = {
    "fencecheck/missing-frm": (
        "A non-thread-local ldna is not followed by Frm/Fsc before the "
        "next memory access on every path (Fig. 8a ld -> ldna;Frm)."),
    "fencecheck/missing-fww": (
        "A non-thread-local stna is not preceded by Fww/Fsc after the "
        "previous memory access on every path (Fig. 8a st -> Fww;stna)."),
    "fencecheck/rmw-not-sc": (
        "An atomic read-modify-write does not carry sc ordering "
        "(Fig. 8a rmw -> RMWsc)."),
    "delayset/required": (
        "The fence covers a delay edge on a critical cycle (Shasha-Snir); "
        "eliding it could admit a non-TSO outcome."),
    "delayset/redundant": (
        "The fence covers no critical-cycle delay edge; delay-set "
        "analysis elides it, stamping the protected access with a "
        "cycle-freeness certificate."),
    "delayset/kept": (
        "The fence is kept without classification: an sc fence (source "
        "MFENCE), a capped analysis, or a shape the elider does not "
        "rewrite."),
    "racecheck/racy": (
        "A non-atomic access conflicts with another thread's access and "
        "no common must-held lock or sc ordering serialises the pair; "
        "the Fig. 8a fences around it are load-bearing."),
    "racecheck/lock-protected": (
        "Every conflicting access shares a must-held pthread mutex with "
        "this one, so the lock's sc RMW chain serialises every "
        "observation (the fact the sync fence refinement exploits)."),
    "tv/refuted": (
        "Translation validation refuted this pass invocation: the "
        "function's observable behavior (return value, observable "
        "memory, or fence/atomic/call effect chain) diverges between "
        "the pass's input and output on a concrete counterexample — a "
        "miscompile, blamed back to x86 provenance."),
    "tv/unknown": (
        "Translation validation could not decide this pass invocation: "
        "the function is outside the provable fragment (loops, "
        "interprocedural pass, term budget, undef) or the symbolic "
        "mismatch was not confirmed by any concrete sample. "
        "Incompleteness, not evidence of a bug."),
}


def _location(artifact: str, function: str, block: str, index: int,
              x86: str = "") -> dict:
    logical = {
        "fullyQualifiedName": f"{function}:{block}:{index}",
        "kind": "function",
    }
    if x86:
        logical["decoratedName"] = x86
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": artifact},
        },
        "logicalLocations": [logical],
    }


def _result(rule_id: str, level: str, message: str, location: dict,
            related: list[dict] | None = None) -> dict:
    result = {
        "ruleId": rule_id,
        "level": level,
        "message": {"text": message},
        "locations": [location],
    }
    if related:
        result["relatedLocations"] = related
    return result


def _x86_related(artifact: str, function: str, block: str, index: int,
                 x86: str) -> list[dict]:
    """``relatedLocations`` carrying the x86 provenance of the protected
    access, so code-scanning UIs can point back at the source binary."""
    if not x86:
        return []
    loc = _location(artifact, function, block, index, x86)
    loc["message"] = {"text": f"protected access lifted from x86: {x86}"}
    return [loc]


def fencecheck_results(diags, artifact: str) -> list[dict]:
    """SARIF results for :class:`repro.analysis.fencecheck.FenceDiag`."""
    results = []
    for d in diags:
        results.append(_result(
            f"fencecheck/{d.kind}", "error",
            f"{d.message} [{d.instruction}]",
            _location(artifact, d.function, d.block, d.index, d.x86),
            related=_x86_related(artifact, d.function, d.block, d.index,
                                 d.x86)))
    return results


def delayset_results(decisions, artifact: str) -> list[dict]:
    """SARIF results for :class:`repro.analysis.delayset.FenceDecision`."""
    results = []
    for d in decisions:
        results.append(_result(
            f"delayset/{d.verdict}", "note",
            f"F{d.kind} {d.verdict}: {d.reason}",
            _location(artifact, d.func, d.block, d.index, d.x86),
            related=_x86_related(artifact, d.func, d.block, d.index,
                                 d.x86)))
    return results


def racecheck_results(diags, artifact: str) -> list[dict]:
    """SARIF results for :class:`repro.analysis.racecheck.RaceDiag`.

    Only ``racy`` (warning) and ``lock-protected`` (note) classifications
    produce results; thread-local and atomic accesses are clean."""
    results = []
    for d in diags:
        if d.classification not in ("racy", "lock-protected"):
            continue
        level = "warning" if d.classification == "racy" else "note"
        results.append(_result(
            f"racecheck/{d.classification}", level,
            f"{d.message} [{d.instruction}]",
            _location(artifact, d.function, d.block, d.index, d.x86),
            related=_x86_related(artifact, d.function, d.block, d.index,
                                 d.x86)))
    return results


def tv_results(report, artifact: str) -> list[dict]:
    """SARIF results for a :class:`repro.analysis.tv.TVReport`.

    Only ``refuted`` (error) and ``unknown`` (note) verdicts produce
    results — ``proved`` is clean.  The logical location reuses the
    ``function:block:index`` shape with the offending pass in the block
    slot and the fixpoint iteration as the index; ``decoratedName``
    carries the x86 provenance blame when one was recovered."""
    results = []
    for v in report.verdicts:
        if v.verdict == "proved":
            continue
        level = "error" if v.verdict == "refuted" else "note"
        message = f"{v.pass_name}: {v.verdict} ({v.reason})"
        if v.detail:
            message += f" — {v.detail}"
        results.append(_result(
            f"tv/{v.verdict}", level, message,
            _location(artifact, v.function, v.pass_name, v.iteration,
                      v.blame),
            related=_x86_related(artifact, v.function, v.pass_name,
                                 v.iteration, v.blame)))
    return results


def sarif_report(results: list[dict]) -> dict:
    """Wrap results in a complete single-run SARIF 2.1.0 document."""
    rule_ids = sorted({r["ruleId"] for r in results})
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": _RULE_HELP.get(rule_id, rule_id)},
        }
        for rule_id in rule_ids
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro",
                        "informationUri":
                            "https://github.com/repro/lasagne-repro",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def write_sarif(path: str, results: list[dict]) -> Path:
    """Serialise ``results`` as a SARIF file at ``path``."""
    out = Path(path)
    out.write_text(json.dumps(sarif_report(results), indent=2))
    return out
