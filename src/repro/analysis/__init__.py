"""repro.analysis — static analyses over LIR.

Six layers:

* :mod:`repro.analysis.dataflow` — a generic worklist dataflow engine
  (forward/backward, lattice join, per-block in/out fixpoint states);
* :mod:`repro.analysis.pointsto` — Andersen-style points-to/escape
  analysis with integer provenance, exposed through the
  :class:`AliasInfo` / ModRef query interface;
* :mod:`repro.analysis.callgraph` — the module call graph with Tarjan
  SCCs, thread-root discovery and address-taken tracking;
* :mod:`repro.analysis.summaries` — bottom-up interprocedural function
  summaries (escape / mod-ref / returns / stores-into) feeding a
  whole-module :class:`ModuleAnalysis`;
* :mod:`repro.analysis.delayset` — Shasha–Snir delay-set analysis:
  critical cycles over the static conflict graph classify each placed
  fence as required or redundant, with enumeration-validated elision;
* :mod:`repro.analysis.fencecheck` — a static linter for the LIMM fence
  mapping obligations (ldna;Frm / Fww;stna / RMWsc);
* :mod:`repro.analysis.sync` — must-lockset dataflow over pthread mutex
  acquire/release events, interprocedural via bottom-up lock summaries;
* :mod:`repro.analysis.racecheck` — the static happens-before
  classifier: every shared access labelled racy / lock-protected /
  atomic / thread-local.

See docs/analysis.md for the design discussion.
"""

from .callgraph import CallGraph, build_callgraph, tarjan_sccs
from .dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    run_dataflow,
)
from .delayset import (
    DelaySetStats,
    analyze_module_fences,
    audit_module,
    check_litmus_elision,
    elide_litmus_fences,
    elide_redundant_fences,
)
from .fencecheck import (
    READ_FENCES,
    WRITE_FENCES,
    FenceDiag,
    check_function,
    check_module,
)
from .pointsto import (
    MOD,
    MOD_REF,
    NO_MODREF,
    REF,
    AliasInfo,
    MemObject,
    analyze_function,
)
from .racecheck import RaceDiag, RaceReport, classify_module
from .summaries import (
    FunctionSummary,
    ModuleAnalysis,
    analyze_module,
    compute_summaries,
)
from .sync import LockSummary, ModuleLocksets, compute_locksets, lock_key

__all__ = [
    "BACKWARD", "FORWARD", "DataflowProblem", "DataflowResult",
    "run_dataflow",
    "READ_FENCES", "WRITE_FENCES", "FenceDiag",
    "check_function", "check_module",
    "MOD", "MOD_REF", "NO_MODREF", "REF",
    "AliasInfo", "MemObject", "analyze_function",
    "CallGraph", "build_callgraph", "tarjan_sccs",
    "FunctionSummary", "ModuleAnalysis", "analyze_module",
    "compute_summaries",
    "DelaySetStats", "analyze_module_fences", "audit_module",
    "check_litmus_elision", "elide_litmus_fences",
    "elide_redundant_fences",
    "LockSummary", "ModuleLocksets", "compute_locksets", "lock_key",
    "RaceDiag", "RaceReport", "classify_module",
]
