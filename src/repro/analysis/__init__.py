"""repro.analysis — static analyses over LIR.

Three layers:

* :mod:`repro.analysis.dataflow` — a generic worklist dataflow engine
  (forward/backward, lattice join, per-block in/out fixpoint states);
* :mod:`repro.analysis.pointsto` — intraprocedural Andersen-style
  points-to/escape analysis with integer provenance, exposed through the
  :class:`AliasInfo` / ModRef query interface;
* :mod:`repro.analysis.fencecheck` — a static linter for the LIMM fence
  mapping obligations (ldna;Frm / Fww;stna / RMWsc).

See docs/analysis.md for the design discussion.
"""

from .dataflow import (
    BACKWARD,
    FORWARD,
    DataflowProblem,
    DataflowResult,
    run_dataflow,
)
from .fencecheck import (
    READ_FENCES,
    WRITE_FENCES,
    FenceDiag,
    check_function,
    check_module,
)
from .pointsto import (
    MOD,
    MOD_REF,
    NO_MODREF,
    REF,
    AliasInfo,
    MemObject,
    analyze_function,
)

__all__ = [
    "BACKWARD", "FORWARD", "DataflowProblem", "DataflowResult",
    "run_dataflow",
    "READ_FENCES", "WRITE_FENCES", "FenceDiag",
    "check_function", "check_module",
    "MOD", "MOD_REF", "NO_MODREF", "REF",
    "AliasInfo", "MemObject", "analyze_function",
]
