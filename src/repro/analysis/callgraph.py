"""Module call graph, SCC condensation, and thread-root discovery.

The interprocedural layers of the analysis package need three facts about
a :class:`~repro.lir.Module`:

* **who calls whom** — direct call edges between *defined* functions, so
  function summaries can be computed bottom-up (callees before callers);
* **which functions are mutually recursive** — Tarjan's strongly-connected
  components over those edges; calls inside an SCC are treated
  conservatively by the summary layer;
* **which functions can run as thread entry points** — for the delay-set
  conflict graph.  A function is a *thread root* when its address is
  taken (lifted code spawns workers by passing ``ptrtoint @worker`` to an
  external ``spawn``), or when no defined function calls it (``main``, or
  anything callable from outside the module).

Indirect calls (through a non-``Function`` callee) and calls to declared
externals do not produce edges; callers of such sites are flagged so
clients can stay conservative there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lir import Call, Cast, Function, Module

#: externals whose function-pointer argument starts a new thread; the
#: start routine is address-taken and escaping even if the use-list walk
#: cannot attribute the pointer back to the function
THREAD_SPAWNERS = frozenset({"pthread_create", "spawn"})


@dataclass
class CallSite:
    """One direct call instruction, resolved if the callee is defined."""

    caller: Function
    call: Call
    callee: Function | None  # defined intra-module callee, else None


@dataclass
class CallGraph:
    module: Module
    #: caller name -> every call site in its body (resolved or not)
    sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: caller name -> defined callee names (direct calls only)
    callees: dict[str, set[str]] = field(default_factory=dict)
    #: callee name -> defined caller names
    callers: dict[str, set[str]] = field(default_factory=dict)
    #: functions containing a call we could not resolve to a defined callee
    has_opaque_call: set[str] = field(default_factory=set)
    #: defined functions whose address is used as data (escaped fn pointers)
    address_taken: set[str] = field(default_factory=set)

    # -- queries -------------------------------------------------------

    def defined(self) -> list[Function]:
        return [f for f in self.module.functions.values()
                if not f.is_declaration]

    def thread_roots(self) -> list[Function]:
        """Functions that may start a thread: address-taken functions plus
        every defined function with no intra-module caller."""
        roots = []
        for func in self.defined():
            if func.name in self.address_taken or not self.callers[func.name]:
                roots.append(func)
        return roots

    def reachable_from(self, root: Function) -> list[Function]:
        """Defined functions reachable from ``root`` via direct calls,
        ``root`` first, in deterministic discovery order."""
        seen = {root.name}
        order = [root]
        work = [root.name]
        while work:
            name = work.pop(0)
            for callee in sorted(self.callees.get(name, ())):
                if callee not in seen:
                    seen.add(callee)
                    order.append(self.module.functions[callee])
                    work.append(callee)
        return order


def build_callgraph(module: Module) -> CallGraph:
    graph = CallGraph(module)
    defined = {f.name for f in module.functions.values()
               if not f.is_declaration}
    for func in module.functions.values():
        graph.callees.setdefault(func.name, set())
        graph.callers.setdefault(func.name, set())
    for func in module.functions.values():
        if func.is_declaration:
            continue
        sites = graph.sites.setdefault(func.name, [])
        for inst in func.instructions():
            if not isinstance(inst, Call):
                continue
            callee = inst.callee
            resolved = None
            if isinstance(callee, Function) and callee.name in defined:
                resolved = module.functions[callee.name]
                graph.callees[func.name].add(callee.name)
                graph.callers[callee.name].add(func.name)
            elif not inst.is_readnone_callee():
                graph.has_opaque_call.add(func.name)
            sites.append(CallSite(func, inst, resolved))
    # Address-taken: a defined Function value used anywhere but as the
    # callee operand of a call (e.g. ptrtoint @worker fed to spawn).
    for name in defined:
        func = module.functions[name]
        for user in func.users:
            if isinstance(user, Call) and user.callee is func and \
                    all(arg is not func for arg in user.args):
                continue
            graph.address_taken.add(name)
            break
    # Thread spawn sites: the start-routine argument of pthread_create /
    # spawn is a thread entry point even when the use-list walk above
    # cannot attribute the pointer value back to the function (the
    # argument is peeled through ptrtoint/inttoptr/bitcast chains here,
    # matching how both the lifter and the minicc frontend pass workers).
    for sites in graph.sites.values():
        for site in sites:
            callee = site.call.callee
            if site.callee is not None or not hasattr(callee, "name"):
                continue
            base = callee.name.split("@", 1)[0]
            if _spawner_name(base) not in THREAD_SPAWNERS:
                continue
            for arg in site.call.args:
                target = _peel_function(arg)
                if target is not None and target.name in defined:
                    graph.address_taken.add(target.name)
    return graph


def _spawner_name(name: str) -> str:
    """Canonical external name (strips glibc decoration so e.g.
    ``__pthread_create_2_1`` matches ``pthread_create``)."""
    from ..loader.externs import normalize_name
    return normalize_name(name)


def _peel_function(value) -> Function | None:
    """The defined Function behind a (possibly cast-wrapped) value."""
    for _ in range(8):
        if isinstance(value, Function):
            return value
        if isinstance(value, Cast):
            value = value.value
        else:
            return None
    return None


def tarjan_sccs(graph: CallGraph) -> list[list[str]]:
    """Strongly-connected components of the defined-function call graph in
    *reverse topological* order: every SCC appears after all SCCs it calls
    into — exactly the bottom-up order summary computation wants."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]
    names = sorted(f.name for f in graph.defined())

    def strongconnect(v: str) -> None:
        # Iterative Tarjan (explicit work stack) to survive deep chains.
        work = [(v, iter(sorted(graph.callees.get(v, ()))))]
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.callees.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    low[node] = min(low[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)

    for name in names:
        if name not in index:
            strongconnect(name)
    return sccs


def is_self_recursive(graph: CallGraph, name: str) -> bool:
    return name in graph.callees.get(name, ())
