"""Generic worklist dataflow engine over LIR CFGs.

A :class:`DataflowProblem` packages a direction, a lattice (``top``,
``boundary``, ``join``, ``equals``) and a per-block ``transfer`` function;
:func:`run_dataflow` iterates it to a fixpoint with a priority worklist
scheduled in reverse-postorder (postorder for backward problems), the
order that converges in O(depth) passes for reducible CFGs.

States are opaque to the engine — any value the problem's ``join`` and
``equals`` understand.  The result exposes the fixpoint per-block ``in``
and ``out`` states.

Consumers in-tree: the fence-obligation analyses of
:mod:`repro.analysis.fencecheck` (forward *fences-since-last-access* and
backward *fences-before-next-access*).
"""

from __future__ import annotations

import heapq
from typing import Any, Generic, TypeVar

from ..lir import BasicBlock, Function
from ..profiler.workcounters import work

State = TypeVar("State")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem(Generic[State]):
    """A dataflow problem: direction + lattice + transfer function.

    Subclasses override the four lattice hooks and ``transfer``.  ``join``
    must be monotone and ``transfer`` must be a monotone function of the
    input state or the solver may not terminate.
    """

    direction: str = FORWARD

    def top(self, func: Function) -> State:
        """The optimistic initial state (identity of ``join``)."""
        raise NotImplementedError

    def boundary(self, func: Function) -> State:
        """State at the CFG boundary: function entry for forward problems,
        every exit block (``ret``/``unreachable``) for backward ones."""
        return self.top(func)

    def join(self, a: State, b: State) -> State:
        raise NotImplementedError

    def equals(self, a: State, b: State) -> bool:
        return a == b

    def transfer(self, block: BasicBlock, state: State) -> State:
        """Propagate ``state`` through ``block`` (entry→exit for forward
        problems, exit→entry for backward ones)."""
        raise NotImplementedError


class DataflowResult(Generic[State]):
    """Fixpoint states per block.  ``block_in`` is the state at block entry
    and ``block_out`` the state at block exit, regardless of direction."""

    def __init__(self, func: Function, direction: str,
                 entry_states: dict[int, State],
                 exit_states: dict[int, State]) -> None:
        self.func = func
        self.direction = direction
        self._in = entry_states
        self._out = exit_states

    def block_in(self, block: BasicBlock) -> State:
        return self._in[id(block)]

    def block_out(self, block: BasicBlock) -> State:
        return self._out[id(block)]


def _reverse_postorder(func: Function) -> list[BasicBlock]:
    seen: set[int] = {id(func.entry)}
    postorder: list[BasicBlock] = []
    stack: list[tuple[BasicBlock, Any]] = [
        (func.entry, iter(func.entry.successors()))
    ]
    while stack:
        node, it = stack[-1]
        advanced = False
        for succ in it:
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append((succ, iter(succ.successors())))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            stack.pop()
    return list(reversed(postorder))


def run_dataflow(func: Function,
                 problem: DataflowProblem[State]) -> DataflowResult[State]:
    """Solve ``problem`` over ``func`` and return the fixpoint states.

    Unreachable blocks keep their ``top`` states: no path reaches them, so
    any fact holds there vacuously (mirroring the verifier's exemption).
    """
    forward = problem.direction == FORWARD
    rpo = _reverse_postorder(func)
    order = rpo if forward else list(reversed(rpo))
    priority = {id(bb): i for i, bb in enumerate(order)}

    top = problem.top(func)
    boundary = problem.boundary(func)
    entry_states: dict[int, State] = {id(bb): top for bb in func.blocks}
    exit_states: dict[int, State] = {id(bb): top for bb in func.blocks}

    def preds_of(bb: BasicBlock) -> list[BasicBlock]:
        return [p for p in bb.predecessors() if id(p) in priority]

    def is_boundary(bb: BasicBlock) -> bool:
        if forward:
            return bb is func.entry
        return not bb.successors()

    # Worklist keyed by schedule position; a block re-enters when the state
    # feeding it changed.  Reachable blocks only — the rest stay at top.
    heap: list[tuple[int, int]] = []
    queued: set[int] = set()
    by_id = {id(bb): bb for bb in order}

    def push(bb: BasicBlock) -> None:
        key = id(bb)
        if key in priority and key not in queued:
            queued.add(key)
            heapq.heappush(heap, (priority[key], key))

    for bb in order:
        push(bb)

    iterations = 0
    limit = max(64, len(order) * len(order) * 4 + 256)
    while heap:
        iterations += 1
        if iterations > limit:  # pragma: no cover - monotonicity violation
            raise RuntimeError(
                f"dataflow did not converge in {limit} steps "
                f"({func.name}): non-monotone transfer or join?")
        _, key = heapq.heappop(heap)
        queued.discard(key)
        bb = by_id[key]

        if forward:
            inputs = [exit_states[id(p)] for p in preds_of(bb)]
        else:
            inputs = [entry_states[id(s)] for s in bb.successors()]
        state = boundary if is_boundary(bb) else top
        for s in inputs:
            state = problem.join(state, s)

        if forward:
            if not problem.equals(state, entry_states[key]) or iterations <= len(order):
                entry_states[key] = state
                new_out = problem.transfer(bb, state)
                if not problem.equals(new_out, exit_states[key]):
                    exit_states[key] = new_out
                    for succ in bb.successors():
                        push(succ)
        else:
            if not problem.equals(state, exit_states[key]) or iterations <= len(order):
                exit_states[key] = state
                new_in = problem.transfer(bb, state)
                if not problem.equals(new_in, entry_states[key]):
                    entry_states[key] = new_in
                    for pred in preds_of(bb):
                        push(pred)

    # Deterministic fixpoint cost: worklist pops and CFG size.  The pop
    # order is fully determined by the RPO priorities, so these tallies
    # are identical across runs and machines (repro.profiler).
    work("dataflow.steps", iterations, function=func.name)
    work("dataflow.blocks", len(order), function=func.name)
    return DataflowResult(func, problem.direction, entry_states, exit_states)
