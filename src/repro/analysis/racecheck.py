"""racecheck — static happens-before classification of shared accesses.

The delay-set machinery (:mod:`repro.analysis.delayset`) knows which
accesses may conflict across threads, and the lockset dataflow
(:mod:`repro.analysis.sync`) knows which locks each access provably
holds.  Put together they answer the question a translator user actually
asks: *which of my memory accesses are data races?*  Every shared-memory
access in the module is classified as one of:

* ``thread-local`` — the access never conflicts with another thread:
  the escape analysis proved the address unshared, the access is
  unreachable from any thread root, or no conflicting access exists;
* ``atomic`` — the access itself carries sc ordering (an sc load/store
  or an atomic RMW/cmpxchg): ordered by LIMM ord3/ord4 natively;
* ``lock-protected(L)`` — every conflicting access shares at least one
  must-held lock with this one, so the lock's sc RMW chain serialises
  every observation (the same fact the sync refinement exploits);
* ``racy`` — some conflicting pair is unordered by both: the program
  has a (potential) data race, and the Fig. 8a fences around this
  access are load-bearing.

The classification is *static and conservative in the race direction*:
locksets only shrink under approximation and conflict edges only grow,
so an access reported ``lock-protected`` really is protected, while a
``racy`` report may be a false positive (e.g. a mutex the lockset
analysis could not name).  When the conflict-graph construction caps out
(too many threads or nodes) nothing is classified racy — the report says
so instead of guessing.

Diagnostics carry the same provenance as fencecheck: the originating x86
instruction (``function @ 0x...``) whenever it survived to the analyzed
module, telemetry remarks per racy access, and SARIF ``racecheck/*``
results via :mod:`repro.analysis.sarif`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..lir import (
    AtomicRMW,
    CmpXchg,
    Load,
    Module,
    Store,
    format_instruction,
)
from ..provenance.origin import format_origins
from .delayset import graph_from_module
from .summaries import ModuleAnalysis, analyze_module
from .sync import compute_locksets

#: classification labels, in decreasing severity
CLASSIFICATIONS = ("racy", "lock-protected", "atomic", "thread-local")


@dataclass(frozen=True)
class RaceDiag:
    """One classified shared access, locatable in the printed IR."""

    function: str
    block: str
    index: int
    classification: str   # one of CLASSIFICATIONS
    message: str
    instruction: str      # formatted instruction text
    locks: tuple = ()     # lock names protecting the access (lock-protected)
    x86: str = ""         # originating x86 instruction(s), when provenance
                          # survived to the analyzed module

    @property
    def location(self) -> str:
        """The x86 source location when known, else the LIR position."""
        if self.x86:
            return f"{self.function} @ {self.x86}"
        return f"{self.function}:{self.block}:{self.index}"

    @property
    def lir_location(self) -> str:
        return f"{self.function}:{self.block}:{self.index}"

    def __str__(self) -> str:
        return f"{self.location}: {self.classification}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "classification": self.classification,
            "message": self.message,
            "instruction": self.instruction,
            "locks": list(self.locks),
            "x86": self.x86,
        }


@dataclass
class RaceReport:
    """Whole-module classification with per-category counts."""

    diags: list[RaceDiag] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    threads: list[str] = field(default_factory=list)
    #: conflict-graph construction capped out: nothing was classified
    #: racy because nothing could be soundly classified at all
    capped: bool = False
    locks_seen: tuple = ()

    @property
    def racy(self) -> list[RaceDiag]:
        return [d for d in self.diags if d.classification == "racy"]

    @property
    def protected(self) -> list[RaceDiag]:
        return [d for d in self.diags if d.classification == "lock-protected"]

    def count(self, classification: str) -> int:
        return self.counts.get(classification, 0)


def _lock_names(keys: frozenset) -> tuple:
    """Human-readable lock names from ``("lock", global, offset)`` keys."""
    names = []
    for key in sorted(keys):
        name = str(key[1])
        if len(key) > 2 and key[2]:
            name += f"+{key[2]}"
        names.append(name)
    return tuple(names)


def classify_module(module: Module,
                    ma: Optional[ModuleAnalysis] = None) -> RaceReport:
    """Classify every shared access in ``module``; returns the report.

    Pass a pre-built :class:`~repro.analysis.summaries.ModuleAnalysis` to
    share the call graph and alias work with the rest of the pipeline.
    """
    ma = ma or analyze_module(module)
    locksets = compute_locksets(module, ma)
    locks_at = locksets.at_instruction
    # Base (unrefined) graph: the sync refinement would drop exactly the
    # conflict edges this classifier needs to *see* to call an access
    # lock-protected rather than thread-local.
    graph, thread_names = graph_from_module(module, ma, sync=False)

    report = RaceReport(threads=thread_names, capped=graph.capped,
                        locks_seen=_lock_names(
                            frozenset(locksets.locks_seen)))
    counts = {c: 0 for c in CLASSIFICATIONS}

    # Group graph nodes by underlying instruction: a worker spawned twice
    # contributes two thread copies of each access, but the user cares
    # about the instruction, not the copy.
    by_inst: dict[int, list] = {}
    for node in graph.accesses.values():
        by_inst.setdefault(id(node.inst), []).append(node)

    def classify_nodes(nodes) -> tuple[str, frozenset]:
        """(classification, common locks) for one instruction's copies."""
        inst = nodes[0].inst
        conflicts = set()
        for n in nodes:
            for other_uid in graph.conflicts.get(n.uid, ()):
                conflicts.add(graph.accesses[other_uid])
        if not conflicts:
            return "thread-local", frozenset()
        if any(n.ordering == "sc" for n in nodes) or isinstance(
                inst, (AtomicRMW, CmpXchg)):
            return "atomic", frozenset()
        my_locks = locks_at.get(id(inst), frozenset())
        if not my_locks:
            return "racy", frozenset()
        common: Optional[frozenset] = None
        for other in conflicts:
            # Conservative even against atomics: an sc access on the
            # other side orders itself, not this na access's observers.
            shared = my_locks & locks_at.get(id(other.inst), frozenset())
            if not shared:
                return "racy", frozenset()
            common = shared if common is None else (common & shared)
        assert common is not None  # conflicts is non-empty here
        if not common:
            # Each pair shares *a* lock but no single lock covers all
            # conflicts; still protected pairwise.
            common = my_locks
        return "lock-protected", common

    def diag(func: str, block: str, index: int, inst,
             classification: str, message: str, locks: frozenset) -> None:
        report.diags.append(RaceDiag(
            function=func, block=block, index=index,
            classification=classification, message=message,
            instruction=format_instruction(inst).strip(),
            locks=_lock_names(locks),
            x86=format_origins(inst.origins) if inst.origins else ""))

    graph_insts = set(by_inst)
    for inst_id, nodes in sorted(
            by_inst.items(),
            key=lambda kv: (kv[1][0].func, kv[1][0].block, kv[1][0].index)):
        first = nodes[0]
        classification, locks = classify_nodes(nodes)
        if report.capped and classification == "racy":
            # A capped graph has incomplete conflict edges in *both*
            # directions; refuse to point fingers.
            classification = "thread-local"
        counts[classification] += 1
        if classification == "racy":
            diag(first.func, first.block, first.index, first.inst,
                 "racy",
                 "conflicting access in another thread with no common "
                 "lock and no atomic ordering", locks)
        elif classification == "lock-protected":
            names = ", ".join(_lock_names(locks)) or "?"
            diag(first.func, first.block, first.index, first.inst,
                 "lock-protected",
                 f"every conflicting access shares lock(s) {names}",
                 locks)

    # Accesses never in the graph at all: proven thread-local by escape
    # analysis, or unreachable from any thread root.
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            for inst in bb.instructions:
                if isinstance(inst, (Load, Store, AtomicRMW, CmpXchg)) \
                        and id(inst) not in graph_insts:
                    counts["thread-local"] += 1

    report.counts = counts
    if report.capped:
        telemetry.remark(
            "racecheck", "capped",
            "conflict-graph construction capped out "
            f"({len(thread_names)} thread roots); no access was "
            "classified racy because none could be classified soundly")
    if telemetry.remarks_enabled():
        for d in report.racy:
            telemetry.remark(
                "racecheck", "racy", d.message,
                function=d.function, block=d.block, instruction=d.index,
                x86=d.x86)
    telemetry.count("racecheck.racy", counts["racy"])
    telemetry.count("racecheck.lock_protected", counts["lock-protected"])
    telemetry.count("racecheck.atomic", counts["atomic"])
    telemetry.count("racecheck.thread_local", counts["thread-local"])
    return report
