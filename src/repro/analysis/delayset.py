"""Shasha–Snir delay-set analysis: which placed fences are *required*?

Fig. 8a fences every shared access pairwise (``ldna;Frm``, ``Fww;stna``),
which enforces **every** program-order edge between shared accesses.  The
classic delay-set observation (Shasha & Snir 1988; surveyed for
architecture-to-architecture mappings by Chakraborty, see PAPERS.md) is
that only po edges lying on a *critical cycle* of the static conflict
graph can ever be observed out of order — a cycle alternating

* **po edges** inside a thread (at most two accesses per thread, to
  different locations), and
* **conflict edges** between accesses of different threads to overlapping
  locations, at least one a write.

A fence is *required* iff it covers a delay edge (an enforceable po edge
on some critical cycle); every other Frm/Fww is *redundant* and may be
elided without admitting any execution the x86-TSO source forbids.

Three TSO/LIMM-specific refinements:

* po edges x86 itself does not order — ``W → R`` — are never delay edges
  (the source already allows that reordering; MFENCEs became ``Fsc``
  which this tier never touches);
* accesses with ``sc`` ordering (RMW/CmpXchg and their fences) are
  ordered by LIMM's ord3/ord4 natively — edges touching them need no
  ``Frm``/``Fww``;
* po edges between *provably identical* concrete locations are enforced
  by LIMM's per-location coherence (``sc_per_loc``) — pruned only when
  both sides resolve to the same (global, offset, size) key, never for
  merely may-aliasing abstract objects.

An opt-in fourth refinement (``sync=True``) consumes the must-lockset
analysis of :mod:`repro.analysis.sync`: a conflict edge between two
accesses that both hold a common lock is ordered by the lock's own sc
RMW chain (mutual exclusion + ord3/ord4 across the critical-section
boundary) and therefore cannot lie on a critical cycle.  Fences that
become redundant only under this refinement form the ``sync`` elision
tier (``fences.skipped_sync``); the refinement runs *on top of* the base
analysis and contributes nothing when it is capped.

Two frontends build the conflict graph: :func:`graph_from_litmus` (each
litmus thread is a thread; locations are exact) and
:func:`graph_from_module` (thread roots are ``main``-like entries plus
escaped-function-pointer targets, which get **two** copies so self-races
are visible; per-root access sets are inlined through direct calls with a
CFG-reachability "may execute before" relation; locations come from the
interprocedural points-to analysis).  Everything over-approximates toward
*more* cycles — unknown locations conflict with everything, cycle-search
budget overruns mark the analysis ``capped`` and keep every fence.

Every elision is double-checked: the protected access is stamped with a
``delayset_cert`` (cycle-freeness certificate) that ``fencecheck``
honours and :func:`audit_module` re-derives from scratch, and the litmus
path is validated exhaustively by enumeration in the tests/CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..lir import (
    GEP,
    AtomicRMW,
    Call,
    Cast,
    CmpXchg,
    ConstantInt,
    Fence,
    Function,
    GlobalVariable,
    Load,
    Module,
    Store,
)
from ..memmodel import events as ev
from ..profiler.workcounters import work
from ..provenance.origin import x86_location
from .summaries import ModuleAnalysis, analyze_module

TOP = ("top",)  # unknown location: conflicts with every shared access

# Work caps: overrunning any of them keeps every fence (sound fallback).
MAX_THREADS = 8
MAX_NODES = 800
MAX_CANDIDATES = 20000
CYCLE_BUDGET = 250000


@dataclass(eq=False)
class Access:
    uid: int
    thread: int
    kind: str            # "R" | "W" | "RW"
    ordering: str        # "na" | "sc"
    locs: frozenset      # location keys, possibly {TOP}
    label: str
    inst: object = None  # LIR Instruction (module) or (thread, index)
    func: str = ""
    block: str = ""
    index: int = -1
    #: must-held lock keys at this access (repro.analysis.sync); empty when
    #: unknown, which is the sound direction for the sync refinement
    locks: frozenset = frozenset()


@dataclass(eq=False)
class FenceNode:
    uid: int
    thread: int
    kind: str            # "rm" | "ww" | "sc"
    label: str
    inst: object = None
    func: str = ""
    block: str = ""
    index: int = -1


@dataclass
class ConflictGraph:
    accesses: dict[int, Access] = field(default_factory=dict)
    fences: dict[int, FenceNode] = field(default_factory=dict)
    nthreads: int = 0
    #: uid -> uids that may execute later in the same thread (accesses+fences)
    po: dict[int, set[int]] = field(default_factory=dict)
    #: access uid -> conflicting access uids (symmetric, cross-thread)
    conflicts: dict[int, set[int]] = field(default_factory=dict)
    capped: bool = False
    #: sync refinement: drop conflict edges between accesses whose
    #: must-locksets intersect (they are ordered by the lock's RMW chain)
    sync: bool = False
    sync_dropped: int = 0

    def add_access(self, node: Access) -> None:
        self.accesses[node.uid] = node
        self.po.setdefault(node.uid, set())
        self.conflicts.setdefault(node.uid, set())

    def add_fence(self, node: FenceNode) -> None:
        self.fences[node.uid] = node
        self.po.setdefault(node.uid, set())

    def build_conflicts(self) -> None:
        nodes = list(self.accesses.values())
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if a.thread == b.thread:
                    continue
                if a.kind == "R" and b.kind == "R":
                    continue
                if not _locs_overlap(a.locs, b.locs):
                    continue
                if self.sync and (a.locks & b.locks):
                    # Both sides hold a common lock at the access: mutual
                    # exclusion plus the lock's sc RMW chain (ord3/ord4)
                    # orders the pair, so it cannot lie on a critical
                    # cycle (Chakraborty's sync-ordered conflict rule).
                    self.sync_dropped += 1
                    continue
                self.conflicts[a.uid].add(b.uid)
                self.conflicts[b.uid].add(a.uid)


# -- location keys ----------------------------------------------------------


def _keys_overlap(k1: tuple, k2: tuple) -> bool:
    if k1 == TOP or k2 == TOP:
        return True
    if k1[0] == "g" and k2[0] == "g":
        if k1[1] != k2[1]:
            return False
        return k1[2] < k2[2] + k2[3] and k2[2] < k1[2] + k1[3]
    if k1[0] == k2[0]:
        return k1 == k2
    # concrete global range vs abstract object key
    if {k1[0], k2[0]} == {"g", "obj"}:
        g, o = (k1, k2) if k1[0] == "g" else (k2, k1)
        return o[1] == "global" and o[2] == g[1]
    return False


def _locs_overlap(ls1: frozenset, ls2: frozenset) -> bool:
    return any(_keys_overlap(k1, k2) for k1 in ls1 for k2 in ls2)


def _must_same_loc(a: Access, b: Access) -> bool:
    """Provably the *same concrete* bytes — the only case per-location
    coherence is allowed to discharge.  Field-insensitive abstract object
    keys (e.g. a whole array) never qualify."""
    if len(a.locs) != 1 or a.locs != b.locs:
        return False
    (key,) = a.locs
    return key != TOP and key[0] in ("g", "lit")


def _concrete_key(pointer, size: int) -> Optional[tuple]:
    """Syntactic walk to a (global, byte-offset, size) key, or None."""
    offset = 0
    value = pointer
    for _ in range(64):
        if isinstance(value, GlobalVariable):
            return ("g", value.name, offset, size)
        if isinstance(value, Cast) and value.op == "bitcast":
            value = value.value
        elif isinstance(value, GEP):
            element = (value.source_type.element
                       if len(value.indices) == 2 else value.source_type)
            scales = ([value.source_type.size_bytes(), element.size_bytes()]
                      if len(value.indices) == 2
                      else [value.source_type.size_bytes()])
            for idx, scale in zip(value.indices, scales):
                if not isinstance(idx, ConstantInt):
                    return None
                offset += idx.value * scale
            value = value.pointer
        else:
            return None
    return None


def _access_size(inst) -> int:
    try:
        if isinstance(inst, Store):
            return max(1, inst.value.type.size_bytes())
        return max(1, inst.type.size_bytes())
    except Exception:
        return 8


def _location_keys(inst, pointer, func, alias) -> frozenset:
    key = _concrete_key(pointer, _access_size(inst))
    if key is not None:
        return frozenset({key})
    keys = set()
    for obj in alias.points_to(pointer):
        if obj.kind == "global" and obj.origin is not None:
            keys.add(("obj", "global", obj.origin.name))
        elif obj.kind == "stack" and obj.origin is not None:
            # Keyed by the alloca identity: shared across thread copies of
            # the same root on purpose (a leaked frame address may travel).
            keys.add(("obj", "stack", func.name, id(obj.origin)))
        else:
            return frozenset({TOP})
    return frozenset(keys) if keys else frozenset({TOP})


# -- delay-edge computation -------------------------------------------------


@dataclass
class DelayAnalysis:
    graph: ConflictGraph
    delay_edges: set[tuple[int, int]] = field(default_factory=set)
    required: set[int] = field(default_factory=set)     # fence uids
    redundant: set[int] = field(default_factory=set)
    #: fence uid -> one (u, v) delay edge it covers (evidence for logs)
    witness: dict[int, tuple[int, int]] = field(default_factory=dict)
    uncovered: set[tuple[int, int]] = field(default_factory=set)
    candidates: int = 0
    cycles: int = 0
    capped: bool = False

    @property
    def keep_all(self) -> bool:
        """Sound fallback: budget overrun, or a delay edge with no
        covering fence (the placement invariant did not hold here)."""
        return self.capped or bool(self.uncovered)


def _edge_enforceable(u: Access, v: Access) -> bool:
    if u.ordering != "na" or v.ordering != "na":
        return False  # sc accesses are ordered by ord3/ord4 natively
    if u.kind == "W" and v.kind == "R":
        return False  # x86-TSO itself allows W->R reordering
    if _must_same_loc(u, v):
        return False  # per-location coherence (sc_per_loc) enforces it
    return True


def _fence_covers(f: FenceNode, u: Access, v: Access) -> bool:
    if f.kind == "sc":
        return True
    if f.kind == "rm":
        return u.kind == "R"
    if f.kind == "ww":
        return u.kind == "W" and v.kind == "W"
    return False


class _CycleSearch:
    """Critical-cycle existence queries with a global expansion budget."""

    def __init__(self, graph: ConflictGraph, budget: int = CYCLE_BUDGET):
        self.graph = graph
        self.budget = budget
        self.exhausted = False

    def cycle_exists(self, u: Access, v: Access) -> bool:
        """Is there a critical cycle containing the po edge u -> v?

        Searches v --cf--> (one or two accesses per intermediate thread,
        the pair po-ordered and to different locations) --cf--> u, each
        intermediate thread used at most once.  Budget exhaustion answers
        True (more cycles = more fences = sound)."""
        graph = self.graph
        po = graph.po
        conflicts = graph.conflicts
        accesses = graph.accesses
        target = u.uid
        seen: set[tuple[int, frozenset]] = set()
        stack: list[tuple[int, frozenset]] = [(v.uid, frozenset({u.thread}))]
        while stack:
            if self.budget <= 0:
                self.exhausted = True
                return True
            self.budget -= 1
            node, used = stack.pop()
            for w_uid in conflicts[node]:
                if w_uid == target:
                    return True
                w = accesses[w_uid]
                if w.thread in used:
                    continue
                used2 = used | {w.thread}
                state = (w_uid, used2)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
                # Two-access segment: w --po--> y, different locations.
                for y_uid in po[w_uid]:
                    y = accesses.get(y_uid)
                    if y is None or y.thread != w.thread:
                        continue
                    if _must_same_loc(w, y):
                        continue
                    state = (y_uid, used2)
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)
        return False


def analyze_graph(graph: ConflictGraph) -> DelayAnalysis:
    """Find delay edges and classify every fence as required/redundant."""
    result = DelayAnalysis(graph)
    if graph.capped:
        result.capped = True
        return result
    search = _CycleSearch(graph)
    try:
        return _analyze_graph(graph, result, search)
    finally:
        # Deterministic cost attribution (repro.profiler): candidate po
        # edges examined and cycle-search expansions spent.  The DFS
        # iterates sets of int uids, whose order is stable across runs.
        work("delayset.candidates", result.candidates)
        work("delayset.cycle_steps", CYCLE_BUDGET - search.budget)


def _analyze_graph(graph: ConflictGraph, result: DelayAnalysis,
                   search: _CycleSearch) -> DelayAnalysis:
    accesses = graph.accesses
    # Candidate po pairs: enforceable na->na edges between shared accesses
    # where both endpoints can touch a conflict (else no cycle through them).
    for u in accesses.values():
        if not graph.conflicts[u.uid]:
            continue
        for v_uid in graph.po[u.uid]:
            v = accesses.get(v_uid)
            if v is None or v.uid == u.uid:
                continue
            if not graph.conflicts[v.uid]:
                continue
            if not _edge_enforceable(u, v):
                continue
            result.candidates += 1
            if result.candidates > MAX_CANDIDATES:
                result.capped = True
                return result
            if search.cycle_exists(u, v):
                result.delay_edges.add((u.uid, v.uid))
                result.cycles += 1
        if search.exhausted:
            result.capped = True
            return result
    # Coverage: a fence is required iff it covers some delay edge.
    for u_uid, v_uid in result.delay_edges:
        u, v = accesses[u_uid], accesses[v_uid]
        covered = False
        for f_uid, f in graph.fences.items():
            if f.thread != u.thread:
                continue
            if (f_uid in graph.po[u_uid] and v_uid in graph.po[f_uid]
                    and _fence_covers(f, u, v)):
                covered = True
                if f_uid not in result.required:
                    result.required.add(f_uid)
                    result.witness[f_uid] = (u_uid, v_uid)
        if not covered:
            result.uncovered.add((u_uid, v_uid))
    result.redundant = set(graph.fences) - result.required
    return result


# -- litmus frontend --------------------------------------------------------


def litmus_locksets(program: ev.Program) -> list[list[frozenset]]:
    """Per-thread, per-op must-held lock keys of a litmus program.

    Threads are straight-line, so the lockset is a simple scan: a blocking
    acquire RMW (``events.Lock``) adds its location, a blocking release
    (``events.Unlock``) removes it.  The lock operations themselves carry
    an empty lockset — their conflicts on the lock word *are* the
    synchronization and must stay in the graph."""
    out: list[list[frozenset]] = []
    for ops in program.threads:
        held: set[str] = set()
        thread_sets: list[frozenset] = []
        for op in ops:
            if isinstance(op, ev.Rmw) and op.blocking:
                thread_sets.append(frozenset())
                if op.sync == "acquire":
                    held.add(op.loc)
                elif op.sync == "release":
                    held.discard(op.loc)
            else:
                thread_sets.append(frozenset(("lit", loc) for loc in held))
        out.append(thread_sets)
    return out


def graph_from_litmus(program: ev.Program,
                      sync: bool = False) -> ConflictGraph:
    """Conflict graph of a LIMM-level litmus program (e.g. the image of
    ``map_x86_to_ir``).  x86 ``mfence`` is treated as ``sc``.  With
    ``sync=True``, conflict edges between accesses holding a common lock
    (see :func:`litmus_locksets`) are dropped."""
    graph = ConflictGraph(nthreads=len(program.threads), sync=sync)
    locksets = litmus_locksets(program)
    uid = 0
    for t, ops in enumerate(program.threads):
        thread_nodes: list[int] = []
        for idx, op in enumerate(ops):
            if isinstance(op, ev.Ld):
                ordering = "sc" if op.ordering == "sc" else "na"
                graph.add_access(Access(
                    uid, t, "R", ordering, frozenset({("lit", op.loc)}),
                    f"T{t}: Ld {op.loc}", inst=(t, idx), index=idx,
                    locks=locksets[t][idx]))
            elif isinstance(op, ev.St):
                ordering = "sc" if op.ordering == "sc" else "na"
                graph.add_access(Access(
                    uid, t, "W", ordering, frozenset({("lit", op.loc)}),
                    f"T{t}: St {op.loc}", inst=(t, idx), index=idx,
                    locks=locksets[t][idx]))
            elif isinstance(op, ev.Rmw):
                graph.add_access(Access(
                    uid, t, "RW", "sc", frozenset({("lit", op.loc)}),
                    f"T{t}: RMW {op.loc}", inst=(t, idx), index=idx,
                    locks=locksets[t][idx]))
            elif isinstance(op, ev.Fence):
                kind = "sc" if op.kind == "mfence" else op.kind
                if kind not in ("rm", "ww", "sc"):
                    kind = "sc"  # arm-level fences: strongest, never elided
                graph.add_fence(FenceNode(
                    uid, t, kind, f"T{t}: F{kind}", inst=(t, idx), index=idx))
            else:  # CtrlDep: no event
                continue
            thread_nodes.append(uid)
            uid += 1
        for i, a in enumerate(thread_nodes):
            for b in thread_nodes[i + 1:]:
                graph.po[a].add(b)
    graph.build_conflicts()
    return graph


@dataclass
class LitmusDecision:
    thread: int
    index: int
    kind: str
    verdict: str  # "required" | "redundant" | "kept"
    reason: str
    tier: str = ""  # "delayset" | "sync" for redundant verdicts


@dataclass
class LitmusDelayResult:
    program: ev.Program
    elided: ev.Program
    analysis: DelayAnalysis
    decisions: list[LitmusDecision]
    sync_analysis: Optional[DelayAnalysis] = None

    @property
    def elided_count(self) -> int:
        return sum(1 for d in self.decisions if d.verdict == "redundant")

    @property
    def elided_sync_count(self) -> int:
        return sum(1 for d in self.decisions
                   if d.verdict == "redundant" and d.tier == "sync")

    @property
    def required_count(self) -> int:
        return sum(1 for d in self.decisions if d.verdict == "required")


def elide_litmus_fences(program: ev.Program,
                        sync: bool = False) -> LitmusDelayResult:
    """Classify and drop redundant Frm/Fww fences of a LIMM litmus
    program.  ``sc`` fences are always kept (they encode source MFENCEs).

    With ``sync=True`` a second, sync-refined analysis runs on top of the
    base one: fences required by the base delay sets but redundant once
    lock-ordered conflict edges are dropped are elided under the ``sync``
    tier.  A capped/uncovered sync analysis contributes nothing (fences
    fall back to the base verdict)."""
    graph = graph_from_litmus(program)
    analysis = analyze_graph(graph)
    sync_analysis: Optional[DelayAnalysis] = None
    sync_redundant: set = set()  # (t, idx) inst keys
    if sync:
        sync_graph = graph_from_litmus(program, sync=True)
        sync_analysis = analyze_graph(sync_graph)
        if not sync_analysis.keep_all:
            sync_redundant = {
                f.inst for f_uid, f in sync_graph.fences.items()
                if f.kind != "sc" and f_uid in sync_analysis.redundant
            }
    verdicts: dict[tuple[int, int], tuple[str, str, str]] = {}
    for f_uid, f in graph.fences.items():
        if f.kind == "sc":
            verdicts[f.inst] = (
                "kept", "Fsc (source MFENCE) is never elided", "")
        elif analysis.keep_all:
            reason = ("analysis budget exhausted"
                      if analysis.capped else "uncovered delay edge")
            verdicts[f.inst] = ("kept", f"kept conservatively: {reason}", "")
        elif f_uid in analysis.required:
            if f.inst in sync_redundant:
                verdicts[f.inst] = (
                    "redundant",
                    "every conflict it orders is lock-protected "
                    "(sync-refined delay sets)", "sync")
                continue
            u_uid, v_uid = analysis.witness[f_uid]
            u, v = graph.accesses[u_uid], graph.accesses[v_uid]
            verdicts[f.inst] = (
                "required",
                f"covers delay edge {u.label} -> {v.label} "
                "(on a critical cycle)", "")
        else:
            verdicts[f.inst] = (
                "redundant", "covers no critical-cycle delay edge",
                "delayset")
    threads = []
    decisions = []
    for t, ops in enumerate(program.threads):
        kept_ops = []
        for idx, op in enumerate(ops):
            if isinstance(op, ev.Fence):
                verdict, reason, tier = verdicts.get(
                    (t, idx), ("kept", "unclassified fence kept", ""))
                decisions.append(LitmusDecision(
                    t, idx, op.kind, verdict, reason, tier=tier))
                if verdict == "redundant":
                    continue
            kept_ops.append(op)
        threads.append(kept_ops)
    elided = ev.Program(threads, dict(program.init),
                        f"{program.name}-delayset")
    return LitmusDelayResult(program, elided, analysis, decisions,
                             sync_analysis=sync_analysis)


def check_litmus_elision(
    source: ev.Program, sync: bool = False
) -> tuple[bool, "LitmusDelayResult"]:
    """The enumeration gate: map an x86 litmus program through Fig. 8a,
    elide redundant fences, and prove by exhaustive LIMM enumeration that
    the elided program admits no outcome the x86 source forbids."""
    from ..memmodel.axioms import outcomes
    from ..memmodel.mappings import map_x86_to_ir

    mapped = map_x86_to_ir(source)
    result = elide_litmus_fences(mapped, sync=sync)
    allowed = outcomes(source, "x86")
    observed = outcomes(result.elided, "limm")
    return observed <= allowed, result


# -- module frontend --------------------------------------------------------


def _block_reach(func: Function) -> dict:
    """block -> set of blocks reachable via >= 1 CFG edge (so a block in a
    cycle reaches itself)."""
    succs = {bb: list(bb.successors()) for bb in func.blocks}
    reach: dict = {}
    for bb in func.blocks:
        seen: set = set()
        work = list(succs[bb])
        while work:
            nxt = work.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            work.extend(succs.get(nxt, ()))
        reach[bb] = seen
    return reach


@dataclass
class FenceDecision:
    func: str
    block: str
    index: int
    kind: str
    verdict: str  # "required" | "redundant" | "kept"
    reason: str
    x86: str = ""
    tier: str = ""  # "delayset" | "sync" for redundant verdicts


@dataclass
class ModuleDelayResult:
    graph: ConflictGraph
    analysis: DelayAnalysis
    #: id(fence inst) -> True when some thread copy needs it
    required_insts: set[int] = field(default_factory=set)
    seen_insts: set[int] = field(default_factory=set)
    #: id(fence inst) -> (u.label, v.label) witness
    witnesses: dict[int, tuple[str, str]] = field(default_factory=dict)
    threads: list[str] = field(default_factory=list)

    @property
    def keep_all(self) -> bool:
        return self.analysis.keep_all


def graph_from_module(module: Module,
                      ma: Optional[ModuleAnalysis] = None,
                      sync: bool = False) -> tuple[
                          ConflictGraph, list[str]]:
    """Build the whole-module conflict graph.

    Thread roots are ``main``-like entries (no intra-module caller) plus
    every address-taken function; address-taken roots contribute **two**
    thread copies so a worker racing its own clone is modelled.  Each
    root's thread inlines the shared accesses of every function reachable
    through direct calls; "may execute before" is CFG reachability within
    a function composed with call structure (enter/exit virtual nodes).
    External calls are assumed memory-model-neutral (see module docstring
    Limitations) and contribute no access node.

    With ``sync=True`` every access node carries the must-lockset the
    :mod:`repro.analysis.sync` dataflow computed for its instruction, and
    conflict edges between accesses holding a common lock are dropped.
    """
    ma = ma or analyze_module(module)
    cg = ma.callgraph
    locks_at: dict[int, frozenset] = {}
    if sync:
        from .sync import compute_locksets
        locks_at = compute_locksets(module, ma).at_instruction
    graph = ConflictGraph(sync=sync)
    thread_names: list[str] = []
    roots: list[tuple[Function, int]] = []
    for root in cg.thread_roots():
        copies = 2 if root.name in cg.address_taken else 1
        for c in range(copies):
            roots.append((root, c))
            thread_names.append(root.name + (f"#{c}" if copies > 1 else ""))
    if not roots or len(roots) > MAX_THREADS:
        graph.capped = True
        return graph, thread_names
    graph.nthreads = len(roots)

    uid_counter = [0]

    def fresh_uid() -> int:
        uid_counter[0] += 1
        return uid_counter[0]

    reach_cache: dict[str, dict] = {}

    for thread, (root, _copy) in enumerate(roots):
        funcs = cg.reachable_from(root)
        # virtual enter/exit per function for cross-call ordering
        enter = {f.name: fresh_uid() for f in funcs}
        exit_ = {f.name: fresh_uid() for f in funcs}
        edges: dict[int, set[int]] = {}

        def add_edge(a: int, b: int) -> None:
            edges.setdefault(a, set()).add(b)

        real_nodes: list[int] = []
        for func in funcs:
            alias = ma.alias(func)
            if func.name not in reach_cache:
                reach_cache[func.name] = _block_reach(func)
            breach = reach_cache[func.name]
            positions: list[tuple[int, object, int]] = []  # (uid, bb, idx)
            calls: list[tuple[str, object, int]] = []
            for bb in func.blocks:
                for idx, inst in enumerate(bb.instructions):
                    node = None
                    if isinstance(inst, Load) and \
                            not alias.is_thread_local(inst.pointer):
                        node = Access(
                            fresh_uid(), thread, "R",
                            "na" if inst.ordering == "na" else "sc",
                            _location_keys(inst, inst.pointer, func, alias),
                            f"{func.name}:{bb.name}:{idx} load",
                            inst=inst, func=func.name, block=bb.name,
                            index=idx, locks=locks_at.get(id(inst),
                                                          frozenset()))
                        graph.add_access(node)
                    elif isinstance(inst, Store) and \
                            not alias.is_thread_local(inst.pointer):
                        node = Access(
                            fresh_uid(), thread, "W",
                            "na" if inst.ordering == "na" else "sc",
                            _location_keys(inst, inst.pointer, func, alias),
                            f"{func.name}:{bb.name}:{idx} store",
                            inst=inst, func=func.name, block=bb.name,
                            index=idx, locks=locks_at.get(id(inst),
                                                          frozenset()))
                        graph.add_access(node)
                    elif isinstance(inst, (AtomicRMW, CmpXchg)):
                        if not alias.is_thread_local(inst.pointer):
                            node = Access(
                                fresh_uid(), thread, "RW", "sc",
                                _location_keys(inst, inst.pointer, func,
                                               alias),
                                f"{func.name}:{bb.name}:{idx} rmw",
                                inst=inst, func=func.name, block=bb.name,
                                index=idx, locks=locks_at.get(id(inst),
                                                              frozenset()))
                            graph.add_access(node)
                    elif isinstance(inst, Fence):
                        node = FenceNode(
                            fresh_uid(), thread, inst.kind,
                            f"{func.name}:{bb.name}:{idx} F{inst.kind}",
                            inst=inst, func=func.name, block=bb.name,
                            index=idx)
                        graph.add_fence(node)
                    elif isinstance(inst, Call):
                        callee = inst.callee
                        if isinstance(callee, Function) and \
                                callee.name in enter:
                            calls.append((callee.name, bb, idx))
                    if node is not None:
                        positions.append((node.uid, bb, idx))
                        real_nodes.append(node.uid)
                        if len(real_nodes) > MAX_NODES:
                            graph.capped = True
                            return graph, thread_names

            def before(bb_a, idx_a, bb_b, idx_b) -> bool:
                if bb_a is bb_b:
                    return idx_a < idx_b or bb_a in breach[bb_a]
                return bb_b in breach[bb_a]

            add_edge(enter[func.name], exit_[func.name])
            for uid_a, bb_a, idx_a in positions:
                add_edge(enter[func.name], uid_a)
                add_edge(uid_a, exit_[func.name])
                for uid_b, bb_b, idx_b in positions:
                    if uid_a != uid_b and before(bb_a, idx_a, bb_b, idx_b):
                        add_edge(uid_a, uid_b)
            for callee_name, bb_c, idx_c in calls:
                add_edge(enter[func.name], enter[callee_name])
                add_edge(exit_[callee_name], exit_[func.name])
                for uid_a, bb_a, idx_a in positions:
                    if before(bb_a, idx_a, bb_c, idx_c):
                        add_edge(uid_a, enter[callee_name])
                    if before(bb_c, idx_c, bb_a, idx_a):
                        add_edge(exit_[callee_name], uid_a)

        # po = reachability over the per-thread edge graph, restricted to
        # this thread's real (access/fence) nodes.
        thread_real = set(real_nodes)
        for start in real_nodes:
            seen: set[int] = set()
            work = list(edges.get(start, ()))
            while work:
                nxt = work.pop()
                if nxt in seen:
                    continue
                seen.add(nxt)
                work.extend(edges.get(nxt, ()))
            graph.po[start] = seen & thread_real
    graph.build_conflicts()
    return graph, thread_names


def analyze_module_fences(module: Module,
                          ma: Optional[ModuleAnalysis] = None,
                          sync: bool = False) -> ModuleDelayResult:
    graph, thread_names = graph_from_module(module, ma, sync=sync)
    analysis = analyze_graph(graph)
    result = ModuleDelayResult(graph, analysis, threads=thread_names)
    for f_uid, f in graph.fences.items():
        result.seen_insts.add(id(f.inst))
        if f_uid in analysis.required:
            result.required_insts.add(id(f.inst))
            u_uid, v_uid = analysis.witness[f_uid]
            result.witnesses.setdefault(
                id(f.inst), (graph.accesses[u_uid].label,
                             graph.accesses[v_uid].label))
    return result


# -- elision on LIR modules -------------------------------------------------


@dataclass
class DelaySetStats:
    fences_before: int = 0
    required: int = 0
    elided: int = 0
    elided_sync: int = 0       # of ``elided``: only via the sync refinement
    kept_sc: int = 0
    kept_conservative: int = 0
    delay_edges: int = 0
    sync_dropped_conflicts: int = 0
    capped: bool = False
    kept_all: bool = False
    sync: bool = False         # the sync refinement ran and was usable
    decisions: list[FenceDecision] = field(default_factory=list)


def _protected_access(fence_inst: Fence):
    """The access a placed fence is adjacent to: the load right before an
    ``Frm``, the store right after an ``Fww``.  None if the shape is not
    the placement shape (then the fence is kept)."""
    bb = fence_inst.parent
    insts = list(bb.instructions)
    pos = insts.index(fence_inst)
    if fence_inst.kind == "rm":
        if pos > 0 and isinstance(insts[pos - 1], Load):
            return insts[pos - 1]
    elif fence_inst.kind == "ww":
        if pos + 1 < len(insts) and isinstance(insts[pos + 1], Store):
            return insts[pos + 1]
    return None


def elide_redundant_fences(module: Module,
                           ma: Optional[ModuleAnalysis] = None,
                           result: Optional[ModuleDelayResult] = None,
                           sync: bool = False) -> DelaySetStats:
    """Remove every Frm/Fww the delay-set analysis proves redundant.

    Must run right after :func:`repro.fences.place_fences` (before the O2
    pipeline and fence merging), while every fence still sits adjacent to
    the access it protects.  Each elided fence stamps its access with a
    ``delayset_cert`` so ``fencecheck`` (and the oracle's audit rung) can
    distinguish a certified elision from a lost fence.

    With ``sync=True`` a second, lockset-refined analysis runs on top:
    fences the base delay sets require but whose every ordered conflict is
    lock-protected are elided under the ``sync`` tier
    (``fences.skipped_sync``).  A capped or uncovered sync analysis
    contributes nothing — fences keep their base verdict.
    """
    if result is None:
        result = analyze_module_fences(module, ma)
    result_sync: Optional[ModuleDelayResult] = None
    if sync and not result.keep_all:
        candidate = analyze_module_fences(module, ma, sync=True)
        if not candidate.keep_all:
            result_sync = candidate
    stats = DelaySetStats(capped=result.analysis.capped,
                          kept_all=result.keep_all,
                          delay_edges=len(result.analysis.delay_edges),
                          sync=result_sync is not None)
    if result_sync is not None:
        stats.sync_dropped_conflicts = result_sync.graph.sync_dropped
    emit = telemetry.remarks_enabled()
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            for idx, inst in enumerate(list(bb.instructions)):
                if not isinstance(inst, Fence):
                    continue
                stats.fences_before += 1
                where = FenceDecision(func.name, bb.name, idx, inst.kind,
                                      "kept", "", x86=x86_location(inst))
                if inst.kind == "sc":
                    stats.kept_sc += 1
                    continue  # Fsc encodes a source MFENCE: never elide
                if result.keep_all:
                    stats.kept_conservative += 1
                    where.reason = ("analysis budget exhausted"
                                    if result.analysis.capped
                                    else "uncovered delay edge; kept all")
                    stats.decisions.append(where)
                    continue
                if id(inst) not in result.seen_insts:
                    stats.kept_conservative += 1
                    where.reason = "unreachable from any thread root"
                    stats.decisions.append(where)
                    continue
                tier = ""
                if id(inst) not in result.required_insts:
                    tier = "delayset"
                    reason = ("covers no critical-cycle delay edge "
                              "(Shasha-Snir delay-set analysis)")
                elif (result_sync is not None
                        and id(inst) in result_sync.seen_insts
                        and id(inst) not in result_sync.required_insts):
                    tier = "sync"
                    reason = ("every conflict it orders is lock-protected "
                              "(sync-refined delay sets)")
                if not tier:
                    stats.required += 1
                    u_label, v_label = result.witnesses[id(inst)]
                    where.verdict = "required"
                    where.reason = (f"covers delay edge {u_label} -> "
                                    f"{v_label} (critical cycle)")
                    stats.decisions.append(where)
                    continue
                access = _protected_access(inst)
                if access is None:
                    stats.kept_conservative += 1
                    where.reason = "not adjacent to its access; kept"
                    stats.decisions.append(where)
                    continue
                # Redundant: remove, certify, log.
                certs = set(getattr(access, "delayset_cert", ()))
                certs.add(inst.kind)
                access.delayset_cert = frozenset(certs)
                access.placement = tuple(getattr(access, "placement", ())) + (
                    f"elided: F{inst.kind} for this access is redundant — "
                    + reason,)
                where.verdict = "redundant"
                where.reason = reason
                where.tier = tier
                stats.decisions.append(where)
                if emit:
                    telemetry.remark(
                        "delay-set", "fence-elided",
                        f"F{inst.kind} elided: {reason}",
                        function=func.name, block=bb.name,
                        instruction=f"fence.{inst.kind}",
                        x86=x86_location(inst) or "")
                inst.erase_from_parent()
                stats.elided += 1
                if tier == "sync":
                    stats.elided_sync += 1
    telemetry.count("fences.skipped_delayset",
                    stats.elided - stats.elided_sync)
    telemetry.count("fences.skipped_sync", stats.elided_sync)
    if stats.kept_all and emit:
        telemetry.remark(
            "delay-set", "analysis-capped",
            "delay-set analysis fell back to keeping every fence "
            + ("(budget exhausted)" if stats.capped
               else "(uncovered delay edge)"))
    return stats


def audit_module(module: Module,
                 ma: Optional[ModuleAnalysis] = None,
                 sync: bool = False) -> list[str]:
    """Re-derive the delay-set facts from scratch and check every
    cycle-freeness certificate: a certified access must not start an
    uncovered enforceable delay edge.  Returns violation strings (empty =
    every certificate is justified).  Intended for the placement-stage
    snapshot, where fences are still adjacent to their accesses.

    Pass ``sync=True`` when the module was elided under the sync tier —
    the audit then re-derives the lockset-refined graph, whose delay
    edges are a subset of the base analysis's."""
    result = analyze_module_fences(module, ma, sync=sync)
    violations: list[str] = []
    if result.analysis.capped:
        certified = any(
            getattr(inst, "delayset_cert", None)
            for func in module.functions.values()
            if not func.is_declaration
            for inst in func.instructions())
        if certified:
            violations.append(
                "delay-set audit: analysis budget exhausted but the module "
                "carries delayset_cert stamps")
        return violations
    for u_uid, v_uid in result.analysis.uncovered:
        u = result.graph.accesses[u_uid]
        v = result.graph.accesses[v_uid]
        violations.append(
            f"uncovered delay edge {u.label} -> {v.label}: no surviving "
            "fence orders a critical-cycle pair")
    return violations
