"""Intraprocedural Andersen-style points-to and escape analysis.

The analysis assigns every SSA value a *points-to set* of abstract memory
objects — one per ``alloca`` (kind ``"stack"``), one per module global
(kind ``"global"``), plus the :data:`UNKNOWN` singleton standing for heap,
caller and callee memory.  It is flow-insensitive: constraints from every
instruction are iterated chaotically until the sets stop growing.

Lifted code addresses the stack through integers (``ptrtoint`` of the
frame alloca, ``add``/``sub`` arithmetic, ``inttoptr`` back), so unlike a
textbook pointer analysis, provenance flows through *integer* operations
too: casts of every kind, binops, ``phi``/``select``.  ``ptrtoint`` is
therefore not an escape by itself — the integer still carries the object —
which is what lets the frame of a refined (or even raw lifted) leaf
function stay thread-local.

Escape happens when an object can become visible to another thread or to
code outside the function:

* a value carrying the object is passed to a call (unless the callee is
  ``readnone``) or returned;
* a value carrying it is stored into an object that is itself escaped
  (including all globals and UNKNOWN).

Escaped objects may be written by external code, so their contents include
UNKNOWN.  An access is *thread-local* exactly when its address carries
only non-escaped stack objects — the Lasagne §8 condition for eliding the
LIMM fences around it.

Entry point: :func:`analyze_function` → :class:`AliasInfo`.

**Interprocedural mode.**  When given a summary table (``summaries=``,
from :mod:`repro.analysis.summaries`), call sites whose callee has a
summary are applied precisely instead of escaping every argument: the
callee's parameter behaviour (escapes / stores / returns) is replayed
against the actual arguments' points-to sets, so an alloca handed to a
well-behaved callee stays thread-local.  With ``summary_mode=True`` the
solver additionally models the *formal parameters* of ``func`` itself as
first-class ``"param"`` objects (with a one-level ``param.*`` contents
placeholder) and records return-value provenance as tokens instead of
escaping it — a returned stack address only becomes visible to the
caller *after* every access in this function already executed, so it
cannot introduce a cross-thread race on those accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..lir import (
    GEP,
    Alloca,
    Argument,
    AtomicRMW,
    BinOp,
    Call,
    Cast,
    CmpXchg,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ExtractElement,
    Fence,
    Function,
    GlobalValue,
    InsertElement,
    Instruction,
    Load,
    Module,
    Phi,
    Ret,
    Select,
    Store,
    UndefValue,
    Value,
)
from ..profiler.workcounters import work

# ModRef summaries -----------------------------------------------------------

NO_MODREF = 0
REF = 1
MOD = 2
MOD_REF = 3


@dataclass(eq=False)
class MemObject:
    """One abstract memory object: a stack slot, a global, or UNKNOWN."""

    kind: str                      # "stack" | "global" | "param" | "unknown"
    name: str
    origin: Optional[Value] = None  # the Alloca / GlobalVariable, if any
    escaped: bool = False
    # What this object's storage may contain (objects reachable by a load).
    contents: set["MemObject"] = field(default_factory=set)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " escaped" if self.escaped else ""
        return f"<MemObject {self.kind}:{self.name}{tag}>"


# Values that never carry provenance: plain data constants.
_DATA_CONSTANTS = (ConstantInt, ConstantFloat, ConstantPointerNull, UndefValue)


class _Solver:
    """Chaotic-iteration constraint solver for one function."""

    def __init__(self, func: Function, module: Optional[Module],
                 summaries: Optional[dict] = None,
                 summary_mode: bool = False) -> None:
        self.func = func
        self.module = module
        self.summaries = summaries or {}
        self.summary_mode = summary_mode
        self.unknown = MemObject("unknown", "unknown", escaped=True)
        self.unknown.contents.add(self.unknown)
        self.objects: dict[int, MemObject] = {}   # id(origin value) -> object
        self.pts: dict[int, set[MemObject]] = {}  # id(value) -> points-to set
        self._values: dict[int, Value] = {}       # keep ids alive / reverse map
        self.known: set[int] = set()              # instructions seen by solve()
        self.solved = False
        self.changed = False
        # Summary mode: one "param" object per formal, plus a one-level
        # contents placeholder standing for whatever the caller's object
        # already holds (self-looped: deeper indirection folds into it).
        self.param_objects: dict[int, MemObject] = {}
        self.param_contents: dict[int, MemObject] = {}
        self.return_objs: set[MemObject] = set()
        if summary_mode:
            for i, arg in enumerate(func.arguments):
                label = arg.name or f"arg{i}"
                cont = MemObject("param", f"{label}.*")
                cont.contents.add(cont)
                param = MemObject("param", label, origin=arg)
                param.contents.add(cont)
                self.param_objects[i] = param
                self.param_contents[i] = cont

    # -- roots ---------------------------------------------------------

    def object_for(self, value: Value) -> MemObject:
        obj = self.objects.get(id(value))
        if obj is None:
            if isinstance(value, Alloca):
                obj = MemObject("stack", value.name or "alloca", origin=value)
            else:
                obj = MemObject("global", value.name or "global", origin=value,
                                escaped=True)
                obj.contents.add(self.unknown)
            self.objects[id(value)] = obj
        return obj

    def lookup(self, value: Value) -> set[MemObject]:
        """Points-to set of ``value``, seeding roots on first sight."""
        key = id(value)
        cached = self.pts.get(key)
        if cached is not None:
            return cached
        self._values[key] = value
        if (self.solved and isinstance(value, Instruction)
                and key not in self.known):
            # Created after the analysis ran (or foreign to this
            # function): assume the worst rather than "no provenance".
            seeded = {self.unknown}
        elif isinstance(value, Alloca):
            seeded = {self.object_for(value)}
        elif isinstance(value, GlobalValue):
            seeded = {self.object_for(value)}
        elif isinstance(value, _DATA_CONSTANTS):
            seeded = set()
        elif isinstance(value, Constant):
            # Address-like constant expression we do not model.
            seeded = {self.unknown}
        elif isinstance(value, Argument):
            if self.summary_mode and value.index in self.param_objects:
                seeded = {self.param_objects[value.index]}
            else:
                seeded = {self.unknown}
        elif isinstance(value, Instruction):
            # Results start empty and grow as transfer functions run.
            seeded = set()
        else:
            seeded = {self.unknown}
        self.pts[key] = seeded
        return seeded

    # -- lattice updates ----------------------------------------------

    def _include(self, dst: set[MemObject], extra: Iterable[MemObject]) -> None:
        for obj in extra:
            if obj not in dst:
                dst.add(obj)
                self.changed = True

    def _escape(self, objs: Iterable[MemObject]) -> None:
        stack = [o for o in objs if not o.escaped]
        while stack:
            obj = stack.pop()
            if obj.escaped:
                continue
            obj.escaped = True
            self.changed = True
            # External code can store arbitrary pointers into it ...
            obj.contents.add(self.unknown)
            # ... and read pointers out of it, leaking what it holds.
            stack.extend(o for o in obj.contents if not o.escaped)

    def _store_into(self, targets: set[MemObject],
                    stored: set[MemObject]) -> None:
        for obj in targets:
            self._include(obj.contents, stored)
            if obj.escaped:
                self._escape(stored)
            elif obj.kind == "param":
                # Stored into caller-visible memory: the caller (and via
                # it, other threads) can reach anything non-param we put
                # there while this function is still running.
                self._escape([o for o in stored if o.kind != "param"])

    def _load_from(self, sources: set[MemObject]) -> set[MemObject]:
        out: set[MemObject] = set()
        for obj in sources:
            out |= obj.contents
        return out

    # -- per-instruction transfer -------------------------------------

    def transfer(self, inst: Instruction) -> None:
        result = self.pts.setdefault(id(inst), set())
        self._values[id(inst)] = inst
        self.known.add(id(inst))
        if isinstance(inst, Alloca):
            self._include(result, {self.object_for(inst)})
        elif isinstance(inst, (Cast, GEP)):
            src = inst.value if isinstance(inst, Cast) else inst.pointer
            self._include(result, self.lookup(src))
        elif isinstance(inst, BinOp):
            self._include(result, self.lookup(inst.lhs))
            self._include(result, self.lookup(inst.rhs))
        elif isinstance(inst, Phi):
            for value, _block in inst.incoming():
                self._include(result, self.lookup(value))
        elif isinstance(inst, Select):
            self._include(result, self.lookup(inst.true_value))
            self._include(result, self.lookup(inst.false_value))
        elif isinstance(inst, (ExtractElement, InsertElement)):
            for op in inst.operands:
                self._include(result, self.lookup(op))
        elif isinstance(inst, Load):
            self._include(result, self._load_from(self.lookup(inst.pointer)))
        elif isinstance(inst, Store):
            self._store_into(self.lookup(inst.pointer),
                             self.lookup(inst.value))
        elif isinstance(inst, AtomicRMW):
            targets = self.lookup(inst.pointer)
            self._include(result, self._load_from(targets))
            self._store_into(targets, self.lookup(inst.value))
        elif isinstance(inst, CmpXchg):
            targets = self.lookup(inst.pointer)
            self._include(result, self._load_from(targets))
            self._store_into(targets, self.lookup(inst.new))
        elif isinstance(inst, Call):
            summary = self._call_summary(inst)
            if summary is not None:
                self._apply_summary(inst, summary, result)
            else:
                if not inst.is_readnone_callee():
                    for arg in inst.args:
                        self._escape(self.lookup(arg))
                self._include(result, {self.unknown})
        elif isinstance(inst, Ret):
            if inst.value is not None:
                if self.summary_mode:
                    # Recorded as a returns-token; a returned address only
                    # reaches the caller after every access here retired,
                    # so it does not escape for thread-locality purposes.
                    self._include(self.return_objs, self.lookup(inst.value))
                else:
                    self._escape(self.lookup(inst.value))
        # Fence / Br / ICmp / FCmp / Unreachable: no provenance, no escape.

    # -- interprocedural call handling --------------------------------

    def _call_summary(self, inst: Call):
        """The :class:`~repro.analysis.summaries.FunctionSummary` for a
        direct call to a defined, already-summarised callee — or, for a
        declared external, the loader catalog's mod-ref/escape summary
        (libc calls stay precise instead of escaping every argument) —
        else None."""
        callee = inst.callee
        if not isinstance(callee, Function):
            return None
        if callee.is_declaration:
            from ..loader.externs import catalog_summary
            return catalog_summary(callee.name.split("@", 1)[0])
        if not self.summaries:
            return None
        return self.summaries.get(callee.name)

    def _resolve_tokens(self, tokens,
                        argpts: list[set[MemObject]]) -> set[MemObject]:
        """Map a callee summary's provenance tokens onto this call site's
        actual argument points-to sets."""
        out: set[MemObject] = set()
        for tok in tokens:
            kind = tok[0]
            if kind == "param" and tok[1] < len(argpts):
                out |= argpts[tok[1]]
            elif kind == "contents" and tok[1] < len(argpts):
                for obj in argpts[tok[1]]:
                    out |= obj.contents
            else:
                out.add(self.unknown)
        return out

    def _apply_summary(self, inst: Call, summary,
                       result: set[MemObject]) -> None:
        argpts = [self.lookup(arg) for arg in inst.args]
        for i, pts in enumerate(argpts):
            if i >= summary.nparams:
                self._escape(pts)  # arity mismatch: stay conservative
                continue
            if summary.param_escapes[i]:
                self._escape(pts)
            elif summary.contents_escape[i]:
                for obj in pts:
                    self._escape(obj.contents)
            stored = summary.stores_into[i]
            if stored:
                self._store_into(set(pts),
                                 self._resolve_tokens(stored, argpts))
        self._include(result, self._resolve_tokens(summary.returns, argpts))

    def solve(self) -> None:
        insts = list(self.func.instructions())
        # Sets grow monotonically into a finite universe; a handful of
        # passes reaches the fixpoint even with loops in the use graph.
        rounds = 0
        while True:
            rounds += 1
            self.changed = False
            for inst in insts:
                self.transfer(inst)
            if not self.changed:
                break
        self.solved = True
        # Round count is order-independent (each round applies every
        # constraint in instruction order; unions commute), so these are
        # deterministic work tallies (repro.profiler).
        work("pointsto.rounds", rounds, function=self.func.name)
        work("pointsto.transfers", rounds * len(insts),
             function=self.func.name)


class AliasInfo:
    """Query interface over a solved points-to analysis of one function.

    ``points_to``/``is_thread_local`` answer per-value questions;
    ``may_alias`` and ``mod_ref`` serve the optimizer; ``call_may_access``
    tells whether a call can touch the memory behind a pointer.
    """

    def __init__(self, solver: _Solver) -> None:
        self._solver = solver
        self.func = solver.func
        self.unknown = solver.unknown

    # -- value-level queries ------------------------------------------

    def points_to(self, value: Value) -> frozenset[MemObject]:
        return frozenset(self._solver.lookup(value))

    def is_thread_local(self, value: Value) -> bool:
        """True when every object ``value`` may address is a non-escaped
        stack slot of this function — no other thread can see the access."""
        pts = self._solver.lookup(value)
        if not pts:
            return False
        return all(o.kind == "stack" and not o.escaped for o in pts)

    def escaped_objects(self) -> list[MemObject]:
        return [o for o in self._solver.objects.values() if o.escaped]

    def stack_objects(self) -> list[MemObject]:
        return [o for o in self._solver.objects.values() if o.kind == "stack"]

    # -- alias queries -------------------------------------------------

    def may_alias(self, a: Value, b: Value) -> bool:
        """May the pointers ``a`` and ``b`` address overlapping memory?

        UNKNOWN stands for memory whose provenance we lost — but never for
        a stack slot that provably did not escape, so UNKNOWN-carrying
        pointers still do not alias thread-local allocas.
        """
        if a is b:
            return True
        sa = self._solver.lookup(a)
        sb = self._solver.lookup(b)
        if not sa or not sb:
            return False  # null/undef: no storage to overlap
        return self._sets_may_overlap(sa, sb)

    def _opaque(self, obj: MemObject) -> bool:
        # Memory of unbounded provenance: UNKNOWN, or a caller-owned
        # parameter object (two params may name the same storage).
        return obj is self.unknown or obj.kind == "param"

    def _sets_may_overlap(self, sa: set[MemObject],
                          sb: set[MemObject]) -> bool:
        if sa & sb:
            return True
        if any(self._opaque(o) for o in sa):
            if any(o.escaped or self._opaque(o) for o in sb):
                return True
        if any(self._opaque(o) for o in sb):
            if any(o.escaped for o in sa):
                return True
        return False

    def alias(self, a: Value, b: Value) -> str:
        """Three-valued answer: ``"must"`` (identical SSA value),
        ``"may"`` or ``"no"``."""
        if a is b:
            return "must"
        return "may" if self.may_alias(a, b) else "no"

    def call_may_access(self, call: Call, pointer: Value) -> bool:
        """May executing ``call`` read or write the memory ``pointer``
        addresses?  Without a callee summary, callees reach escaped
        objects and UNKNOWN; with one, only the memory the summary says
        the callee touches (mod/ref'd parameters, escaped/global state)."""
        if call.is_readnone_callee():
            return False
        pts = self._solver.lookup(pointer)
        summary = self._solver._call_summary(call)
        if summary is None:
            return (any(o.escaped for o in pts)
                    or any(self._opaque(o) for o in pts))
        if summary.touches and (any(o.escaped for o in pts)
                                or any(self._opaque(o) for o in pts)):
            return True
        touched: set[MemObject] = set()
        for i, arg in enumerate(call.args):
            if i < summary.nparams and not summary.param_modref[i]:
                continue  # callee provably never dereferences this param
            touched |= self._contents_closure(self._solver.lookup(arg))
        return bool(touched) and self._sets_may_overlap(pts, touched)

    def _contents_closure(self, objs: set[MemObject]) -> set[MemObject]:
        out = set(objs)
        work = list(objs)
        while work:
            for inner in work.pop().contents:
                if inner not in out:
                    out.add(inner)
                    work.append(inner)
        return out

    def mod_ref(self, inst: Instruction, pointer: Value) -> int:
        """How ``inst`` may interact with the memory at ``pointer``:
        a bitmask of :data:`REF` and :data:`MOD`."""
        if isinstance(inst, Load):
            return REF if self.may_alias(inst.pointer, pointer) else NO_MODREF
        if isinstance(inst, Store):
            return MOD if self.may_alias(inst.pointer, pointer) else NO_MODREF
        if isinstance(inst, (AtomicRMW, CmpXchg)):
            return MOD_REF if self.may_alias(inst.pointer, pointer) else NO_MODREF
        if isinstance(inst, Call):
            return MOD_REF if self.call_may_access(inst, pointer) else NO_MODREF
        if isinstance(inst, Fence):
            return NO_MODREF
        return NO_MODREF

    # -- reporting -----------------------------------------------------

    def describe(self, value: Value) -> str:
        pts = sorted(self._solver.lookup(value),
                     key=lambda o: (o.kind, o.name))
        names = ", ".join(
            f"{o.kind}:{o.name}" + ("!" if o.escaped else "") for o in pts)
        local = "thread-local" if self.is_thread_local(value) else "shared"
        return f"{{{names or 'empty'}}} [{local}]"

    def iter_tracked(self) -> Iterator[tuple[Value, frozenset[MemObject]]]:
        for key, value in self._solver._values.items():
            yield value, frozenset(self._solver.pts.get(key, set()))


def analyze_function(func: Function,
                     module: Optional[Module] = None,
                     summaries: Optional[dict] = None,
                     summary_mode: bool = False) -> AliasInfo:
    """Run the points-to/escape analysis on ``func`` and return the
    :class:`AliasInfo` query interface (empty for declarations).

    ``summaries`` (name → ``FunctionSummary``) enables precise handling
    of direct calls to summarised callees; ``summary_mode`` additionally
    models formal parameters as ``param`` objects and records return
    tokens — the configuration :func:`repro.analysis.summaries.analyze_module`
    uses.  The default keeps the PR-3 intraprocedural semantics.
    """
    solver = _Solver(func, module, summaries=summaries,
                     summary_mode=summary_mode)
    if not func.is_declaration:
        solver.solve()
    return AliasInfo(solver)
