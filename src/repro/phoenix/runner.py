"""Build/run helpers for the Phoenix evaluation (the §9 harness)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..core.pipeline import CONFIGS, Lasagne
from ..minicc.codegen_x86 import compile_to_x86
from ..x86.emulator import X86Emulator
from .programs import PhoenixProgram, all_programs


@dataclass
class ProgramMetrics:
    program: str
    config: str
    result: int
    cycles: int
    instructions_retired: int
    fences: int
    fences_naive: int
    arm_instructions: int
    lir_instructions: int
    pointer_casts_before: int
    pointer_casts_after: int


@dataclass
class EvaluationRow:
    program: str
    metrics: dict[str, ProgramMetrics] = field(default_factory=dict)

    def normalized_runtime(self, config: str) -> float:
        base = self.metrics["native"].cycles
        return self.metrics[config].cycles / base

    def fence_reduction(self, config: str) -> float:
        """% of fences removed relative to the naive-placement count."""
        naive = self.metrics["lifted"].fences
        if naive == 0:
            return 0.0
        return 100.0 * (naive - self.metrics[config].fences) / naive

    def cast_reduction(self) -> float:
        before = self.metrics["ppopt"].pointer_casts_before
        after = self.metrics["ppopt"].pointer_casts_after
        if before == 0:
            return 0.0
        return 100.0 * (before - after) / before

    def code_increase(self, config: str) -> float:
        """% LIR code-size increase over native (Fig. 16's metric)."""
        base = self.metrics["native"].lir_instructions
        return 100.0 * (self.metrics[config].lir_instructions - base) / base


def evaluate_program(
    program: PhoenixProgram,
    configs: Optional[list[str]] = None,
    check_x86: bool = True,
    verify: bool = True,
) -> EvaluationRow:
    """Build and run every configuration of one kernel; assert they agree."""
    lasagne = Lasagne(verify=verify)
    row = EvaluationRow(program.name)
    expected: Optional[int] = None
    expected_output: Optional[list[str]] = None

    if check_x86:
        obj = compile_to_x86(program.source)
        emu = X86Emulator(obj)
        expected = emu.run()
        expected_output = emu.output

    for config in configs or CONFIGS:
        with telemetry.span(f"{program.name}:{config}", category="program",
                            program=program.name, config=config):
            built = lasagne.build(program.source, config)
            run = Lasagne.run(built)
        if expected is None:
            expected = run.result
            expected_output = run.output
        if run.result != expected or run.output != expected_output:
            raise AssertionError(
                f"{program.name}/{config}: result {run.result} != {expected} "
                f"(output {run.output} vs {expected_output})"
            )
        row.metrics[config] = ProgramMetrics(
            program=program.name,
            config=config,
            result=run.result,
            cycles=run.cycles,
            instructions_retired=run.instructions_retired,
            fences=built.fences,
            fences_naive=built.fences_naive,
            arm_instructions=built.arm_instructions,
            lir_instructions=built.lir_instructions,
            pointer_casts_before=built.pointer_casts_before,
            pointer_casts_after=built.pointer_casts_after,
        )
    return row


def evaluate_suite(
    size: Optional[dict[str, dict[str, int]]] = None,
    configs: Optional[list[str]] = None,
    verify: bool = True,
) -> list[EvaluationRow]:
    return [
        evaluate_program(p, configs=configs, verify=verify)
        for p in all_programs(size)
    ]


def geomean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= max(v, 1e-12)
    return product ** (1.0 / len(values))
