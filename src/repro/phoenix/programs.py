"""The Phoenix multi-threaded benchmark kernels, in mini-C (Table 1).

Each program mirrors its Phoenix counterpart's computational pattern:
chunked data-parallel workers over shared global arrays, spawned and joined
from ``main``, with per-thread partial results merged at the end.  Inputs
are generated in-program by a deterministic LCG, so every configuration
(native / lifted / opt / popt / ppopt) of the same program must produce the
identical checksum — the differential-correctness property the test-suite
checks.

``SIZE_SMALL`` variants keep the emulated runs fast; ``scale()`` lets the
benchmarks pick other sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

NTHREADS = 4


@dataclass(frozen=True)
class PhoenixProgram:
    name: str
    abbrev: str
    source: str

    def loc(self) -> int:
        """Non-blank, non-comment source lines (Table 1's LoC metric)."""
        count = 0
        for raw in self.source.splitlines():
            stripped = raw.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count

    def function_count(self) -> int:
        from ..minicc.parser import parse

        return len(parse(self.source).functions)


HISTOGRAM = PhoenixProgram(
    name="histogram",
    abbrev="HT",
    source="""
// histogram: bin 8-bit samples, one private 256-bin histogram per thread,
// merged in main (Phoenix: histogram over bitmap channels).
int seed = 1;
char img[{N}];
int hist[1024];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int init_data() {
  for (int i = 0; i < {N}; i = i + 1) {
    img[i] = (char)(lcg() % 256);
  }
  return 0;
}

int worker(int t) {
  int chunk = {N} / 4;
  int base = t * chunk;
  for (int i = 0; i < chunk; i = i + 1) {
    int v = img[base + i];
    hist[t * 256 + v] = hist[t * 256 + v] + 1;
  }
  return 0;
}

int main() {
  init_data();
  for (int t = 0; t < 4; t = t + 1) {
    tids[t] = spawn(worker, t);
  }
  for (int t = 0; t < 4; t = t + 1) {
    join(tids[t]);
  }
  int checksum = 0;
  for (int v = 0; v < 256; v = v + 1) {
    int total = hist[v] + hist[256 + v] + hist[512 + v] + hist[768 + v];
    checksum = checksum + v * total;
  }
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

KMEANS = PhoenixProgram(
    name="kmeans",
    abbrev="KM",
    source="""
// kmeans: 2-D points, 4 centers, parallel assignment step with per-thread
// partial sums, sequential center update (Phoenix: kmeans).
int seed = 7;
double px[{N}];
double py[{N}];
double cx[4];
double cy[4];
int assign[{N}];
double sumx[16];
double sumy[16];
int cnt[16];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int init_points() {
  for (int i = 0; i < {N}; i = i + 1) {
    px[i] = (double)(lcg() % 1000) / 10.0;
    py[i] = (double)(lcg() % 1000) / 10.0;
  }
  for (int c = 0; c < 4; c = c + 1) {
    cx[c] = (double)(25 * c);
    cy[c] = (double)(100 - 25 * c);
  }
  return 0;
}

double dist2(double x1, double y1, double x2, double y2) {
  double dx = x1 - x2;
  double dy = y1 - y2;
  return dx * dx + dy * dy;
}

int nearest(double x, double y) {
  int best = 0;
  double bestd = dist2(x, y, cx[0], cy[0]);
  for (int c = 1; c < 4; c = c + 1) {
    double d = dist2(x, y, cx[c], cy[c]);
    if (d < bestd) {
      bestd = d;
      best = c;
    }
  }
  return best;
}

int assign_worker(int t) {
  int chunk = {N} / 4;
  int base = t * chunk;
  for (int i = base; i < base + chunk; i = i + 1) {
    int c = nearest(px[i], py[i]);
    assign[i] = c;
    sumx[t * 4 + c] = sumx[t * 4 + c] + px[i];
    sumy[t * 4 + c] = sumy[t * 4 + c] + py[i];
    cnt[t * 4 + c] = cnt[t * 4 + c] + 1;
  }
  return 0;
}

int update_centers() {
  for (int c = 0; c < 4; c = c + 1) {
    double sx = 0.0;
    double sy = 0.0;
    int n = 0;
    for (int t = 0; t < 4; t = t + 1) {
      sx = sx + sumx[t * 4 + c];
      sy = sy + sumy[t * 4 + c];
      n = n + cnt[t * 4 + c];
      sumx[t * 4 + c] = 0.0;
      sumy[t * 4 + c] = 0.0;
      cnt[t * 4 + c] = 0;
    }
    if (n > 0) {
      cx[c] = sx / (double)n;
      cy[c] = sy / (double)n;
    }
  }
  return 0;
}

int main() {
  init_points();
  for (int iter = 0; iter < 3; iter = iter + 1) {
    for (int t = 0; t < 4; t = t + 1) {
      tids[t] = spawn(assign_worker, t);
    }
    for (int t = 0; t < 4; t = t + 1) {
      join(tids[t]);
    }
    update_centers();
  }
  int checksum = 0;
  for (int c = 0; c < 4; c = c + 1) {
    checksum = checksum + (int)(cx[c] * 100.0) + (int)(cy[c] * 100.0);
  }
  for (int i = 0; i < {N}; i = i + 1) {
    checksum = checksum + assign[i];
  }
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

LINEAR_REGRESSION = PhoenixProgram(
    name="linear_regression",
    abbrev="LR",
    source="""
// linear_regression: least-squares fit over (x, y) samples; workers produce
// per-thread partial sums (Phoenix: linear_regression).
int seed = 3;
int xs[{N}];
int ys[{N}];
int psx[4];
int psy[4];
int psxx[4];
int psxy[4];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int worker(int t) {
  int chunk = {N} / 4;
  int base = t * chunk;
  int sx = 0;
  int sy = 0;
  int sxx = 0;
  int sxy = 0;
  for (int i = base; i < base + chunk; i = i + 1) {
    int x = xs[i];
    int y = ys[i];
    sx = sx + x;
    sy = sy + y;
    sxx = sxx + x * x;
    sxy = sxy + x * y;
  }
  psx[t] = sx;
  psy[t] = sy;
  psxx[t] = sxx;
  psxy[t] = sxy;
  return 0;
}

int main() {
  for (int i = 0; i < {N}; i = i + 1) {
    xs[i] = lcg() % 100;
    ys[i] = 3 * xs[i] + 7 + (lcg() % 5);
  }
  for (int t = 0; t < 4; t = t + 1) {
    tids[t] = spawn(worker, t);
  }
  for (int t = 0; t < 4; t = t + 1) {
    join(tids[t]);
  }
  int sx = psx[0] + psx[1] + psx[2] + psx[3];
  int sy = psy[0] + psy[1] + psy[2] + psy[3];
  int sxx = psxx[0] + psxx[1] + psxx[2] + psxx[3];
  int sxy = psxy[0] + psxy[1] + psxy[2] + psxy[3];
  double n = (double){N};
  double slope = ((double)sxy * n - (double)sx * (double)sy)
               / ((double)sxx * n - (double)sx * (double)sx);
  double intercept = ((double)sy - slope * (double)sx) / n;
  print_f(slope);
  print_f(intercept);
  int checksum = (int)(slope * 1000.0) + (int)(intercept * 1000.0) + sxy;
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

MATRIX_MULTIPLY = PhoenixProgram(
    name="matrix_multiply",
    abbrev="MM",
    source="""
// matrix_multiply: C = A * B over {DIM}x{DIM} integer matrices; workers own
// row bands (Phoenix: matrix_multiply).
int seed = 11;
int ma[{NELEM}];
int mb[{NELEM}];
int mc[{NELEM}];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int init_matrices() {
  for (int i = 0; i < {NELEM}; i = i + 1) {
    ma[i] = lcg() % 10;
    mb[i] = lcg() % 10;
  }
  return 0;
}

int worker(int t) {
  int rows = {DIM} / 4;
  int r0 = t * rows;
  for (int i = r0; i < r0 + rows; i = i + 1) {
    for (int j = 0; j < {DIM}; j = j + 1) {
      int acc = 0;
      for (int k = 0; k < {DIM}; k = k + 1) {
        acc = acc + ma[i * {DIM} + k] * mb[k * {DIM} + j];
      }
      mc[i * {DIM} + j] = acc;
    }
  }
  return 0;
}

int main() {
  init_matrices();
  for (int t = 0; t < 4; t = t + 1) {
    tids[t] = spawn(worker, t);
  }
  for (int t = 0; t < 4; t = t + 1) {
    join(tids[t]);
  }
  int checksum = 0;
  for (int i = 0; i < {NELEM}; i = i + 1) {
    checksum = checksum + mc[i] * (i & 15);
  }
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

STRING_MATCH = PhoenixProgram(
    name="string_match",
    abbrev="SM",
    source="""
// string_match: scan a text for occurrences of four keys; each worker
// scans the whole text for one key and hands its tally back through the
// thread return value (Phoenix: string_match, partitioned by key).  The
// per-worker counter lives in a local whose address crosses into
// add_into(), so the intraprocedural escape analysis must give it up —
// only the interprocedural callee summaries prove it stays thread-local,
// exercising the summary-based fence-elision tier.
int seed = 17;
char text[{N}];
int found[4];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int init_text() {
  for (int i = 0; i < {N}; i = i + 1) {
    int r = lcg() % 8;
    if (r < 6) {
      text[i] = (char)(97 + lcg() % 6);
    } else {
      text[i] = ' ';
    }
  }
  return 0;
}

int match_at(char *hay, char *needle) {
  int j = 0;
  while (needle[j] != 0) {
    if (hay[j] != needle[j]) {
      return 0;
    }
    j = j + 1;
  }
  return 1;
}

int add_into(int *acc, int v) {
  *acc = *acc + v;
  return 0;
}

int worker(int t) {
  char *key = "abc";
  if (t == 1) { key = "fad"; }
  if (t == 2) { key = "cab"; }
  if (t == 3) { key = "dec"; }
  int matches = 0;
  for (int i = 0; i < {N} - 4; i = i + 1) {
    if (match_at(&text[i], key)) {
      add_into(&matches, 1);
    }
  }
  return matches;
}

int main() {
  init_text();
  for (int t = 0; t < 4; t = t + 1) {
    tids[t] = spawn(worker, t);
  }
  for (int t = 0; t < 4; t = t + 1) {
    found[t] = join(tids[t]);
  }
  int checksum = 0;
  for (int k = 0; k < 4; k = k + 1) {
    print_i(found[k]);
    checksum = checksum + (k + 1) * found[k];
  }
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

_TEMPLATES = {
    "histogram": HISTOGRAM,
    "kmeans": KMEANS,
    "linear_regression": LINEAR_REGRESSION,
    "matrix_multiply": MATRIX_MULTIPLY,
    "string_match": STRING_MATCH,
}

# Default sizes keep emulated runs fast while giving workers real loops.
SIZE_SMALL = {
    "histogram": {"N": 2048},
    "kmeans": {"N": 48},
    "linear_regression": {"N": 256},
    "matrix_multiply": {"DIM": 12, "NELEM": 144},
    "string_match": {"N": 1024},
}

SIZE_TINY = {
    "histogram": {"N": 256},
    "kmeans": {"N": 16},
    "linear_regression": {"N": 64},
    "matrix_multiply": {"DIM": 8, "NELEM": 64},
    "string_match": {"N": 256},
}


def scale(name: str, params: dict[str, int] | None = None) -> PhoenixProgram:
    """Instantiate a kernel template with concrete sizes."""
    template = _TEMPLATES[name]
    values = dict(SIZE_SMALL[name])
    if params:
        values.update(params)
    source = template.source
    for key, val in values.items():
        source = source.replace("{" + key + "}", str(val))
    return PhoenixProgram(template.name, template.abbrev, source)


def all_programs(
    size: dict[str, dict[str, int]] | None = None,
    include_extensions: bool = False,
) -> list[PhoenixProgram]:
    """The paper's five kernels; ``include_extensions`` adds word_count."""
    sizes = size or SIZE_SMALL
    names = PROGRAM_NAMES if include_extensions else PAPER_PROGRAM_NAMES
    return [scale(name, sizes.get(name)) for name in names]


PROGRAM_NAMES = list(_TEMPLATES)


# ---- extension kernel (beyond the paper's five) -----------------------------

WORD_COUNT = PhoenixProgram(
    name="word_count",
    abbrev="WC",
    source="""
// word_count: count word occurrences by hash bucket; workers scan text
// chunks and merge per-thread bucket counts (Phoenix: word_count).  This
// kernel is an extension: the paper had to omit it because mctoll mislifted
// it; our lifter handles it.
int seed = 23;
char text[{N}];
int counts[64];
int tids[4];

int lcg() {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return seed;
}

int init_text() {
  for (int i = 0; i < {N}; i++) {
    int r = lcg() % 6;
    if (r < 5) {
      text[i] = (char)(97 + lcg() % 5);
    } else {
      text[i] = ' ';
    }
  }
  text[{N} - 1] = ' ';
  return 0;
}

int hash_word(char *start, int len) {
  int h = 0;
  for (int i = 0; i < len; i++) {
    h = (h * 31 + start[i]) & 1048575;
  }
  return h % 16;
}

int worker(int t) {
  int chunk = {N} / 4;
  int base = t * chunk;
  int limit = base + chunk;
  int i = base;
  // Skip a partial word at the chunk head (the previous chunk owns it).
  if (t > 0) {
    while (i < limit && text[i] != ' ') { i++; }
  }
  while (i < limit) {
    while (i < limit && text[i] == ' ') { i++; }
    int start = i;
    while (i < {N} && text[i] != ' ') { i++; }
    if (i > start) {
      int bucket = hash_word(&text[start], i - start);
      counts[t * 16 + bucket] += 1;
    }
  }
  return 0;
}

int main() {
  init_text();
  for (int t = 0; t < 4; t++) { tids[t] = spawn(worker, t); }
  for (int t = 0; t < 4; t++) { join(tids[t]); }
  int checksum = 0;
  int total = 0;
  for (int b = 0; b < 16; b++) {
    int n = counts[b] + counts[16 + b] + counts[32 + b] + counts[48 + b];
    total += n;
    checksum += (b + 1) * n;
  }
  print_i(total);
  print_i(checksum);
  return checksum & 1073741823;
}
""",
)

_TEMPLATES["word_count"] = WORD_COUNT
SIZE_SMALL["word_count"] = {"N": 1024}
SIZE_TINY["word_count"] = {"N": 256}

# The paper's Table 1 suite (used by the figure benchmarks) stays the five
# original kernels; word_count is an extension exercised by the test-suite.
PAPER_PROGRAM_NAMES = [n for n in PROGRAM_NAMES]
PROGRAM_NAMES = list(_TEMPLATES)
