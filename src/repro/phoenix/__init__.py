"""Phoenix multi-threaded benchmark kernels and evaluation harness."""

from .programs import (
    HISTOGRAM,
    KMEANS,
    LINEAR_REGRESSION,
    MATRIX_MULTIPLY,
    PROGRAM_NAMES,
    SIZE_SMALL,
    SIZE_TINY,
    STRING_MATCH,
    PhoenixProgram,
    all_programs,
    scale,
)
from .runner import (
    EvaluationRow,
    ProgramMetrics,
    evaluate_program,
    evaluate_suite,
    geomean,
)

__all__ = [
    "HISTOGRAM", "KMEANS", "LINEAR_REGRESSION", "MATRIX_MULTIPLY",
    "PROGRAM_NAMES", "SIZE_SMALL", "SIZE_TINY", "STRING_MATCH",
    "PhoenixProgram", "all_programs", "scale",
    "EvaluationRow", "ProgramMetrics", "evaluate_program", "evaluate_suite",
    "geomean",
]
