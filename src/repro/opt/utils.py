"""Shared utilities for the optimization passes."""

from __future__ import annotations

from ..lir import Function, Instruction, Load, Phi, UndefValue


def reachable_blocks(func: Function) -> set[int]:
    seen: set[int] = set()
    stack = [func.entry]
    seen.add(id(func.entry))
    while stack:
        bb = stack.pop()
        for succ in bb.successors():
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append(succ)
    return seen


def remove_unreachable_blocks(func: Function) -> bool:
    """Delete blocks not reachable from the entry.  Returns True on change."""
    live = reachable_blocks(func)
    dead = [bb for bb in func.blocks if id(bb) not in live]
    if not dead:
        return False
    dead_ids = {id(bb) for bb in dead}
    # Remove phi incomings that flow from dead blocks.
    for bb in func.blocks:
        if id(bb) in dead_ids:
            continue
        for phi in bb.phis():
            for pred in list(phi.incoming_blocks):
                if id(pred) in dead_ids:
                    phi.remove_incoming(pred)
    for bb in dead:
        for inst in list(bb.instructions):
            inst.replace_all_uses_with(UndefValue(inst.type))
            inst.erase_from_parent()
        func.remove_block(bb)
    return True


def erase_if_trivially_dead(inst: Instruction) -> bool:
    """Erase an instruction with no users and no side effects."""
    if inst.users:
        return False
    if inst.has_side_effects() or inst.is_terminator:
        return False
    if isinstance(inst, Load) and inst.ordering != "na":
        return False
    inst.erase_from_parent()
    return True


def simplify_trivial_phis(func: Function) -> bool:
    """Replace phis whose incomings are all the same value (or self)."""
    changed = False
    progress = True
    while progress:
        progress = False
        for bb in func.blocks:
            for phi in list(bb.phis()):
                distinct = {
                    id(v) for v in phi.operands if v is not phi
                }
                if len(distinct) == 1:
                    value = next(v for v in phi.operands if v is not phi)
                    phi.replace_all_uses_with(value)
                    phi.erase_from_parent()
                    changed = progress = True
                elif len(distinct) == 0:
                    phi.replace_all_uses_with(UndefValue(phi.type))
                    phi.erase_from_parent()
                    changed = progress = True
    return changed


def instruction_count(func: Function) -> int:
    return func.instruction_count()


def is_pure(inst: Instruction) -> bool:
    """No memory access, no side effect, no control flow."""
    return not (
        inst.has_side_effects()
        or inst.accesses_memory()
        or inst.is_terminator
        or isinstance(inst, Phi)
    )


def may_write(inst: Instruction) -> bool:
    return inst.may_write_memory()


def may_read(inst: Instruction) -> bool:
    return inst.may_read_memory()
