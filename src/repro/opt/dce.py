"""dce / adce: dead-code elimination.

``dce`` iteratively deletes unused pure instructions (the classic
worklist).  ``adce`` is the aggressive variant: it additionally removes
non-atomic stores to allocas that are never loaded (dead register/flag
slots left over from lifting) and then re-runs plain DCE — mirroring how
LLVM's ADCE removes computation chains plain DCE keeps alive through dead
stores.
"""

from __future__ import annotations

from ..lir import Alloca, Function, Load, Store
from .utils import erase_if_trivially_dead


def run_dce(func: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for bb in func.blocks:
            for inst in reversed(list(bb.instructions)):
                if erase_if_trivially_dead(inst):
                    progress = True
                    changed = True
    return changed


def _dead_alloca_stores(func: Function) -> bool:
    changed = False
    for bb in func.blocks:
        for inst in list(bb.instructions):
            if not isinstance(inst, Alloca):
                continue
            users = list(inst.users)
            loads = [u for u in users if isinstance(u, Load)]
            escapes = [
                u
                for u in users
                if not isinstance(u, (Load, Store))
                or (isinstance(u, Store) and u.value is inst)
                or (isinstance(u, (Load, Store)) and u.ordering != "na")
            ]
            if loads or escapes:
                continue
            for u in users:
                u.erase_from_parent()
            inst.erase_from_parent()
            changed = True
    return changed


def run_adce(func: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = run_dce(func)
        progress |= _dead_alloca_stores(func)
        changed |= progress
    return changed
