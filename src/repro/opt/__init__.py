"""LIMM-aware optimizer: LLVM-style passes over LIR."""

from .dce import run_adce, run_dce
from .dse import run_dse
from .gvn import run_gvn
from .inline import run_inline
from .instcombine import run_instcombine
from .licm import run_licm
from .mem2reg import run_mem2reg
from .pass_manager import (
    FUNCTION_PASSES,
    MODULE_PASSES,
    STANDARD_PIPELINE,
    PassManager,
    PassRecord,
    PassStats,
    optimize_module,
)
from .reassociate import run_reassociate
from .sccp import run_ipsccp, run_sccp
from .simplifycfg import run_simplifycfg
from .sroa import run_sroa
from .unroll import run_unroll
from .utils import remove_unreachable_blocks, simplify_trivial_phis

__all__ = [
    "run_adce", "run_dce", "run_dse", "run_gvn", "run_instcombine",
    "run_inline", "run_licm", "run_mem2reg", "run_reassociate", "run_ipsccp", "run_sccp",
    "run_simplifycfg", "run_sroa", "run_unroll",
    "FUNCTION_PASSES", "MODULE_PASSES", "STANDARD_PIPELINE",
    "PassManager", "PassRecord", "PassStats", "optimize_module",
    "remove_unreachable_blocks", "simplify_trivial_phis",
]
