"""Function inlining.

Replaces calls to small, non-recursive functions with a clone of the callee
body.  Not part of the standard pipeline (the paper's measured configuration
keeps functions separate); exposed as the ``inline`` pass for the ablation
benches and for users who want whole-program optimization.
"""

from __future__ import annotations

from typing import Optional

from ..lir import (
    Alloca,
    BasicBlock,
    Br,
    Call,
    Function,
    Module,
    Phi,
    Ret,
    UndefValue,
    Value,
)
from ..lir.clone import clone_instruction
from .utils import remove_unreachable_blocks, simplify_trivial_phis

DEFAULT_THRESHOLD = 60  # callee instruction budget


def _is_recursive(func: Function, seen: Optional[set[str]] = None) -> bool:
    seen = seen or set()
    if func.name in seen:
        return True
    seen = seen | {func.name}
    for inst in func.instructions():
        if isinstance(inst, Call) and isinstance(inst.callee, Function):
            callee = inst.callee
            if callee.name == func.name:
                return True
            if not callee.is_declaration and _is_recursive(callee, seen):
                return True
    return False


def _inline_call(caller: Function, call: Call) -> None:
    callee: Function = call.callee  # type: ignore[assignment]
    block = call.parent
    assert block is not None

    # 1. Split the caller block after the call.
    idx = block.instructions.index(call)
    continuation = BasicBlock(caller.next_name("inlined_cont"))
    caller.blocks.insert(caller.blocks.index(block) + 1, continuation)
    continuation.parent = caller
    tail = block.instructions[idx + 1:]
    del block.instructions[idx + 1:]
    for inst in tail:
        inst.parent = None
        continuation.append(inst)
    # Successor phis must re-route their incoming edge to the continuation.
    for succ in continuation.successors():
        for phi in succ.phis():
            for i, b in enumerate(phi.incoming_blocks):
                if b is block:
                    phi.incoming_blocks[i] = continuation

    # 2. Clone callee blocks (empty shells first, for branch targets).
    block_map: dict[int, BasicBlock] = {}
    for cb in callee.blocks:
        nb = BasicBlock(caller.next_name(f"inl_{callee.name}"))
        caller.blocks.insert(caller.blocks.index(continuation), nb)
        nb.parent = caller
        block_map[id(cb)] = nb

    value_map: dict[int, Value] = {}
    for param, arg in zip(callee.arguments, call.args):
        value_map[id(param)] = arg

    def lookup(v: Value) -> Value:
        return value_map.get(id(v), v)

    # 3. Clone instructions; collect returns and phis for patching.
    returns: list[tuple[BasicBlock, Optional[Value]]] = []  # cloned block, value ref
    phis_to_patch: list[tuple[Phi, Phi]] = []
    entry_allocas: list[Alloca] = []
    for cb in callee.blocks:
        nb = block_map[id(cb)]
        for inst in cb.instructions:
            if isinstance(inst, Ret):
                # Record with the *original* value; resolved after cloning.
                returns.append((nb, inst.value))
                continue
            cloned = clone_instruction(inst, lookup, block_map)
            value_map[id(inst)] = cloned
            if isinstance(inst, Phi):
                phis_to_patch.append((inst, cloned))
            if isinstance(cloned, Alloca):
                entry_allocas.append(cloned)
                continue  # placed in the caller entry below
            nb.append(cloned)
    for original, cloned in phis_to_patch:
        for value, pred in original.incoming():
            cloned.add_incoming(lookup(value), block_map[id(pred)])
    # Allocas hoist to the caller's entry so loops around the call site do
    # not repeatedly grow the frame.
    entry = caller.entry
    for alloca in reversed(entry_allocas):
        entry.instructions.insert(0, alloca)
        alloca.parent = entry

    # 4. Wire control flow: call site → cloned entry; returns → continuation.
    # The wiring branches (and the result phi) blame the call site.
    entry_br = Br(None, block_map[id(callee.entry)])
    entry_br.origins = call.origins
    block.append(entry_br)
    result_phi: Optional[Phi] = None
    if not call.type.is_void:
        result_phi = Phi(call.type, caller.next_name("inlret"))
        result_phi.origins = call.origins
        continuation.instructions.insert(0, result_phi)
        result_phi.parent = continuation
    for nb, original_value in returns:
        ret_br = Br(None, continuation)
        ret_br.origins = call.origins
        nb.append(ret_br)
        if result_phi is not None:
            value = (
                lookup(original_value)
                if original_value is not None
                else UndefValue(call.type)
            )
            result_phi.add_incoming(value, nb)

    # 5. Replace the call's value and remove it.
    if result_phi is not None:
        call.replace_all_uses_with(result_phi)
    call.erase_from_parent()
    simplify_trivial_phis(caller)


def run_inline(
    module: Module, threshold: int = DEFAULT_THRESHOLD, budget: int = 100
) -> bool:
    """Inline small non-recursive callees; returns True on change."""
    changed = False
    work = True
    while work and budget > 0:
        work = False
        for caller in module.functions.values():
            if caller.is_declaration:
                continue
            for bb in list(caller.blocks):
                for inst in list(bb.instructions):
                    if not isinstance(inst, Call):
                        continue
                    callee = inst.callee
                    if not isinstance(callee, Function) or callee.is_declaration:
                        continue
                    if callee is caller or _is_recursive(callee):
                        continue
                    if callee.instruction_count() > threshold:
                        continue
                    _inline_call(caller, inst)
                    remove_unreachable_blocks(caller)
                    changed = True
                    work = True
                    budget -= 1
                    break  # block structure changed; rescan the function
                else:
                    continue
                break
    return changed
