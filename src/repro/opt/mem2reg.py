"""mem2reg: promote scalar allocas to SSA registers.

The classic SSA-construction pass (phi placement on dominance frontiers +
renaming).  This is where lifted code sheds its register-slot indirection —
every ``%rax_slot``-style alloca disappears — which is why it is among the
most impactful passes in the paper's Figure 17.

An alloca is promotable when it has scalar type and every use is a direct
non-atomic ``load`` or a ``store`` of the full value (no escapes via
``ptrtoint``, ``bitcast``, calls, geps...).
"""

from __future__ import annotations

from ..lir import (
    Alloca,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    Function,
    Load,
    Phi,
    Store,
    UndefValue,
)
from ..lir.dominators import DominatorTree
from ..lir.types import FloatType, IntType, PointerType
from .utils import remove_unreachable_blocks, simplify_trivial_phis


def _promotable(alloca: Alloca) -> bool:
    if alloca.allocated_type.is_array or alloca.allocated_type.is_vector:
        return False
    for user in alloca.users:
        if isinstance(user, Load):
            if user.ordering != "na" or user.pointer is not alloca:
                return False
        elif isinstance(user, Store):
            if (
                user.ordering != "na"
                or user.pointer is not alloca
                or user.value is alloca
            ):
                return False
        else:
            return False
    return True


def run_mem2reg(func: Function) -> bool:
    remove_unreachable_blocks(func)
    allocas = [
        inst
        for bb in func.blocks
        for inst in bb.instructions
        if isinstance(inst, Alloca) and _promotable(inst)
    ]
    if not allocas:
        return False
    dt = DominatorTree(func)
    df = dt.dominance_frontier()
    blocks_by_id = {id(bb): bb for bb in func.blocks}

    phi_for: dict[tuple[int, int], Phi] = {}  # (alloca, block) -> phi
    for alloca in allocas:
        def_blocks = {
            id(u.parent)
            for u in alloca.users
            if isinstance(u, Store) and u.parent is not None
        }
        work = list(def_blocks)
        placed: set[int] = set()
        while work:
            bid = work.pop()
            for fid in df.get(bid, ()):
                if fid in placed:
                    continue
                placed.add(fid)
                bb = blocks_by_id[fid]
                phi = Phi(alloca.allocated_type, f"{alloca.name}_phi")
                bb.instructions.insert(0, phi)
                phi.parent = bb
                phi_for[(id(alloca), fid)] = phi
                if fid not in def_blocks:
                    work.append(fid)

    # Renaming walk over the dominator tree.
    alloca_ids = {id(a): a for a in allocas}
    children: dict[int, list] = {id(bb): [] for bb in func.blocks}
    for bb in func.blocks:
        idom = dt.immediate_dominator(bb)
        if idom is not None and bb is not func.entry:
            children[id(idom)].append(bb)

    def undef(alloca: Alloca):
        # Reads of never-written slots yield definite zeros, not undef:
        # alloca memory is zero-initialized in every executable semantics of
        # this repository, and Lasagne assumes lifted programs are free of
        # undefined behaviour (§7.3) — leaving undef here would let the
        # optimizer make choices the interpreter/emulators don't.
        ty = alloca.allocated_type
        if isinstance(ty, IntType):
            return ConstantInt(ty, 0)
        if isinstance(ty, FloatType):
            return ConstantFloat(ty, 0.0)
        if isinstance(ty, PointerType):
            return ConstantPointerNull(ty)
        return UndefValue(ty)

    def rename(bb, incoming: dict[int, object]) -> None:
        state = dict(incoming)
        for key, phi in phi_for.items():
            aid, bid = key
            if bid == id(bb):
                state[aid] = phi
        for inst in list(bb.instructions):
            if isinstance(inst, Load) and id(inst.pointer) in alloca_ids:
                value = state.get(id(inst.pointer))
                if value is None:
                    value = undef(alloca_ids[id(inst.pointer)])
                inst.replace_all_uses_with(value)  # type: ignore[arg-type]
                inst.erase_from_parent()
            elif isinstance(inst, Store) and id(inst.pointer) in alloca_ids:
                state[id(inst.pointer)] = inst.value
                inst.erase_from_parent()
        seen_succs = set()
        for succ in bb.successors():
            # A conditional branch with both targets equal yields the same
            # successor twice; wiring the phi once per *block* is enough.
            if id(succ) in seen_succs:
                continue
            seen_succs.add(id(succ))
            for aid in alloca_ids:
                phi = phi_for.get((aid, id(succ)))
                if phi is not None:
                    value = state.get(aid)
                    if value is None:
                        value = undef(alloca_ids[aid])
                    phi.add_incoming(value, bb)  # type: ignore[arg-type]
        for child in children[id(bb)]:
            rename(child, state)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10000))
    try:
        rename(func.entry, {})
    finally:
        sys.setrecursionlimit(old_limit)

    for alloca in allocas:
        assert not alloca.users, f"alloca {alloca.name} still has users"
        alloca.erase_from_parent()
    simplify_trivial_phis(func)
    return True
