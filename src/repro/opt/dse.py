"""dse: dead store elimination (block-local, LIMM-aware).

A non-atomic store is dead when a later store in the same block overwrites
the same pointer SSA value before any possible read.  Per Figure 11b's
F-WAW rule, the kill may cross ``Frm``/``Fww`` fences but not ``Fsc``.

Whether an intervening instruction is a "possible read" is decided by the
points-to analysis (:mod:`repro.analysis.pointsto`): loads of provably
non-aliasing pointers and calls that cannot reach the stored object keep
the pending store dead.  Atomics act as ``Fsc``-strength ordering for any
shared pending store, on top of their read/write effects.
"""

from __future__ import annotations

from ..analysis import analyze_function
from ..lir import AtomicRMW, Call, CmpXchg, Fence, Function, Load, Store

_WAW_FENCES = {"rm", "ww"}


def run_dse(func: Function) -> bool:
    changed = False
    alias = analyze_function(func)
    for bb in func.blocks:
        # pending[ptr id] = (store inst, fence kinds crossed since)
        pending: dict[int, tuple[Store, set[str]]] = {}
        for inst in list(bb.instructions):
            if isinstance(inst, Fence):
                for _, crossed in pending.values():
                    crossed.add(inst.kind)
                continue
            if isinstance(inst, Store) and inst.ordering == "na":
                key = id(inst.pointer)
                entry = pending.get(key)
                if entry is not None:
                    earlier, crossed = entry
                    if crossed <= _WAW_FENCES:
                        earlier.erase_from_parent()
                        changed = True
                pending[key] = (inst, set())
                continue
            if isinstance(inst, Load):
                doomed = [
                    key for key, (st, _) in pending.items()
                    if alias.may_alias(inst.pointer, st.pointer)
                ]
                for key in doomed:
                    del pending[key]
                continue
            if isinstance(inst, (Store, AtomicRMW, CmpXchg)):
                # sc store / atomic: reads and/or writes its own location,
                # orders like Fsc for every shared pending store.
                doomed = [
                    key for key, (st, _) in pending.items()
                    if alias.may_alias(inst.pointer, st.pointer)
                ]
                for key in doomed:
                    del pending[key]
                for key, (st, crossed) in pending.items():
                    if not alias.is_thread_local(st.pointer):
                        crossed.add("sc")
                continue
            if isinstance(inst, Call):
                if inst.is_readnone_callee():
                    continue
                # Pending stores the callee cannot reach stay dead; its
                # internal fences cannot observe thread-local memory.
                doomed = [
                    key for key, (st, _) in pending.items()
                    if alias.call_may_access(inst, st.pointer)
                ]
                for key in doomed:
                    del pending[key]
                continue
            if inst.may_read_memory() or inst.may_write_memory():
                pending.clear()
    return changed
