"""dse: dead store elimination (block-local, LIMM-aware).

A non-atomic store is dead when a later store in the same block overwrites
the same pointer SSA value before any possible read.  Per Figure 11b's
F-WAW rule, the kill may cross ``Frm``/``Fww`` fences but not ``Fsc``;
loads, calls and atomics in between block the elimination (no alias
analysis beyond pointer identity, so any read might alias).
"""

from __future__ import annotations

from ..lir import Fence, Function, Load, Store

_WAW_FENCES = {"rm", "ww"}


def run_dse(func: Function) -> bool:
    changed = False
    for bb in func.blocks:
        # pending[ptr id] = (store inst, fence kinds crossed since)
        pending: dict[int, tuple[Store, set[str]]] = {}
        for inst in list(bb.instructions):
            if isinstance(inst, Fence):
                for _, crossed in pending.values():
                    crossed.add(inst.kind)
                continue
            if isinstance(inst, Store) and inst.ordering == "na":
                key = id(inst.pointer)
                entry = pending.get(key)
                if entry is not None:
                    earlier, crossed = entry
                    if crossed <= _WAW_FENCES:
                        earlier.erase_from_parent()
                        changed = True
                pending[key] = (inst, set())
                continue
            if isinstance(inst, Load) or inst.may_read_memory() or (
                inst.may_write_memory()
            ):
                pending.clear()
    return changed
