"""instcombine: algebraic peephole simplification + constant folding.

LLVM's general-purpose cleanup pass; in this pipeline it is the workhorse
that collapses the flag-materialization and sub-register masking chains the
lifter emits (Fig. 17 shows it as the most impactful pass on kmeans).
"""

from __future__ import annotations

from typing import Optional

from ..lir import (
    BinOp,
    Cast,
    ConstantFloat,
    ConstantInt,
    FCmp,
    Function,
    GEP,
    ICmp,
    Instruction,
    IntType,
    Select,
    Value,
)
from ..lir.interp import _binop_apply, _fcmp_apply, _icmp_apply, _signed
from ..lir.types import FloatType, I1
from .utils import erase_if_trivially_dead, simplify_trivial_phis

_ASSOCIATIVE = {"add", "mul", "and", "or", "xor"}
_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "fadd", "fmul"}


def _cint(type_, v: int) -> ConstantInt:
    return ConstantInt(type_, v)


def _simplify_binop(inst: BinOp) -> Optional[Value]:
    op = inst.op
    lhs, rhs = inst.lhs, inst.rhs
    ty = inst.type

    # Canonicalize constants to the right for commutative operations.
    if (
        op in _COMMUTATIVE
        and isinstance(lhs, (ConstantInt, ConstantFloat))
        and not isinstance(rhs, (ConstantInt, ConstantFloat))
    ):
        inst.set_operand(0, rhs)
        inst.set_operand(1, lhs)
        lhs, rhs = inst.lhs, inst.rhs

    # Constant folding.
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        if op in ("sdiv", "udiv", "srem", "urem") and rhs.value == 0:
            return None
        return _cint(ty, _binop_apply(op, lhs.value, rhs.value, ty))
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        return ConstantFloat(ty, _binop_apply(op, lhs.value, rhs.value, ty))

    if isinstance(ty, IntType) and isinstance(rhs, ConstantInt):
        c = rhs.value
        if op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and c == 0:
            return lhs
        if op == "and":
            if c == 0:
                return _cint(ty, 0)
            if c == ty.mask():
                return lhs
            # (x & c) & c == x & c ; also zext i1 & 1 == zext i1
            if isinstance(lhs, BinOp) and lhs.op == "and" and isinstance(
                lhs.rhs, ConstantInt
            ):
                merged = lhs.rhs.value & c
                return BinOpReplace(lhs.lhs, "and", _cint(ty, merged))
            if (
                isinstance(lhs, Cast)
                and lhs.op == "zext"
                and isinstance(lhs.value.type, IntType)
                and c & ((1 << lhs.value.type.bits) - 1)
                == (1 << lhs.value.type.bits) - 1
            ):
                return lhs
        if op in ("mul",) and c == 1:
            return lhs
        if op in ("mul", "and") and c == 0:
            return _cint(ty, 0)
        if op in ("sdiv", "udiv") and c == 1:
            return lhs
        # Associate constant chains: (x op c1) op c2 → x op (c1 op c2).
        if (
            op in _ASSOCIATIVE
            and isinstance(lhs, BinOp)
            and lhs.op == op
            and isinstance(lhs.rhs, ConstantInt)
        ):
            folded = _binop_apply(op, lhs.rhs.value, c, ty)
            return BinOpReplace(lhs.lhs, op, _cint(ty, folded))
        # (x + c1) - c2 and (x - c1) + c2 style mixes.
        if op == "sub" and isinstance(lhs, BinOp) and isinstance(
            lhs.rhs, ConstantInt
        ):
            if lhs.op == "add":
                return BinOpReplace(
                    lhs.lhs, "add", _cint(ty, lhs.rhs.value - c)
                )
            if lhs.op == "sub":
                return BinOpReplace(
                    lhs.lhs, "sub", _cint(ty, lhs.rhs.value + c)
                )
        if op == "add" and isinstance(lhs, BinOp) and isinstance(
            lhs.rhs, ConstantInt
        ):
            if lhs.op == "sub":
                return BinOpReplace(
                    lhs.lhs, "add", _cint(ty, c - lhs.rhs.value)
                )
        # Normalize sub-by-const to add-of-negative for better chaining.
        if op == "sub":
            return BinOpReplace(lhs, "add", _cint(ty, -c))

    if isinstance(ty, IntType):
        if op == "sub" and lhs is rhs:
            return _cint(ty, 0)
        if op == "xor" and lhs is rhs:
            return _cint(ty, 0)
        if op in ("and", "or") and lhs is rhs:
            return lhs
        # Boolean double-negation: (x ^ 1) ^ 1 → x on i1.
        if (
            op == "xor"
            and ty == I1
            and isinstance(rhs, ConstantInt)
            and rhs.value == 1
            and isinstance(lhs, BinOp)
            and lhs.op == "xor"
            and isinstance(lhs.rhs, ConstantInt)
            and lhs.rhs.value == 1
        ):
            return lhs.lhs
    if isinstance(ty, FloatType) and isinstance(rhs, ConstantFloat):
        if op in ("fadd", "fsub") and rhs.value == 0.0:
            return lhs
        if op in ("fmul", "fdiv") and rhs.value == 1.0:
            return lhs
    return None


class BinOpReplace:
    """Marker asking the driver to materialize a fresh binop."""

    def __init__(self, lhs: Value, op: str, rhs: Value) -> None:
        self.lhs = lhs
        self.op = op
        self.rhs = rhs


def _simplify_icmp(inst: ICmp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    if isinstance(lhs, ConstantInt) and isinstance(rhs, ConstantInt):
        return _cint(I1, _icmp_apply(inst.pred, lhs.value, rhs.value, lhs.type))
    if isinstance(rhs, ConstantInt) and rhs.value == 0:
        # icmp ne (zext i1 x), 0 → x ; icmp eq (zext i1 x), 0 → x ^ 1
        if (
            isinstance(lhs, Cast)
            and lhs.op == "zext"
            and lhs.value.type == I1
        ):
            if inst.pred == "ne":
                return lhs.value
            if inst.pred == "eq":
                return BinOpReplace(lhs.value, "xor", _cint(I1, 1))
    if lhs is rhs:
        if inst.pred in ("eq", "sle", "sge", "ule", "uge"):
            return _cint(I1, 1)
        if inst.pred in ("ne", "slt", "sgt", "ult", "ugt"):
            return _cint(I1, 0)
    return None


def _simplify_fcmp(inst: FCmp) -> Optional[Value]:
    lhs, rhs = inst.lhs, inst.rhs
    if isinstance(lhs, ConstantFloat) and isinstance(rhs, ConstantFloat):
        return _cint(I1, _fcmp_apply(inst.pred, lhs.value, rhs.value))
    return None


def _simplify_cast(inst: Cast) -> Optional[Value]:
    op = inst.op
    src = inst.value
    ty = inst.type

    if isinstance(src, ConstantInt):
        if op == "trunc":
            return _cint(ty, src.value)
        if op == "zext":
            return _cint(ty, src.value)
        if op == "sext":
            return _cint(ty, _signed(src.value, src.type.bits))
        if op in ("sitofp",):
            return ConstantFloat(ty, float(src.signed_value))
        if op in ("uitofp",):
            return ConstantFloat(ty, float(src.value))
    if isinstance(src, ConstantFloat):
        if op in ("fptosi", "fptoui"):
            return _cint(ty, int(src.value))
        if op in ("fpext", "fptrunc"):
            return ConstantFloat(ty, src.value)

    if isinstance(src, Cast):
        inner = src.value
        # inttoptr(ptrtoint p) → p (or bitcast when types differ).
        if op == "inttoptr" and src.op == "ptrtoint":
            if inner.type == ty:
                return inner
            return CastReplace("bitcast", inner, ty)
        if op == "ptrtoint" and src.op == "inttoptr":
            if inner.type == ty:
                return inner
        if op == "bitcast" and src.op == "bitcast":
            if inner.type == ty:
                return inner
            return CastReplace("bitcast", inner, ty)
        # trunc(zext/sext x) → x | narrower cast
        if op == "trunc" and src.op in ("zext", "sext"):
            if inner.type == ty:
                return inner
            if inner.type.bits > ty.bits:  # type: ignore[union-attr]
                return CastReplace("trunc", inner, ty)
            return CastReplace(src.op, inner, ty)
        if op == "zext" and src.op == "zext":
            return CastReplace("zext", inner, ty)
        if op == "sext" and src.op == "sext":
            return CastReplace("sext", inner, ty)
    if op == "bitcast" and src.type == ty:
        return src
    return None


class CastReplace:
    def __init__(self, op: str, value: Value, ty) -> None:
        self.op = op
        self.value = value
        self.ty = ty


def _simplify_select(inst: Select) -> Optional[Value]:
    if isinstance(inst.cond, ConstantInt):
        return inst.true_value if inst.cond.value & 1 else inst.false_value
    if inst.true_value is inst.false_value:
        return inst.true_value
    return None


def _simplify_gep(inst: GEP) -> Optional[Value]:
    if len(inst.indices) == 1 and isinstance(inst.indices[0], ConstantInt):
        if inst.indices[0].value == 0 and inst.pointer.type == inst.type:
            return inst.pointer
    return None


def _simplify(inst: Instruction):
    if isinstance(inst, BinOp):
        return _simplify_binop(inst)
    if isinstance(inst, ICmp):
        return _simplify_icmp(inst)
    if isinstance(inst, FCmp):
        return _simplify_fcmp(inst)
    if isinstance(inst, Cast):
        return _simplify_cast(inst)
    if isinstance(inst, Select):
        return _simplify_select(inst)
    if isinstance(inst, GEP):
        return _simplify_gep(inst)
    return None


def run_instcombine(func: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        for bb in func.blocks:
            for inst in list(bb.instructions):
                if inst.parent is None:
                    continue
                result = _simplify(inst)
                if result is None:
                    continue
                if isinstance(result, BinOpReplace):
                    new = BinOp(result.op, result.lhs, result.rhs, inst.name)
                    bb.insert_before(inst, new)
                    inst.replace_all_uses_with(new)
                    inst.erase_from_parent()
                elif isinstance(result, CastReplace):
                    new = Cast(result.op, result.value, result.ty, inst.name)
                    bb.insert_before(inst, new)
                    inst.replace_all_uses_with(new)
                    inst.erase_from_parent()
                else:
                    inst.replace_all_uses_with(result)
                    inst.erase_from_parent()
                progress = True
                changed = True
        progress |= simplify_trivial_phis(func)
        # Clean up newly dead feeders so chains keep collapsing.
        for bb in func.blocks:
            for inst in reversed(list(bb.instructions)):
                if erase_if_trivially_dead(inst):
                    progress = True
                    changed = True
    return changed
