"""gvn: global value numbering + LIMM-aware redundant load elimination.

Pure expressions are numbered over the dominator tree: an instruction whose
(opcode, operands) key was already computed in a dominating position is
replaced by the earlier value.

Load elimination implements the RAR/RAW rules of Figure 11b: a non-atomic
load can reuse the value of an earlier load of / store to the *same pointer
SSA value* in the same block, provided nothing in between may write the
loaded memory, and any fences in between are of the kinds the LIMM
elimination table permits (``Frm``/``Fww`` for read-after-read,
``Fsc``/``Fww`` for read-after-write).  Atomic accesses are never touched.

Whether an intervening store or call "may write the loaded memory" is
answered by the points-to analysis (:mod:`repro.analysis.pointsto`):
stores to provably non-aliasing pointers and calls that cannot reach the
loaded object keep the forwarding candidate alive.
"""

from __future__ import annotations


from ..analysis import analyze_function
from ..lir import (
    AtomicRMW,
    BinOp,
    Call,
    Cast,
    CmpXchg,
    FCmp,
    Fence,
    Function,
    GEP,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    Value,
)
from ..lir.dominators import DominatorTree
from .utils import erase_if_trivially_dead

# Fence kinds an elimination may cross (Fig. 11b).
_RAR_FENCES = {"rm", "ww"}
_RAW_FENCES = {"sc", "ww"}


def _value_key(v: Value):
    from ..lir import ConstantFloat, ConstantInt

    if isinstance(v, ConstantInt):
        return ("ci", str(v.type), v.value)
    if isinstance(v, ConstantFloat):
        return ("cf", str(v.type), v.value)
    return ("v", id(v))


def _expr_key(inst: Instruction):
    if isinstance(inst, BinOp):
        ops = [_value_key(o) for o in inst.operands]
        if inst.is_commutative():
            ops.sort()
        return ("binop", inst.op, str(inst.type), tuple(ops))
    if isinstance(inst, ICmp):
        return (
            "icmp", inst.pred,
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, FCmp):
        return (
            "fcmp", inst.pred,
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, Cast):
        return ("cast", inst.op, str(inst.type), _value_key(inst.value))
    if isinstance(inst, GEP):
        return (
            "gep", str(inst.source_type), str(inst.type),
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, Select):
        return ("select", tuple(_value_key(o) for o in inst.operands))
    return None


def _forward_loads_in_block(bb, alias=None) -> bool:
    """Block-local RAR/RAW forwarding honouring the LIMM fence table."""
    changed = False
    # available: pointer id -> (kind, value, pointer), kind 'load'/'store'
    available: dict[int, tuple[str, Value, Value]] = {}
    fences_since: dict[int, set[str]] = {}

    def invalidate(writer) -> None:
        """Drop entries the instruction may overwrite."""
        if alias is None:
            available.clear()
            fences_since.clear()
            return
        if isinstance(writer, Call):
            doomed = [k for k, (_, _, ptr) in available.items()
                      if alias.call_may_access(writer, ptr)]
        else:
            doomed = [k for k, (_, _, ptr) in available.items()
                      if alias.may_alias(writer.pointer, ptr)]
        for k in doomed:
            del available[k]
            fences_since.pop(k, None)

    for inst in list(bb.instructions):
        if isinstance(inst, Fence):
            for fs in fences_since.values():
                fs.add(inst.kind)
            continue
        if isinstance(inst, Load) and inst.ordering == "na":
            key = id(inst.pointer)
            entry = available.get(key)
            if entry is not None:
                kind, value, _ptr = entry
                crossed = fences_since.get(key, set())
                allowed = _RAR_FENCES if kind == "load" else _RAW_FENCES
                if crossed <= allowed and value.type == inst.type:
                    inst.replace_all_uses_with(value)
                    inst.erase_from_parent()
                    changed = True
                    continue
            available[key] = ("load", inst, inst.pointer)
            fences_since[key] = set()
            continue
        if isinstance(inst, Store) and inst.ordering == "na":
            # Kill only what the store may overwrite, then make its own
            # value available.
            invalidate(inst)
            available[id(inst.pointer)] = ("store", inst.value, inst.pointer)
            fences_since[id(inst.pointer)] = set()
            continue
        if isinstance(inst, (Store, AtomicRMW, CmpXchg)):
            invalidate(inst)
            # The access itself orders like an sc fence for every shared
            # entry that survives (sc stores / atomics); record that so
            # the Fig. 11b tables veto forwarding shared values across
            # it.  Thread-local entries cannot be observed, so they pass.
            for key, (_, _, ptr) in available.items():
                if alias is None or not alias.is_thread_local(ptr):
                    fences_since.setdefault(key, set()).add("sc")
            continue
        if isinstance(inst, Call):
            # Entries that survive a call are thread-local (the callee
            # cannot reach them), so its internal fences are unobservable.
            if not inst.is_readnone_callee():
                invalidate(inst)
            continue
        if inst.may_write_memory():
            available.clear()
            fences_since.clear()
    return changed


def run_gvn(func: Function) -> bool:
    changed = False
    dt = DominatorTree(func)
    table: dict[object, list[tuple[Instruction, object]]] = {}

    # Dominator-tree walk numbering pure expressions.
    order = dt.rpo
    positions: dict[int, tuple[object, int]] = {}
    for bb in order:
        for i, inst in enumerate(bb.instructions):
            positions[id(inst)] = (bb, i)

    def dominates(a: Instruction, b: Instruction) -> bool:
        ba, ia = positions[id(a)]
        bb_, ib = positions[id(b)]
        if ba is bb_:
            return ia < ib
        return dt.dominates(ba, bb_)

    for bb in order:
        for inst in list(bb.instructions):
            key = _expr_key(inst)
            if key is None:
                continue
            candidates = table.setdefault(key, [])
            replaced = False
            for earlier, _ in candidates:
                if earlier.parent is not None and dominates(earlier, inst):
                    inst.replace_all_uses_with(earlier)
                    inst.erase_from_parent()
                    changed = True
                    replaced = True
                    break
            if not replaced:
                candidates.append((inst, None))

    alias = analyze_function(func)
    for bb in func.blocks:
        changed |= _forward_loads_in_block(bb, alias)
    for bb in func.blocks:
        for inst in reversed(list(bb.instructions)):
            changed |= erase_if_trivially_dead(inst)
    return changed
