"""gvn: global value numbering + LIMM-aware redundant load elimination.

Pure expressions are numbered over the dominator tree: an instruction whose
(opcode, operands) key was already computed in a dominating position is
replaced by the earlier value.

Load elimination implements the RAR/RAW rules of Figure 11b: a non-atomic
load can reuse the value of an earlier load of / store to the *same pointer
SSA value* in the same block, provided nothing in between may write memory,
and any fences in between are of the kinds the LIMM elimination table
permits (``Frm``/``Fww`` for read-after-read, ``Fsc``/``Fww`` for
read-after-write).  Atomic accesses are never touched.
"""

from __future__ import annotations

from typing import Optional

from ..lir import (
    BinOp,
    Call,
    Cast,
    FCmp,
    Fence,
    Function,
    GEP,
    ICmp,
    Instruction,
    Load,
    Select,
    Store,
    Value,
)
from ..lir.dominators import DominatorTree
from .utils import erase_if_trivially_dead

# Fence kinds an elimination may cross (Fig. 11b).
_RAR_FENCES = {"rm", "ww"}
_RAW_FENCES = {"sc", "ww"}


def _value_key(v: Value):
    from ..lir import ConstantFloat, ConstantInt

    if isinstance(v, ConstantInt):
        return ("ci", str(v.type), v.value)
    if isinstance(v, ConstantFloat):
        return ("cf", str(v.type), v.value)
    return ("v", id(v))


def _expr_key(inst: Instruction):
    if isinstance(inst, BinOp):
        ops = [_value_key(o) for o in inst.operands]
        if inst.is_commutative():
            ops.sort()
        return ("binop", inst.op, str(inst.type), tuple(ops))
    if isinstance(inst, ICmp):
        return (
            "icmp", inst.pred,
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, FCmp):
        return (
            "fcmp", inst.pred,
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, Cast):
        return ("cast", inst.op, str(inst.type), _value_key(inst.value))
    if isinstance(inst, GEP):
        return (
            "gep", str(inst.source_type), str(inst.type),
            tuple(_value_key(o) for o in inst.operands),
        )
    if isinstance(inst, Select):
        return ("select", tuple(_value_key(o) for o in inst.operands))
    return None


def _forward_loads_in_block(bb) -> bool:
    """Block-local RAR/RAW forwarding honouring the LIMM fence table."""
    changed = False
    # available: pointer id -> (kind, value) where kind is 'load'/'store'
    available: dict[int, tuple[str, Value]] = {}
    fences_since: dict[int, set[str]] = {}
    for inst in list(bb.instructions):
        if isinstance(inst, Fence):
            for fs in fences_since.values():
                fs.add(inst.kind)
            continue
        if isinstance(inst, Load) and inst.ordering == "na":
            key = id(inst.pointer)
            entry = available.get(key)
            if entry is not None:
                kind, value = entry
                crossed = fences_since.get(key, set())
                allowed = _RAR_FENCES if kind == "load" else _RAW_FENCES
                if crossed <= allowed and value.type == inst.type:
                    inst.replace_all_uses_with(value)
                    inst.erase_from_parent()
                    changed = True
                    continue
            available[key] = ("load", inst)
            fences_since[key] = set()
            continue
        if isinstance(inst, Store) and inst.ordering == "na":
            # A store invalidates everything (no alias analysis beyond
            # pointer identity), then makes its own value available.
            available = {id(inst.pointer): ("store", inst.value)}
            fences_since = {id(inst.pointer): set()}
            continue
        if inst.may_write_memory() or isinstance(inst, Call):
            available.clear()
            fences_since.clear()
    return changed


def run_gvn(func: Function) -> bool:
    changed = False
    dt = DominatorTree(func)
    table: dict[object, list[tuple[Instruction, object]]] = {}

    # Dominator-tree walk numbering pure expressions.
    order = dt.rpo
    positions: dict[int, tuple[object, int]] = {}
    for bb in order:
        for i, inst in enumerate(bb.instructions):
            positions[id(inst)] = (bb, i)

    def dominates(a: Instruction, b: Instruction) -> bool:
        ba, ia = positions[id(a)]
        bb_, ib = positions[id(b)]
        if ba is bb_:
            return ia < ib
        return dt.dominates(ba, bb_)

    for bb in order:
        for inst in list(bb.instructions):
            key = _expr_key(inst)
            if key is None:
                continue
            candidates = table.setdefault(key, [])
            replaced = False
            for earlier, _ in candidates:
                if earlier.parent is not None and dominates(earlier, inst):
                    inst.replace_all_uses_with(earlier)
                    inst.erase_from_parent()
                    changed = True
                    replaced = True
                    break
            if not replaced:
                candidates.append((inst, None))

    for bb in func.blocks:
        changed |= _forward_loads_in_block(bb)
    for bb in func.blocks:
        for inst in reversed(list(bb.instructions)):
            changed |= erase_if_trivially_dead(inst)
    return changed
