"""simplifycfg: CFG cleanups.

* delete unreachable blocks,
* fold conditional branches on constants,
* fold conditional branches whose two targets coincide,
* merge a block into its unique predecessor when that predecessor has a
  single successor,
* thread empty forwarding blocks (a block containing only ``br %next``),
* drop trivial phis.
"""

from __future__ import annotations

from ..lir import Br, ConstantInt, Function
from .utils import remove_unreachable_blocks, simplify_trivial_phis


def _fold_constant_branches(func: Function) -> bool:
    changed = False
    for bb in func.blocks:
        term = bb.terminator
        if isinstance(term, Br) and term.is_conditional and isinstance(
            term.cond, ConstantInt
        ):
            taken = term.targets[0] if term.cond.value & 1 else term.targets[1]
            dropped = term.targets[1] if term.cond.value & 1 else term.targets[0]
            origins = term.origins
            term.erase_from_parent()
            nb = Br(None, taken)
            nb.origins = origins
            bb.append(nb)
            if dropped is not taken:
                for phi in dropped.phis():
                    phi.remove_incoming(bb)
            changed = True
    return changed


def _fold_same_target_branches(func: Function) -> bool:
    """Canonicalize ``br i1 %c, label %X, label %X`` to ``br label %X``.

    An empty ``if`` arm produces this shape; leaving it conditional makes
    the block look like two CFG edges to the same successor, which breaks
    passes (e.g. mem2reg's phi insertion) that iterate successor edges.
    """
    changed = False
    for bb in func.blocks:
        term = bb.terminator
        if not isinstance(term, Br) or not term.is_conditional:
            continue
        if term.targets[0] is not term.targets[1]:
            continue
        target = term.targets[0]
        origins = term.origins
        term.erase_from_parent()
        nb = Br(None, target)
        nb.origins = origins
        bb.append(nb)
        # A phi in the target may carry the duplicated edge twice.
        for phi in target.phis():
            seen = False
            for blk in list(phi.incoming_blocks):
                if blk is bb:
                    if seen:
                        phi.remove_incoming(bb)
                    seen = True
        changed = True
    return changed


def _merge_single_pred(func: Function) -> bool:
    changed = False
    for bb in list(func.blocks):
        if bb is func.entry:
            continue
        preds = bb.predecessors()
        if len(preds) != 1:
            continue
        pred = preds[0]
        if pred is bb:
            continue
        term = pred.terminator
        if not isinstance(term, Br) or len(set(map(id, term.successors()))) != 1:
            continue
        # Fold phis (single incoming).
        for phi in list(bb.phis()):
            value = phi.incoming_for(pred)
            phi.replace_all_uses_with(value)  # type: ignore[arg-type]
            phi.erase_from_parent()
        term.erase_from_parent()
        for inst in list(bb.instructions):
            bb.instructions.remove(inst)
            pred.append(inst)
        # Successor phis must re-route their incoming edge to `pred`.
        for succ in pred.successors():
            for phi in succ.phis():
                for i, blk in enumerate(phi.incoming_blocks):
                    if blk is bb:
                        phi.incoming_blocks[i] = pred
        func.remove_block(bb)
        changed = True
    return changed


def _thread_empty_blocks(func: Function) -> bool:
    """Retarget branches over blocks containing only an unconditional br."""
    changed = False
    for bb in list(func.blocks):
        if bb is func.entry:
            continue
        if len(bb.instructions) != 1:
            continue
        term = bb.terminator
        if not isinstance(term, Br) or term.is_conditional:
            continue
        target = term.targets[0]
        if target is bb or target.phis():
            continue
        preds = bb.predecessors()
        if any(p is bb for p in preds):
            continue
        for pred in preds:
            ptorm = pred.terminator
            if isinstance(ptorm, Br):
                ptorm.replace_target(bb, target)
                changed = True
        if not bb.predecessors():
            term.erase_from_parent()
            func.remove_block(bb)
            changed = True
    return changed


def run_simplifycfg(func: Function) -> bool:
    changed = False
    progress = True
    while progress:
        progress = False
        progress |= remove_unreachable_blocks(func)
        progress |= _fold_constant_branches(func)
        progress |= _fold_same_target_branches(func)
        progress |= simplify_trivial_phis(func)
        progress |= _merge_single_pred(func)
        progress |= _thread_empty_blocks(func)
        changed |= progress
    return changed
