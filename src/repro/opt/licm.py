"""licm: loop-invariant code motion.

Natural loops are found from dominator-tree back edges.  Pure instructions
whose operands are defined outside the loop hoist to a preheader.  A
non-atomic load additionally hoists when its pointer is loop-invariant and
either (a) the loop body contains no store, call, fence or atomic — the
conservative seed rule — or (b) the load is provably *thread-local* (per
:mod:`repro.analysis.pointsto`) and nothing in the loop may write the
loaded memory: no other thread can observe a thread-local access, so the
loop's fences and atomics are transparent to it, and the may-write check
covers the rest.  Case (b) additionally requires the load's block to
dominate the back edge so the hoisted load is executed on a path the
original was.
"""

from __future__ import annotations

from ..analysis import analyze_function
from ..lir import (
    AtomicRMW,
    BasicBlock,
    Br,
    Call,
    CmpXchg,
    Fence,
    Function,
    Instruction,
    Load,
    Phi,
    Store,
)
from ..lir.dominators import DominatorTree
from .utils import is_pure


def _ensure_preheader(func: Function, head: BasicBlock, loop: set[int]) -> BasicBlock | None:
    """Find or create a unique edge block from outside the loop into head."""
    outside_preds = [p for p in head.predecessors() if id(p) not in loop]
    if not outside_preds:
        return None
    if len(outside_preds) == 1:
        pred = outside_preds[0]
        term = pred.terminator
        if isinstance(term, Br) and not term.is_conditional:
            return pred
    # Create a dedicated preheader block.  Its branch blames the loop
    # header's terminator — the closest real x86 anchor for glue code.
    pre = BasicBlock(func.next_name("preheader"))
    func.blocks.insert(func.blocks.index(head), pre)
    pre.parent = func
    pre_br = Br(None, head)
    if head.terminator is not None:
        pre_br.origins = head.terminator.origins
    pre.append(pre_br)
    for pred in outside_preds:
        term = pred.terminator
        if isinstance(term, Br):
            term.replace_target(head, pre)
    for phi in head.phis():
        # Merge the outside incomings into one through the preheader.
        outside_values = [
            (v, b) for v, b in phi.incoming() if id(b) not in loop
        ]
        if not outside_values:
            continue
        if len(outside_values) == 1:
            value, block = outside_values[0]
            phi.remove_incoming(block)
            phi.add_incoming(value, pre)
        else:
            merge = Phi(phi.type, func.next_name("pre_phi"))
            merge.origins = phi.origins
            pre.instructions.insert(0, merge)
            merge.parent = pre
            for value, block in outside_values:
                merge.add_incoming(value, block)
                phi.remove_incoming(block)
            phi.add_incoming(merge, pre)
    return pre


def run_licm(func: Function) -> bool:
    changed = False
    dt = DominatorTree(func)
    alias = analyze_function(func)
    for tail, head in dt.back_edges():
        loop = dt.natural_loop(tail, head)
        loop_blocks = [bb for bb in func.blocks if id(bb) in loop]
        loop_insts = {
            id(i) for bb in loop_blocks for i in bb.instructions
        }
        has_memory_effects = any(
            i.may_write_memory() or isinstance(i, Fence)
            for bb in loop_blocks
            for i in bb.instructions
        )
        loop_writers = [
            i for bb in loop_blocks for i in bb.instructions
            if isinstance(i, (Store, AtomicRMW, CmpXchg, Call))
        ]

        def may_clobber(load: Load) -> bool:
            for writer in loop_writers:
                if isinstance(writer, Call):
                    if alias.call_may_access(writer, load.pointer):
                        return True
                elif alias.may_alias(writer.pointer, load.pointer):
                    return True
            return False

        def invariant(inst: Instruction) -> bool:
            return all(
                id(op) not in loop_insts for op in inst.operands
            )

        preheader = None
        progress = True
        while progress:
            progress = False
            for bb in loop_blocks:
                for inst in list(bb.instructions):
                    if id(inst) not in loop_insts:
                        continue
                    hoistable = is_pure(inst) and invariant(inst)
                    if (
                        not hoistable
                        and isinstance(inst, Load)
                        and inst.ordering == "na"
                        and invariant(inst)
                    ):
                        if not has_memory_effects:
                            hoistable = True
                        elif (
                            alias.is_thread_local(inst.pointer)
                            and not may_clobber(inst)
                            and dt.dominates(bb, tail)
                        ):
                            hoistable = True
                    if not hoistable:
                        continue
                    if preheader is None:
                        preheader = _ensure_preheader(func, head, loop)
                        if preheader is None:
                            break
                    bb.instructions.remove(inst)
                    term = preheader.terminator
                    idx = preheader.instructions.index(term)
                    preheader.instructions.insert(idx, inst)
                    inst.parent = preheader
                    loop_insts.discard(id(inst))
                    progress = True
                    changed = True
    return changed
