"""Full loop unrolling for small constant-trip-count loops.

An extension pass (not part of the paper's measured pipeline).  Handles the
canonical rotated-loop shape the mini-C frontend and the lifter both
produce:

    preheader:  br header
    header:     %i = phi [C0, preheader], [%i.next, latch] ; other phis...
                %c = icmp <pred> %i, CN
                br %c, body..., exit          (or the negated arrangement)
    ...body blocks...
    latch:      %i.next = add %i, S
                br header

When the trip count is a known small constant, the loop blocks are cloned
once per iteration, header phis are threaded through iterations, and the
exit branch of each clone is folded to the known direction.
"""

from __future__ import annotations

from typing import Optional

from ..lir import BasicBlock, BinOp, Br, ConstantInt, Function, ICmp, Phi, Value
from ..lir.clone import clone_instruction
from ..lir.dominators import DominatorTree
from .utils import remove_unreachable_blocks, simplify_trivial_phis

MAX_TRIP_COUNT = 16
MAX_LOOP_INSTRUCTIONS = 48


class _LoopInfo:
    def __init__(self) -> None:
        self.header: BasicBlock = None  # type: ignore[assignment]
        self.latch: BasicBlock = None   # type: ignore[assignment]
        self.blocks: list[BasicBlock] = []
        self.preheader: BasicBlock = None  # type: ignore[assignment]
        self.exit: BasicBlock = None    # type: ignore[assignment]
        self.body_target: BasicBlock = None  # type: ignore[assignment]
        self.iv_phi: Phi = None         # type: ignore[assignment]
        self.trip_count: int = 0


def _trip_count(pred: str, start: int, bound: int, step: int) -> Optional[int]:
    if step == 0:
        return None
    count = 0
    i = start
    while count <= MAX_TRIP_COUNT:
        holds = {
            "slt": i < bound, "sle": i <= bound,
            "sgt": i > bound, "sge": i >= bound,
            "ne": i != bound,
            "ult": (i % 2**64) < (bound % 2**64),
        }.get(pred)
        if holds is None:
            return None
        if not holds:
            return count
        count += 1
        i += step
    return None


def _analyze(func: Function, dt: DominatorTree, tail: BasicBlock,
             header: BasicBlock) -> Optional[_LoopInfo]:
    info = _LoopInfo()
    info.header = header
    info.latch = tail
    loop_ids = dt.natural_loop(tail, header)
    info.blocks = [bb for bb in func.blocks if id(bb) in loop_ids]
    if sum(len(bb.instructions) for bb in info.blocks) > MAX_LOOP_INSTRUCTIONS:
        return None

    # Unique preheader with an unconditional branch.
    outside_preds = [p for p in header.predecessors() if id(p) not in loop_ids]
    if len(outside_preds) != 1 or len(header.predecessors()) != 2:
        return None
    pre = outside_preds[0]
    pterm = pre.terminator
    if not isinstance(pterm, Br) or pterm.is_conditional:
        return None
    info.preheader = pre

    # Latch jumps unconditionally back to the header.
    lterm = info.latch.terminator
    if not isinstance(lterm, Br) or lterm.is_conditional:
        return None

    # Header: phis, an icmp on an induction phi against a constant, and a
    # conditional branch with exactly one in-loop and one exit target.
    hterm = header.terminator
    if not isinstance(hterm, Br) or not hterm.is_conditional:
        return None
    cond = hterm.cond
    if not isinstance(cond, ICmp) or cond.parent is not header:
        return None
    then_in = id(hterm.targets[0]) in loop_ids
    else_in = id(hterm.targets[1]) in loop_ids
    if then_in == else_in:
        return None
    info.body_target = hterm.targets[0] if then_in else hterm.targets[1]
    info.exit = hterm.targets[1] if then_in else hterm.targets[0]
    if info.exit.phis():
        return None  # keep it simple: no exit phis to patch

    # Find the induction phi: phi(i) with constant init from preheader and
    # `add i, const` from the latch; the icmp compares it to a constant.
    iv = cond.lhs
    if not isinstance(iv, Phi) or iv.parent is not header:
        return None
    if not isinstance(cond.rhs, ConstantInt):
        return None
    init = iv.incoming_for(info.preheader)
    nxt = iv.incoming_for(info.latch)
    if not isinstance(init, ConstantInt):
        return None
    if not (
        isinstance(nxt, BinOp)
        and nxt.op == "add"
        and nxt.lhs is iv
        and isinstance(nxt.rhs, ConstantInt)
    ):
        return None
    pred = cond.pred if then_in else _negate(cond.pred)
    if pred is None:
        return None
    trips = _trip_count(
        pred, init.signed_value, cond.rhs.signed_value, nxt.rhs.signed_value
    )
    if trips is None or trips == 0:
        return None
    info.iv_phi = iv
    info.trip_count = trips

    # Every header phi must have exactly the preheader/latch incomings.
    for phi in header.phis():
        blocks = {id(b) for b in phi.incoming_blocks}
        if blocks != {id(info.preheader), id(info.latch)}:
            return None
    return info


def _negate(pred: str) -> Optional[str]:
    return {
        "slt": "sge", "sle": "sgt", "sgt": "sle", "sge": "slt",
        "eq": "ne", "ne": "eq", "ult": "uge", "ule": "ugt",
        "ugt": "ule", "uge": "ult",
    }.get(pred)


def _unroll(func: Function, info: _LoopInfo) -> None:
    header_phis = info.header.phis()
    # Live state entering iteration k: value of each header phi.
    state: dict[int, Value] = {
        id(phi): phi.incoming_for(info.preheader) for phi in header_phis
    }
    insert_at = func.blocks.index(info.exit)
    prev_tail: BasicBlock = info.preheader
    prev_term = info.preheader.terminator
    prev_term.erase_from_parent()

    for _k in range(info.trip_count):
        block_map: dict[int, BasicBlock] = {}
        value_map: dict[int, Value] = dict(state)
        for bb in info.blocks:
            nb = BasicBlock(func.next_name(f"unroll_{bb.name}"))
            func.blocks.insert(insert_at, nb)
            insert_at += 1
            nb.parent = func
            block_map[id(bb)] = nb
        # Clones of the exit edge target the real exit.
        block_map[id(info.exit)] = info.exit

        def lookup(v: Value) -> Value:
            return value_map.get(id(v), v)

        phis_to_patch: list[tuple[Phi, Phi]] = []
        for bb in info.blocks:
            nb = block_map[id(bb)]
            for inst in bb.instructions:
                if isinstance(inst, Phi) and bb is info.header:
                    continue  # header phis are the threaded state
                if inst is bb.terminator and bb is info.header:
                    # The exit test is statically false inside the unroll:
                    # always continue into the body clone.
                    body_br = Br(None, block_map[id(info.body_target)])
                    body_br.origins = inst.origins
                    nb.append(body_br)
                    continue
                if inst is bb.terminator and bb is info.latch:
                    continue  # wired to the next iteration below
                cloned = clone_instruction(inst, lookup, block_map)
                value_map[id(inst)] = cloned
                nb.append(cloned)
                if isinstance(inst, Phi):
                    # Non-header phi (nested-loop headers, if-joins): its
                    # incomings may reference values cloned later in this
                    # iteration, so patch them in a second pass.
                    phis_to_patch.append((inst, cloned))
        for original, cloned in phis_to_patch:
            for v, pb in original.incoming():
                cloned.add_incoming(lookup(v), block_map[id(pb)])
        # Chain: previous tail → this iteration's header clone.
        chain_br = Br(None, block_map[id(info.header)])
        if info.latch.terminator is not None:
            chain_br.origins = info.latch.terminator.origins
        prev_tail.append(chain_br)
        prev_tail = block_map[id(info.latch)]
        # Next-iteration state: the latch incomings of the header phis.
        state = {
            id(phi): value_map.get(
                id(phi.incoming_for(info.latch)),
                phi.incoming_for(info.latch),
            )
            for phi in header_phis
        }

    # After the last iteration, fall through to the exit block.
    exit_br = Br(None, info.exit)
    if info.latch.terminator is not None:
        exit_br.origins = info.latch.terminator.origins
    prev_tail.append(exit_br)

    # Any use of a header phi *outside* the loop sees the final state.
    for phi in header_phis:
        phi.replace_all_uses_with(state[id(phi)])

    # The original loop blocks are now unreachable.
    remove_unreachable_blocks(func)
    simplify_trivial_phis(func)


def run_unroll(func: Function) -> bool:
    changed = False
    for _ in range(4):  # a few rounds for nests, innermost first
        dt = DominatorTree(func)
        edges = dt.back_edges()
        done = True
        for tail, header in edges:
            info = _analyze(func, dt, tail, header)
            if info is None:
                continue
            _unroll(func, info)
            changed = True
            done = False
            break  # CFG changed: recompute dominators
        if done:
            break
    return changed
