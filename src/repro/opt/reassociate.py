"""reassociate: flatten and re-fold associative integer expression trees.

Collects ``add``/``and``/``or``/``xor``/``mul`` chains into (leaves,
constant) form, folds the constant part and rebuilds a right-leaning chain
with the constant last.  ``sub x, c`` participates as ``add x, -c``.  The
pass is what collapses the lifter's long stack-address arithmetic chains
into a single offset.
"""

from __future__ import annotations

from ..lir import BinOp, ConstantInt, Function, Instruction, IntType, Value
from ..lir.interp import _binop_apply
from .utils import erase_if_trivially_dead

_IDENTITY = {"add": 0, "or": 0, "xor": 0, "and": -1, "mul": 1}


def _collect(op: str, value: Value, leaves: list[Value], depth: int = 0) -> int:
    """Flatten a chain; returns the folded constant contribution."""
    if isinstance(value, ConstantInt):
        return value.value
    if (
        isinstance(value, BinOp)
        and depth < 64
        and len(value.users) == 1  # only single-use links may be absorbed
    ):
        if value.op == op:
            c1 = _collect(op, value.lhs, leaves, depth + 1)
            c2 = _collect(op, value.rhs, leaves, depth + 1)
            ty = value.type
            return _binop_apply(op, c1, c2, ty)
        if op == "add" and value.op == "sub" and isinstance(
            value.rhs, ConstantInt
        ):
            c1 = _collect(op, value.lhs, leaves, depth + 1)
            return (c1 - value.rhs.value) & value.type.mask()
    leaves.append(value)
    ty = None
    return _IDENTITY[op] & ((1 << 64) - 1) if op == "and" else _IDENTITY[op]


def run_reassociate(func: Function) -> bool:
    changed = False
    for bb in func.blocks:
        for inst in list(bb.instructions):
            if not isinstance(inst, BinOp) or not isinstance(
                inst.type, IntType
            ):
                continue
            op = inst.op
            if op not in _IDENTITY and op != "sub":
                continue
            work_op = "add" if op == "sub" else op
            leaves: list[Value] = []
            if op == "sub":
                if not isinstance(inst.rhs, ConstantInt):
                    continue
                const = _collect("add", inst.lhs, leaves)
                const = (const - inst.rhs.value) & inst.type.mask()
            else:
                c1 = _collect(op, inst.lhs, leaves)
                c2 = _collect(op, inst.rhs, leaves)
                const = _binop_apply(op, c1, c2, inst.type)
            identity = _IDENTITY[work_op]
            if identity == -1:
                identity = inst.type.mask()
            # Nothing to do if the chain is already in canonical shape.
            if (
            len(leaves) == 1
                and inst.lhs is leaves[0]
                and isinstance(inst.rhs, ConstantInt)
            ):
                continue
            if len(leaves) + (0 if const == identity else 1) >= _chain_len(inst, work_op):
                continue
            # Rebuild: ((l1 op l2) op l3 ...) op const
            ty = inst.type
            if not leaves:
                new_value: Value = ConstantInt(ty, const)
            else:
                new_value = leaves[0]
                for leaf in leaves[1:]:
                    nb = BinOp(work_op, new_value, leaf)
                    nb.origins = inst.origins
                    bb.insert_before(inst, nb)
                    new_value = nb
                if const != identity:
                    nb = BinOp(work_op, new_value, ConstantInt(ty, const))
                    nb.origins = inst.origins
                    bb.insert_before(inst, nb)
                    new_value = nb
            inst.replace_all_uses_with(new_value)
            inst.erase_from_parent()
            changed = True
    if changed:
        for bb in func.blocks:
            for inst in reversed(list(bb.instructions)):
                erase_if_trivially_dead(inst)
    return changed


def _chain_len(inst: Instruction, op: str) -> int:
    """Number of binops in the existing chain rooted at ``inst``."""
    count = 0
    stack: list[Value] = [inst]
    while stack:
        v = stack.pop()
        if isinstance(v, BinOp) and (
            v.op == op or (op == "add" and v.op == "sub")
        ):
            count += 1
            stack.extend(v.operands)
    return count
