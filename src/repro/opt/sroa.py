"""sroa: scalar replacement of (byte-array) aggregates.

After IR refinement, the lifted per-function stack is an ``[N x i8]``
alloca accessed through constant-offset ``getelementptr`` + ``bitcast``
chains.  When every access is such a constant-offset scalar load/store and
the accessed byte ranges do not overlap at conflicting types, the array is
split into one scalar alloca per offset — after which ``mem2reg`` promotes
the former stack slots to SSA values.  This is the pass that lets the
fully-refined configuration approach native code quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lir import (
    Alloca,
    Cast,
    ConstantInt,
    Function,
    GEP,
    Instruction,
    Load,
    Store,
    Type,
    Value,
)


@dataclass
class _Access:
    inst: Instruction      # the load/store
    offset: int
    type: Type


def _trace_accesses(alloca: Alloca) -> list[_Access] | None:
    """All accesses as (instruction, byte offset, scalar type), or None if
    the alloca escapes or is accessed non-uniformly."""
    accesses: list[_Access] = []
    # worklist of (value, offset) pointer derivations
    work: list[tuple[Value, int]] = [(alloca, 0)]
    seen: set[int] = set()
    while work:
        value, offset = work.pop()
        if id(value) in seen:
            continue
        seen.add(id(value))
        for user in list(value.users):
            if isinstance(user, Load):
                if user.pointer is not value or user.ordering != "na":
                    return None
                accesses.append(_Access(user, offset, user.type))
            elif isinstance(user, Store):
                if (
                    user.pointer is not value
                    or user.value is value
                    or user.ordering != "na"
                ):
                    return None
                accesses.append(_Access(user, offset, user.value.type))
            elif isinstance(user, Cast) and user.op == "bitcast":
                work.append((user, offset))
            elif isinstance(user, GEP):
                if user.pointer is not value:
                    return None
                indices = user.indices
                if not all(isinstance(i, ConstantInt) for i in indices):
                    return None
                delta = indices[0].signed_value * user.source_type.size_bytes()  # type: ignore[union-attr]
                if len(indices) == 2:
                    delta += (
                        indices[1].signed_value  # type: ignore[union-attr]
                        * user.source_type.element.size_bytes()  # type: ignore[union-attr]
                    )
                work.append((user, offset + delta))
            else:
                return None  # escapes (ptrtoint, call, phi, ...)
    return accesses


def _partition(accesses: list[_Access]) -> dict[int, Type] | None:
    """offset → scalar type; None when ranges overlap inconsistently."""
    slots: dict[int, Type] = {}
    for acc in accesses:
        existing = slots.get(acc.offset)
        if existing is None:
            slots[acc.offset] = acc.type
        elif existing != acc.type:
            return None
    # Reject overlapping ranges (distinct offsets whose extents intersect).
    spans = sorted((off, off + ty.size_bytes()) for off, ty in slots.items())
    for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        if s2 < e1:
            return None
    return slots


def run_sroa(func: Function) -> bool:
    changed = False
    for bb in list(func.blocks):
        for inst in list(bb.instructions):
            if not isinstance(inst, Alloca) or not (
                inst.allocated_type.is_array
            ):
                continue
            accesses = _trace_accesses(inst)
            if accesses is None or not accesses:
                continue
            slots = _partition(accesses)
            if slots is None:
                continue
            scalar_allocas: dict[int, Alloca] = {}
            entry = func.entry
            for offset, ty in sorted(slots.items()):
                na = Alloca(ty, f"{inst.name}_o{offset}")
                entry.instructions.insert(0, na)
                na.parent = entry
                scalar_allocas[offset] = na
            for acc in accesses:
                na = scalar_allocas[acc.offset]
                if isinstance(acc.inst, Load):
                    acc.inst.set_operand(0, na)
                else:
                    acc.inst.set_operand(1, na)
            # Remaining users of the array are pure address derivations,
            # now dead.
            def _erase_chain(v: Value) -> None:
                for user in list(v.users):
                    if isinstance(user, (Cast, GEP)):
                        _erase_chain(user)
                for user in list(v.users):
                    if isinstance(user, (Cast, GEP)) and not user.users:
                        user.erase_from_parent()

            _erase_chain(inst)
            if not inst.users:
                inst.erase_from_parent()
                changed = True
    return changed
