"""Pass manager: named passes, standard pipelines, per-pass statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, NamedTuple

from .. import telemetry
from ..lir import Function, Module, verify_module
from ..lir.clone import clone_module
from ..profiler.workcounters import scope as work_scope, work
from .dce import run_adce, run_dce
from .dse import run_dse
from .gvn import run_gvn
from .inline import run_inline
from .instcombine import run_instcombine
from .licm import run_licm
from .mem2reg import run_mem2reg
from .reassociate import run_reassociate
from .sccp import run_ipsccp, run_sccp
from .simplifycfg import run_simplifycfg
from .sroa import run_sroa
from .unroll import run_unroll

FUNCTION_PASSES: dict[str, Callable[[Function], bool]] = {
    "mem2reg": run_mem2reg,
    "sroa": run_sroa,
    "instcombine": run_instcombine,
    "reassociate": run_reassociate,
    "gvn": run_gvn,
    "sccp": run_sccp,
    "licm": run_licm,
    "dse": run_dse,
    "dce": run_dce,
    "adce": run_adce,
    "simplifycfg": run_simplifycfg,
    "unroll": run_unroll,
}

MODULE_PASSES: dict[str, Callable[[Module], bool]] = {
    "ipsccp": run_ipsccp,
    "inline": run_inline,
}

# The default -O2-flavoured pipeline (iterated to a fixpoint by run_pipeline).
# sroa is deliberately not part of the default pipeline: splitting the
# lifted byte-array stack frame into scalars goes beyond what the paper's
# LLVM did on mctoll output; it is available separately as an ablation
# (see benchmarks/test_ablations.py).
STANDARD_PIPELINE = [
    "simplifycfg",
    "mem2reg",
    "instcombine",
    "reassociate",
    "sccp",
    "simplifycfg",
    "gvn",
    "instcombine",
    "licm",
    "dse",
    "adce",
    "ipsccp",
    "dce",
    "simplifycfg",
]


class PassRecord(NamedTuple):
    """One executed pass: instruction counts, fixpoint iteration, outcome."""

    name: str
    before: int
    after: int
    iteration: int = 0
    changed: bool = False


@dataclass
class PassStats:
    """Instruction counts around each executed pass, per fixpoint iteration."""

    records: list[PassRecord] = field(default_factory=list)
    iterations: int = 0

    def add(self, name: str, before: int, after: int,
            iteration: int = 0, changed: bool = False) -> None:
        self.records.append(PassRecord(name, before, after, iteration, changed))
        if iteration + 1 > self.iterations:
            self.iterations = iteration + 1

    def reduction_by_pass(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for rec in self.records:
            out[rec.name] = out.get(rec.name, 0) + (rec.before - rec.after)
        return out

    def reduction_by_iteration(self) -> dict[int, int]:
        """Instructions removed per fixpoint iteration."""
        out: dict[int, int] = {}
        for rec in self.records:
            out[rec.iteration] = out.get(rec.iteration, 0) + (rec.before - rec.after)
        return out

    def by_iteration(self) -> dict[int, list[PassRecord]]:
        out: dict[int, list[PassRecord]] = {}
        for rec in self.records:
            out.setdefault(rec.iteration, []).append(rec)
        return out

    def changed_passes(self, iteration: int | None = None) -> list[str]:
        """Names of passes that reported a change (optionally one iteration)."""
        return [
            rec.name for rec in self.records
            if rec.changed and (iteration is None or rec.iteration == iteration)
        ]


class PassManager:
    def __init__(self, verify: bool = False, tv=None) -> None:
        """``tv`` is an optional translation validator (an object with
        ``check_pass(before, after, name, iteration)``, i.e. a
        :class:`repro.analysis.tv.TVChecker`).  When set, every pass
        invocation is snapshotted and checked for refinement; TV also
        implies post-pass IR verification, since a structurally broken
        module would produce meaningless verdicts."""
        self.verify = verify or tv is not None
        self.tv = tv
        self.stats = PassStats()

    def run_pass(self, module: Module, name: str, iteration: int = 0) -> bool:
        before = module.instruction_count()
        snapshot = clone_module(module) if self.tv is not None else None
        with telemetry.span(name, category="pass", iteration=iteration), \
                work_scope(stage=name):
            if name in MODULE_PASSES:
                # A module pass visits (at least) every instruction once.
                work("opt.visits", before)
                changed = MODULE_PASSES[name](module)
            elif name in FUNCTION_PASSES:
                changed = False
                for func in module.functions.values():
                    if not func.is_declaration:
                        with work_scope(function=func.name):
                            work("opt.visits", func.instruction_count())
                            changed |= FUNCTION_PASSES[name](func)
            else:
                raise KeyError(f"unknown pass {name!r}")
        after = module.instruction_count()
        self.stats.add(name, before, after, iteration, changed)
        telemetry.count("opt.pass.runs", pass_name=name)
        if changed:
            telemetry.count("opt.pass.changed", pass_name=name)
            telemetry.count("opt.instructions_removed", before - after,
                            pass_name=name)
            if telemetry.remarks_enabled():
                telemetry.remark(
                    f"opt.{name}", "changed",
                    f"iteration {iteration}: changed module, "
                    f"{before} -> {after} instructions",
                    iteration=iteration, before=before, after=after)
        if self.verify:
            verify_module(module)
        if self.tv is not None:
            with telemetry.span("tv", category="tv", pass_name=name), \
                    work_scope(stage="tv"):
                self.tv.check_pass(snapshot, module, name, iteration)
        return changed

    def run_pipeline(
        self,
        module: Module,
        pipeline: list[str] | None = None,
        max_iterations: int = 3,
    ) -> PassStats:
        names = pipeline if pipeline is not None else STANDARD_PIPELINE
        for iteration in range(max_iterations):
            changed = False
            with telemetry.span(f"opt-iteration-{iteration}",
                                category="opt-iteration"):
                work("opt.iterations")
                for name in names:
                    changed |= self.run_pass(module, name, iteration)
            if not changed:
                break
        telemetry.count("opt.fixpoint_iterations", self.stats.iterations)
        return self.stats


def optimize_module(
    module: Module,
    pipeline: list[str] | None = None,
    verify: bool = False,
    max_iterations: int = 3,
    tv=None,
) -> PassStats:
    pm = PassManager(verify=verify, tv=tv)
    return pm.run_pipeline(module, pipeline, max_iterations)
