"""sccp / ipsccp: sparse conditional constant propagation.

``sccp`` runs the classic optimistic lattice algorithm (⊤ → constant → ⊥)
over SSA with reachability tracking: blocks only become executable when a
branch can actually reach them, so constants propagate through conditional
structure that plain folding misses.

``ipsccp`` extends it interprocedurally: when every call site of a
function passes the same constant for a parameter, the parameter is
replaced by that constant and the function bodies re-run through sccp.
"""

from __future__ import annotations

from typing import Optional, Union

from ..lir import (
    Argument,
    BinOp,
    Br,
    Call,
    Cast,
    Constant,
    ConstantFloat,
    ConstantInt,
    FCmp,
    Function,
    ICmp,
    Instruction,
    Module,
    Phi,
    Select,
    UndefValue,
    Value,
)
from ..lir.interp import _binop_apply, _fcmp_apply, _icmp_apply, _signed
from ..lir.types import FloatType, IntType
from .simplifycfg import run_simplifycfg

TOP = "top"
BOTTOM = "bottom"
Lattice = Union[str, int, float]  # TOP, BOTTOM, or a concrete constant


class _SCCP:
    def __init__(self, func: Function,
                 arg_facts: Optional[dict[int, Lattice]] = None) -> None:
        self.func = func
        self.values: dict[int, Lattice] = {}
        self.executable: set[int] = set()
        self.inst_work: list[Instruction] = []
        self.block_work = [func.entry]
        self.arg_facts = arg_facts or {}

    # ---- lattice -----------------------------------------------------------
    def value_of(self, v: Value) -> Lattice:
        if isinstance(v, ConstantInt):
            return v.value
        if isinstance(v, ConstantFloat):
            return v.value
        if isinstance(v, UndefValue):
            # Treat undef pessimistically: optimistically resolving it (the
            # LLVM-style TOP treatment) could pick a value inconsistent with
            # the reference interpreter, which reads undef as zero.
            return BOTTOM
        if isinstance(v, Constant):
            return BOTTOM  # globals/functions: a runtime address
        if isinstance(v, Argument):
            return self.arg_facts.get(v.index, BOTTOM)
        return self.values.get(id(v), TOP)

    def _set(self, inst: Instruction, value: Lattice) -> None:
        old = self.values.get(id(inst), TOP)
        if old == value:
            return
        if old is not TOP and value is not BOTTOM and old != value:
            value = BOTTOM
        self.values[id(inst)] = value
        for user in inst.users:
            self.inst_work.append(user)

    # ---- driver ----------------------------------------------------------------
    def run(self) -> None:
        while self.block_work or self.inst_work:
            while self.inst_work:
                inst = self.inst_work.pop()
                if inst.parent is not None and id(inst.parent) in self.executable:
                    self._visit(inst)
            if self.block_work:
                bb = self.block_work.pop()
                if id(bb) in self.executable:
                    continue
                self.executable.add(id(bb))
                for inst in bb.instructions:
                    self._visit(inst)

    def _mark_edge(self, target) -> None:
        if id(target) not in self.executable:
            self.block_work.append(target)
        else:
            for phi in target.phis():
                self.inst_work.append(phi)

    # ---- transfer functions -------------------------------------------------------
    def _visit(self, inst: Instruction) -> None:
        if isinstance(inst, Phi):
            result: Lattice = TOP
            for value, block in inst.incoming():
                if id(block) not in self.executable:
                    continue
                v = self.value_of(value)
                if v is TOP:
                    continue
                if result is TOP:
                    result = v
                elif result != v or v is BOTTOM:
                    result = BOTTOM
            self._set(inst, result)
            return
        if isinstance(inst, Br):
            if not inst.is_conditional:
                self._mark_edge(inst.targets[0])
                return
            cond = self.value_of(inst.cond)
            if cond is TOP:
                return
            if cond is BOTTOM:
                self._mark_edge(inst.targets[0])
                self._mark_edge(inst.targets[1])
            else:
                taken = inst.targets[0] if int(cond) & 1 else inst.targets[1]
                self._mark_edge(taken)
            return
        if isinstance(inst, BinOp):
            a = self.value_of(inst.lhs)
            b = self.value_of(inst.rhs)
            if a is BOTTOM or b is BOTTOM:
                self._set(inst, BOTTOM)
            elif a is TOP or b is TOP:
                pass
            else:
                try:
                    self._set(inst, _binop_apply(inst.op, a, b, inst.type))
                except Exception:
                    self._set(inst, BOTTOM)
            return
        if isinstance(inst, ICmp):
            a = self.value_of(inst.lhs)
            b = self.value_of(inst.rhs)
            if a is BOTTOM or b is BOTTOM:
                self._set(inst, BOTTOM)
            elif a is not TOP and b is not TOP:
                self._set(
                    inst, _icmp_apply(inst.pred, int(a), int(b), inst.lhs.type)
                )
            return
        if isinstance(inst, FCmp):
            a = self.value_of(inst.lhs)
            b = self.value_of(inst.rhs)
            if a is BOTTOM or b is BOTTOM:
                self._set(inst, BOTTOM)
            elif a is not TOP and b is not TOP:
                self._set(inst, _fcmp_apply(inst.pred, float(a), float(b)))
            return
        if isinstance(inst, Cast):
            v = self.value_of(inst.value)
            if v is BOTTOM:
                self._set(inst, BOTTOM)
            elif v is not TOP:
                folded = _fold_cast(inst, v)
                self._set(inst, BOTTOM if folded is None else folded)
            return
        if isinstance(inst, Select):
            c = self.value_of(inst.cond)
            if c is BOTTOM:
                a = self.value_of(inst.true_value)
                b = self.value_of(inst.false_value)
                if a is BOTTOM or b is BOTTOM or (
                    a is not TOP and b is not TOP and a != b
                ):
                    self._set(inst, BOTTOM)
                elif a is not TOP and a == b:
                    self._set(inst, a)
            elif c is not TOP:
                pick = inst.true_value if int(c) & 1 else inst.false_value
                v = self.value_of(pick)
                if v is not TOP:
                    self._set(inst, v)
            return
        if not inst.type.is_void:
            self._set(inst, BOTTOM)


def _fold_cast(inst: Cast, v) -> Optional[Lattice]:
    op = inst.op
    ty = inst.type
    if op in ("trunc", "zext") and isinstance(ty, IntType):
        return int(v) & ty.mask()
    if op == "sext" and isinstance(ty, IntType):
        return _signed(int(v), inst.value.type.bits) & ty.mask()
    if op in ("sitofp",):
        return float(_signed(int(v), inst.value.type.bits))
    if op == "uitofp":
        return float(int(v))
    if op in ("fptosi", "fptoui") and isinstance(ty, IntType):
        return int(v) & ty.mask()
    if op in ("fpext", "fptrunc"):
        return float(v)
    return None


def _apply_facts(func: Function, sccp: _SCCP) -> bool:
    changed = False
    for bb in func.blocks:
        for inst in list(bb.instructions):
            v = sccp.values.get(id(inst))
            if v is None or v in (TOP, BOTTOM) or inst.type.is_void:
                continue
            if isinstance(inst.type, IntType):
                const: Constant = ConstantInt(inst.type, int(v))
            elif isinstance(inst.type, FloatType):
                const = ConstantFloat(inst.type, float(v))
            else:
                continue
            inst.replace_all_uses_with(const)
            if not inst.has_side_effects():
                inst.erase_from_parent()
            changed = True
    return changed


def run_sccp(func: Function,
             arg_facts: Optional[dict[int, Lattice]] = None) -> bool:
    solver = _SCCP(func, arg_facts)
    solver.run()
    changed = _apply_facts(func, solver)
    changed |= run_simplifycfg(func)
    return changed


def run_ipsccp(module: Module) -> bool:
    """Interprocedural constant propagation across call sites."""
    changed = False
    # Gather, per function, the lattice of each argument over all calls.
    facts: dict[str, dict[int, Lattice]] = {
        name: {} for name in module.functions
    }
    seen_calls: dict[str, int] = {name: 0 for name in module.functions}
    for func in module.functions.values():
        for bb in func.blocks:
            for inst in bb.instructions:
                if not isinstance(inst, Call):
                    continue
                callee = inst.callee
                if not isinstance(callee, Function):
                    continue
                # Address-taken functions can be called indirectly (spawn).
                name = callee.name
                if name not in facts:
                    continue
                seen_calls[name] += 1
                for i, arg in enumerate(inst.args):
                    if isinstance(arg, ConstantInt):
                        v: Lattice = arg.value
                    elif isinstance(arg, ConstantFloat):
                        v = arg.value
                    else:
                        v = BOTTOM
                    prev = facts[name].get(i, TOP)
                    if prev is TOP:
                        facts[name][i] = v
                    elif prev != v:
                        facts[name][i] = BOTTOM

    address_taken = set()
    for func in module.functions.values():
        for user in func.users:
            if not (isinstance(user, Call) and user.callee is func):
                address_taken.add(func.name)
    for g_func in module.functions.values():
        for bb in g_func.blocks:
            for inst in bb.instructions:
                for op in inst.operands:
                    if isinstance(op, Function) and not (
                        isinstance(inst, Call) and inst.callee is op
                    ):
                        address_taken.add(op.name)

    for name, func in module.functions.items():
        if func.is_declaration:
            continue
        arg_facts = {
            i: v
            for i, v in facts[name].items()
            if v not in (TOP, BOTTOM)
        }
        if name in address_taken or seen_calls[name] == 0:
            arg_facts = {}
        if arg_facts:
            for i, v in arg_facts.items():
                arg = func.arguments[i]
                if isinstance(arg.type, IntType):
                    arg.replace_all_uses_with(ConstantInt(arg.type, int(v)))
                elif isinstance(arg.type, FloatType):
                    arg.replace_all_uses_with(
                        ConstantFloat(arg.type, float(v))
                    )
            changed = True
        changed |= run_sccp(func)
    return changed
