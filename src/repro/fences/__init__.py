"""Fence placement and merging (paper §7-8)."""

from .placement import (
    PlacementStats,
    count_fences,
    is_stack_address,
    merge_fences,
    place_fences,
)

__all__ = [
    "PlacementStats", "count_fences", "is_stack_address", "merge_fences",
    "place_fences",
]
