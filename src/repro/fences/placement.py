"""Fence placement (§8): enforce the x86→IR mapping of Figure 8a.

For every non-atomic memory access the x86→LIMM mapping demands

* ``ld  → ldna ; Frm``  (trailing read-to-memory fence)
* ``st  → Fww ; stna``  (leading write-write fence)

RMW and MFENCE were already lifted to ``RMWsc``/``Fsc`` by the translator.

Step 1 (stack elision): before fencing an access, the access must be
proven thread-local.  The fast path walks the pointer's use-def chain
through ``bitcast`` and ``getelementptr`` only, looking for an alloca
(:func:`is_stack_address`).  When the walk fails, the points-to/escape
analysis of :mod:`repro.analysis.pointsto` decides: it follows provenance
through ``phi``/``select``/integer arithmetic and knows which allocas
escaped, so accesses the syntactic walk conservatively fenced (the exact
pessimism Figure 14 measures) are elided when provably thread-local —
and, conversely, an alloca leaked to a callee is *not* treated as local
even though the walk reaches it.

Step 2 (merging, §7 "fence merging"): within a basic block, fences
separated only by instructions that cannot access memory merge into one
fence of the required strength (``Frm·Fww → Fsc``; like-kinded fences
collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from ..lir import Alloca, Cast, Fence, GEP, Load, Module, Store, Value
from ..provenance.origin import merge_origins, origins_of, x86_location


def _origin_addrs(inst) -> list[str]:
    """Hex x86 addresses for remark args (what explain correlates on)."""
    return [f"0x{o.addr:x}" for o in origins_of(inst)]


def is_stack_address(pointer: Value) -> bool:
    """Use-def walk through bitcast/gep looking for an alloca (§8 step 1).

    This is the syntactic fast path: no escape reasoning, no phi/select.
    Iterative, so arbitrarily deep gep/bitcast chains resolve (the old
    recursive form silently gave up past depth 64)."""
    seen: set[int] = set()
    value = pointer
    while id(value) not in seen:
        seen.add(id(value))
        if isinstance(value, Alloca):
            return True
        if isinstance(value, Cast) and value.op == "bitcast":
            value = value.value
        elif isinstance(value, GEP):
            value = value.pointer
        else:
            return False
    return False


@dataclass
class PlacementStats:
    loads_fenced: int = 0
    stores_fenced: int = 0
    skipped_stack: int = 0
    skipped_escape: int = 0   # elided by escape analysis, beyond the walk
    leaked_fenced: int = 0    # walk said stack, analysis says escaped

    @property
    def total_inserted(self) -> int:
        return self.loads_fenced + self.stores_fenced

    @property
    def total_elided(self) -> int:
        return self.skipped_stack + self.skipped_escape


def _thread_locality(pointer: Value, alias) -> str:
    """Classify an access address: ``"stack"`` (syntactic walk suffices),
    ``"escape"`` (only the points-to analysis proves it local),
    ``"leaked"`` (the walk reaches an alloca but it escaped — must fence)
    or ``"shared"``."""
    walk_hit = is_stack_address(pointer)
    if alias is None:
        return "stack" if walk_hit else "shared"
    if alias.is_thread_local(pointer):
        return "stack" if walk_hit else "escape"
    return "leaked" if walk_hit else "shared"


def place_fences(module: Module, use_analysis: bool = True) -> PlacementStats:
    """Insert Frm/Fww fences per the Fig. 8a mapping.  Idempotent per call
    (expects a module that has not been fence-placed yet).

    With ``use_analysis`` (the default) thread-locality is decided by the
    escape analysis, with :func:`is_stack_address` kept as the fast-path
    label; pass ``False`` for the seed behaviour (syntactic walk only)."""
    from ..analysis import analyze_function

    stats = PlacementStats()
    emit = telemetry.remarks_enabled()

    def skip_remark(func, bb, inst, what: str, how: str) -> None:
        if not emit:
            return
        reason = (
            "use-def chain reaches an alloca" if how == "stack"
            else "escape analysis proves the address thread-local")
        telemetry.remark(
            "place-fences", "fence-skipped",
            f"non-atomic {what} is thread-local ({reason}); "
            "no fence needed",
            function=func.name, block=bb.name,
            instruction=f"{what} {inst.pointer.short_name()}",
            via=how, x86=x86_location(inst), origins=_origin_addrs(inst))

    for func in module.functions.values():
        if func.is_declaration:
            continue
        alias = analyze_function(func, module) if use_analysis else None
        for bb in func.blocks:
            for inst in list(bb.instructions):
                if isinstance(inst, Load) and inst.ordering == "na":
                    local = _thread_locality(inst.pointer, alias)
                    if local in ("stack", "escape"):
                        if local == "stack":
                            stats.skipped_stack += 1
                        else:
                            stats.skipped_escape += 1
                        skip_remark(func, bb, inst, "load", local)
                        continue
                    if local == "leaked":
                        stats.leaked_fenced += 1
                    fence = Fence("rm")
                    # Blame the fence on the access it protects.
                    fence.origins = origins_of(inst)
                    fence.placement = (
                        f"placed: Frm after load {inst.pointer.short_name()} "
                        f"[{x86_location(inst) or 'no x86 origin'}] "
                        "(Fig. 8a ld -> ldna;Frm)",
                    )
                    bb.insert_after(inst, fence)
                    stats.loads_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Frm inserted after non-atomic load (Fig. 8a "
                            "ld -> ldna;Frm mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"load {inst.pointer.short_name()}",
                            fence="rm", x86=x86_location(inst),
                            origins=_origin_addrs(inst))
                elif isinstance(inst, Store) and inst.ordering == "na":
                    local = _thread_locality(inst.pointer, alias)
                    if local in ("stack", "escape"):
                        if local == "stack":
                            stats.skipped_stack += 1
                        else:
                            stats.skipped_escape += 1
                        skip_remark(func, bb, inst, "store", local)
                        continue
                    if local == "leaked":
                        stats.leaked_fenced += 1
                    fence = Fence("ww")
                    fence.origins = origins_of(inst)
                    fence.placement = (
                        f"placed: Fww before store {inst.pointer.short_name()} "
                        f"[{x86_location(inst) or 'no x86 origin'}] "
                        "(Fig. 8a st -> Fww;stna)",
                    )
                    bb.insert_before(inst, fence)
                    stats.stores_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Fww inserted before non-atomic store (Fig. 8a "
                            "st -> Fww;stna mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"store {inst.pointer.short_name()}",
                            fence="ww", x86=x86_location(inst),
                            origins=_origin_addrs(inst))
    telemetry.count("fences.inserted", stats.loads_fenced, kind="rm")
    telemetry.count("fences.inserted", stats.stores_fenced, kind="ww")
    telemetry.count("fences.skipped_stack", stats.skipped_stack)
    telemetry.count("fences.skipped_escape", stats.skipped_escape)
    if stats.leaked_fenced:
        telemetry.count("fences.leaked_fenced", stats.leaked_fenced)
    return stats


def merge_fences(module: Module) -> int:
    """Merge runs of fences with no intervening memory access.  Returns the
    number of fences removed."""
    removed = 0
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            removed += _merge_block(bb, func.name)
    telemetry.count("fences.merged_away", removed)
    return removed


def _merge_block(bb, func_name: str = "") -> int:
    removed = 0
    run: list[Fence] = []
    emit = telemetry.remarks_enabled()

    def flush() -> int:
        nonlocal run
        if len(run) < 2:
            run = []
            return 0
        kinds = {f.kind for f in run}
        if "sc" in kinds or ("rm" in kinds and "ww" in kinds):
            merged_kind = "sc"
        elif kinds == {"rm"}:
            merged_kind = "rm"
        else:
            merged_kind = "ww"
        # The survivor blames every access the run's fences protected; the
        # per-fence decision logs are concatenated plus a merge event.
        merged_origins: tuple = ()
        merged_log: tuple = ()
        for f in run:
            merged_origins = merge_origins(merged_origins, origins_of(f))
            merged_log = merged_log + tuple(getattr(f, "placement", ()))
        merged_log = merged_log + (
            f"merged: run of {len(run)} fences "
            f"({'+'.join(f.kind for f in run)}) -> F{merged_kind} (section 7)",
        )
        if emit:
            telemetry.remark(
                "merge-fences", "fence-merged",
                f"merged run of {len(run)} adjacent fences "
                f"({'+'.join(f.kind for f in run)}) into one F{merged_kind} "
                f"(section 7 merging rules)",
                function=func_name, block=bb.name,
                instruction=f"fence.{merged_kind}",
                run_length=len(run), merged_kind=merged_kind,
                origins=[f"0x{o.addr:x}" for o in merged_origins])
        keeper = run[0]
        count = 0
        for extra in run[1:]:
            extra.erase_from_parent()
            count += 1
        if keeper.kind != merged_kind:
            new = Fence(merged_kind)
            keeper.parent.insert_before(keeper, new)
            keeper.erase_from_parent()
            keeper = new
        keeper.origins = merged_origins
        keeper.placement = merged_log
        run = []
        return count

    for inst in list(bb.instructions):
        if isinstance(inst, Fence):
            run.append(inst)
        elif inst.accesses_memory():
            removed += flush()
        # pure instructions in between are transparent
    removed += flush()
    return removed


def count_fences(module: Module) -> int:
    total = 0
    for func in module.functions.values():
        for bb in func.blocks:
            for inst in bb.instructions:
                if isinstance(inst, Fence):
                    total += 1
    return total
