"""Fence placement (§8): enforce the x86→IR mapping of Figure 8a.

For every non-atomic memory access the x86→LIMM mapping demands

* ``ld  → ldna ; Frm``  (trailing read-to-memory fence)
* ``st  → Fww ; stna``  (leading write-write fence)

RMW and MFENCE were already lifted to ``RMWsc``/``Fsc`` by the translator.

Step 1 (stack elision): before fencing an access, the pointer operand's
use-def chain is walked through ``bitcast`` and ``getelementptr`` only; if
it reaches a stack allocation the access is thread-local and needs no
fence.  Before IR refinement the lifted stack is hidden behind
``inttoptr`` chains, so this test fails and the access is conservatively
fenced — the mechanism behind Figure 14.

Step 2 (merging, §7 "fence merging"): within a basic block, fences
separated only by instructions that cannot access memory merge into one
fence of the required strength (``Frm·Fww → Fsc``; like-kinded fences
collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from ..lir import (
    Alloca,
    Cast,
    Fence,
    Function,
    GEP,
    Instruction,
    Load,
    Module,
    Store,
    Value,
)


def is_stack_address(pointer: Value, _depth: int = 0) -> bool:
    """Use-def walk through bitcast/gep looking for an alloca (§8 step 1)."""
    if _depth > 64:
        return False
    if isinstance(pointer, Alloca):
        return True
    if isinstance(pointer, Cast) and pointer.op == "bitcast":
        return is_stack_address(pointer.value, _depth + 1)
    if isinstance(pointer, GEP):
        return is_stack_address(pointer.pointer, _depth + 1)
    return False


@dataclass
class PlacementStats:
    loads_fenced: int = 0
    stores_fenced: int = 0
    skipped_stack: int = 0
    merged_away: int = 0

    @property
    def total_inserted(self) -> int:
        return self.loads_fenced + self.stores_fenced


def place_fences(module: Module) -> PlacementStats:
    """Insert Frm/Fww fences per the Fig. 8a mapping.  Idempotent per call
    (expects a module that has not been fence-placed yet)."""
    stats = PlacementStats()
    emit = telemetry.remarks_enabled()
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            for inst in list(bb.instructions):
                if isinstance(inst, Load) and inst.ordering == "na":
                    if is_stack_address(inst.pointer):
                        stats.skipped_stack += 1
                        if emit:
                            telemetry.remark(
                                "place-fences", "fence-skipped",
                                "non-atomic load is stack-local (use-def "
                                "chain reaches an alloca); no fence needed",
                                function=func.name, block=bb.name,
                                instruction=f"load {inst.pointer.short_name()}")
                        continue
                    fence = Fence("rm")
                    bb.insert_after(inst, fence)
                    stats.loads_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Frm inserted after non-atomic load (Fig. 8a "
                            "ld -> ldna;Frm mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"load {inst.pointer.short_name()}",
                            fence="rm")
                elif isinstance(inst, Store) and inst.ordering == "na":
                    if is_stack_address(inst.pointer):
                        stats.skipped_stack += 1
                        if emit:
                            telemetry.remark(
                                "place-fences", "fence-skipped",
                                "non-atomic store is stack-local (use-def "
                                "chain reaches an alloca); no fence needed",
                                function=func.name, block=bb.name,
                                instruction=f"store {inst.pointer.short_name()}")
                        continue
                    fence = Fence("ww")
                    bb.insert_before(inst, fence)
                    stats.stores_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Fww inserted before non-atomic store (Fig. 8a "
                            "st -> Fww;stna mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"store {inst.pointer.short_name()}",
                            fence="ww")
    telemetry.count("fences.inserted", stats.loads_fenced, kind="rm")
    telemetry.count("fences.inserted", stats.stores_fenced, kind="ww")
    telemetry.count("fences.skipped_stack", stats.skipped_stack)
    return stats


def merge_fences(module: Module) -> int:
    """Merge runs of fences with no intervening memory access.  Returns the
    number of fences removed."""
    removed = 0
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            removed += _merge_block(bb, func.name)
    telemetry.count("fences.merged_away", removed)
    return removed


def _merge_block(bb, func_name: str = "") -> int:
    removed = 0
    run: list[Fence] = []
    emit = telemetry.remarks_enabled()

    def flush() -> int:
        nonlocal run
        if len(run) < 2:
            run = []
            return 0
        kinds = {f.kind for f in run}
        if "sc" in kinds or ("rm" in kinds and "ww" in kinds):
            merged_kind = "sc"
        elif kinds == {"rm"}:
            merged_kind = "rm"
        else:
            merged_kind = "ww"
        if emit:
            telemetry.remark(
                "merge-fences", "fence-merged",
                f"merged run of {len(run)} adjacent fences "
                f"({'+'.join(f.kind for f in run)}) into one F{merged_kind} "
                f"(section 7 merging rules)",
                function=func_name, block=bb.name,
                instruction=f"fence.{merged_kind}",
                run_length=len(run), merged_kind=merged_kind)
        keeper = run[0]
        count = 0
        for extra in run[1:]:
            extra.erase_from_parent()
            count += 1
        if keeper.kind != merged_kind:
            new = Fence(merged_kind)
            keeper.parent.insert_before(keeper, new)
            keeper.erase_from_parent()
        run = []
        return count

    for inst in list(bb.instructions):
        if isinstance(inst, Fence):
            run.append(inst)
        elif inst.accesses_memory():
            removed += flush()
        # pure instructions in between are transparent
    removed += flush()
    return removed


def count_fences(module: Module) -> int:
    total = 0
    for func in module.functions.values():
        for bb in func.blocks:
            for inst in bb.instructions:
                if isinstance(inst, Fence):
                    total += 1
    return total
