"""Fence placement (§8): enforce the x86→IR mapping of Figure 8a.

For every non-atomic memory access the x86→LIMM mapping demands

* ``ld  → ldna ; Frm``  (trailing read-to-memory fence)
* ``st  → Fww ; stna``  (leading write-write fence)

RMW and MFENCE were already lifted to ``RMWsc``/``Fsc`` by the translator.

Step 1 (stack elision): before fencing an access, the access must be
proven thread-local.  The fast path walks the pointer's use-def chain
through ``bitcast`` and ``getelementptr`` only, looking for an alloca
(:func:`is_stack_address`).  When the walk fails, the points-to/escape
analysis of :mod:`repro.analysis.pointsto` decides: it follows provenance
through ``phi``/``select``/integer arithmetic and knows which allocas
escaped, so accesses the syntactic walk conservatively fenced (the exact
pessimism Figure 14 measures) are elided when provably thread-local —
and, conversely, an alloca leaked to a callee is *not* treated as local
even though the walk reaches it.

Step 2 (merging, §7 "fence merging"): within a basic block, fences
separated only by instructions that cannot access memory merge into one
fence of the required strength (``Frm·Fww → Fsc``; like-kinded fences
collapse).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import telemetry
from ..profiler.workcounters import work
from ..lir import (
    Alloca,
    Cast,
    Fence,
    GEP,
    Load,
    Module,
    Phi,
    Select,
    Store,
    Value,
)
from ..provenance.origin import merge_origins, origins_of, x86_location


def _origin_addrs(inst) -> list[str]:
    """Hex x86 addresses for remark args (what explain correlates on)."""
    return [f"0x{o.addr:x}" for o in origins_of(inst)]


def is_stack_address(pointer: Value) -> bool:
    """Use-def walk through bitcast/gep looking for an alloca (§8 step 1),
    extended through ``select`` and single-incoming ``phi`` whose operands
    *all* reach allocas.

    This is the syntactic fast path: no escape reasoning.  Every branch of
    the walk must bottom out at an alloca for the answer to be True (AND
    semantics), so a ``select`` between two allocas is stack but a
    ``select`` of an alloca and an argument is not.  Iterative, so
    arbitrarily deep chains resolve; revisiting a ``phi`` (a use-def
    cycle with no alloca root) answers False."""
    seen: set[int] = set()
    work: list[Value] = [pointer]
    while work:
        value = work.pop()
        if isinstance(value, Alloca):
            continue
        if id(value) in seen:
            if isinstance(value, Phi):
                return False  # degenerate phi cycle: no alloca root
            continue  # DAG sharing: this branch was already proven
        seen.add(id(value))
        if isinstance(value, Cast) and value.op == "bitcast":
            work.append(value.value)
        elif isinstance(value, GEP):
            work.append(value.pointer)
        elif isinstance(value, Select):
            work.append(value.true_value)
            work.append(value.false_value)
        elif isinstance(value, Phi):
            incoming = value.incoming()
            if len(incoming) != 1:
                return False
            work.append(incoming[0][0])
        else:
            return False
    return True


@dataclass
class PlacementStats:
    loads_fenced: int = 0
    stores_fenced: int = 0
    skipped_stack: int = 0
    skipped_escape: int = 0   # elided by intraprocedural escape analysis
    skipped_interproc: int = 0  # elided only via interprocedural summaries
    leaked_fenced: int = 0    # walk said stack, analysis says escaped
    already_fenced: int = 0   # adjacent fence already present (idempotence)

    @property
    def total_inserted(self) -> int:
        return self.loads_fenced + self.stores_fenced

    @property
    def total_elided(self) -> int:
        return self.skipped_stack + self.skipped_escape \
            + self.skipped_interproc


def _thread_locality(pointer: Value, alias, intra_alias=None) -> str:
    """Classify an access address: ``"stack"`` (syntactic walk suffices),
    ``"escape"`` (the intraprocedural points-to analysis proves it local),
    ``"interproc"`` (only the interprocedural summaries prove it — the
    alloca is handed to a well-behaved callee), ``"leaked"`` (the walk
    reaches an alloca but it escaped — must fence) or ``"shared"``.

    ``intra_alias`` is a zero-argument callable returning the function's
    *intraprocedural* AliasInfo, used only to split ``escape`` from
    ``interproc`` when ``alias`` is summary-based."""
    walk_hit = is_stack_address(pointer)
    if alias is None:
        return "stack" if walk_hit else "shared"
    if alias.is_thread_local(pointer):
        # The interprocedural tier is what proved it when the function's
        # own analysis (calls escape everything) could not — even if the
        # syntactic walk reaches the alloca, the *proof* is the summary.
        if intra_alias is not None and \
                not intra_alias().is_thread_local(pointer):
            return "interproc"
        return "stack" if walk_hit else "escape"
    return "leaked" if walk_hit else "shared"


def place_fences(module: Module, use_analysis: bool = True,
                 module_analysis=None) -> PlacementStats:
    """Insert Frm/Fww fences per the Fig. 8a mapping.  Idempotent per
    call: an access already protected by an adjacent fence of the right
    kind is skipped, so re-running on a placed module changes nothing.

    With ``use_analysis`` (the default) thread-locality is decided by the
    *interprocedural* escape analysis (bottom-up callee summaries, see
    ``repro.analysis.summaries``), with :func:`is_stack_address` kept as
    the fast-path label; pass ``False`` for the seed behaviour (syntactic
    walk only).  ``module_analysis`` lets callers share an already-built
    :class:`~repro.analysis.summaries.ModuleAnalysis`."""
    from ..analysis import analyze_function
    from ..analysis.summaries import analyze_module

    stats = PlacementStats()
    emit = telemetry.remarks_enabled()
    ma = None
    if use_analysis:
        ma = module_analysis or analyze_module(module)

    def skip_remark(func, bb, inst, what: str, how: str) -> None:
        if not emit:
            return
        reason = {
            "stack": "use-def chain reaches an alloca",
            "escape": "escape analysis proves the address thread-local",
            "interproc": "interprocedural summaries prove the address "
                         "thread-local (callee does not publish it)",
        }[how]
        telemetry.remark(
            "place-fences", "fence-skipped",
            f"non-atomic {what} is thread-local ({reason}); "
            "no fence needed",
            function=func.name, block=bb.name,
            instruction=f"{what} {inst.pointer.short_name()}",
            via=how, x86=x86_location(inst), origins=_origin_addrs(inst))

    accesses_examined = 0
    for func in module.functions.values():
        if func.is_declaration:
            continue
        alias = ma.alias(func) if use_analysis else None
        intra_cache: list = []

        def intra_alias(func=func):
            if not intra_cache:
                intra_cache.append(analyze_function(func, module))
            return intra_cache[0]

        for bb in func.blocks:
            insts = list(bb.instructions)
            for pos, inst in enumerate(insts):
                if isinstance(inst, Load) and inst.ordering == "na":
                    accesses_examined += 1
                    if pos + 1 < len(insts) and \
                            isinstance(insts[pos + 1], Fence) and \
                            insts[pos + 1].kind in ("rm", "sc"):
                        stats.already_fenced += 1
                        continue
                    local = _thread_locality(inst.pointer, alias,
                                             intra_alias)
                    if local in ("stack", "escape", "interproc"):
                        if local == "stack":
                            stats.skipped_stack += 1
                        elif local == "escape":
                            stats.skipped_escape += 1
                        else:
                            stats.skipped_interproc += 1
                        skip_remark(func, bb, inst, "load", local)
                        continue
                    if local == "leaked":
                        stats.leaked_fenced += 1
                    fence = Fence("rm")
                    # Blame the fence on the access it protects.
                    fence.origins = origins_of(inst)
                    fence.placement = (
                        f"placed: Frm after load {inst.pointer.short_name()} "
                        f"[{x86_location(inst) or 'no x86 origin'}] "
                        "(Fig. 8a ld -> ldna;Frm)",
                    )
                    bb.insert_after(inst, fence)
                    stats.loads_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Frm inserted after non-atomic load (Fig. 8a "
                            "ld -> ldna;Frm mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"load {inst.pointer.short_name()}",
                            fence="rm", x86=x86_location(inst),
                            origins=_origin_addrs(inst))
                elif isinstance(inst, Store) and inst.ordering == "na":
                    accesses_examined += 1
                    if pos > 0 and isinstance(insts[pos - 1], Fence) and \
                            insts[pos - 1].kind in ("ww", "sc"):
                        stats.already_fenced += 1
                        continue
                    local = _thread_locality(inst.pointer, alias,
                                             intra_alias)
                    if local in ("stack", "escape", "interproc"):
                        if local == "stack":
                            stats.skipped_stack += 1
                        elif local == "escape":
                            stats.skipped_escape += 1
                        else:
                            stats.skipped_interproc += 1
                        skip_remark(func, bb, inst, "store", local)
                        continue
                    if local == "leaked":
                        stats.leaked_fenced += 1
                    fence = Fence("ww")
                    fence.origins = origins_of(inst)
                    fence.placement = (
                        f"placed: Fww before store {inst.pointer.short_name()} "
                        f"[{x86_location(inst) or 'no x86 origin'}] "
                        "(Fig. 8a st -> Fww;stna)",
                    )
                    bb.insert_before(inst, fence)
                    stats.stores_fenced += 1
                    if emit:
                        telemetry.remark(
                            "place-fences", "fence-inserted",
                            "Fww inserted before non-atomic store (Fig. 8a "
                            "st -> Fww;stna mapping)",
                            function=func.name, block=bb.name,
                            instruction=f"store {inst.pointer.short_name()}",
                            fence="ww", x86=x86_location(inst),
                            origins=_origin_addrs(inst))
    work("place.accesses", accesses_examined)
    work("place.fences", stats.loads_fenced + stats.stores_fenced)
    telemetry.count("fences.inserted", stats.loads_fenced, kind="rm")
    telemetry.count("fences.inserted", stats.stores_fenced, kind="ww")
    telemetry.count("fences.skipped_stack", stats.skipped_stack)
    telemetry.count("fences.skipped_escape", stats.skipped_escape)
    telemetry.count("fences.skipped_interproc", stats.skipped_interproc)
    if stats.leaked_fenced:
        telemetry.count("fences.leaked_fenced", stats.leaked_fenced)
    return stats


def merge_fences(module: Module) -> int:
    """Merge runs of fences with no intervening memory access.  Within a
    block, runs collapse to one fence of the required strength (§7); then
    a trailing fence merges with a leading fence across single-successor /
    single-predecessor edges (the pair is adjacent on every execution, so
    one fence of the combined strength at the head of the successor
    covers both).  Returns the number of fences removed."""
    removed = 0
    for func in module.functions.values():
        if func.is_declaration:
            continue
        for bb in func.blocks:
            removed += _merge_block(bb, func.name)
        removed += _merge_cross_block(func)
    telemetry.count("fences.merged_away", removed)
    return removed


def _combine_kinds(a: str, b: str) -> str:
    kinds = {a, b}
    if "sc" in kinds or kinds == {"rm", "ww"}:
        return "sc"
    return a


def _trailing_fence(bb):
    """The last fence of ``bb`` with no memory access after it."""
    for inst in reversed(list(bb.instructions)):
        if isinstance(inst, Fence):
            return inst
        if inst.accesses_memory():
            return None
    return None


def _leading_fence(bb):
    """The first fence of ``bb`` with no memory access before it."""
    for inst in bb.instructions:
        if isinstance(inst, Fence):
            return inst
        if inst.accesses_memory():
            return None
    return None


def _merge_cross_block(func) -> int:
    """§7 merging across CFG edges: when block A's only successor is B and
    B's only predecessor is A, a fence trailing A (no access after it) and
    a fence leading B (no access before it) order exactly the same access
    pairs, so they merge into one fence of the combined strength at B."""
    removed = 0
    emit = telemetry.remarks_enabled()
    changed = True
    while changed:
        changed = False
        for bb in list(func.blocks):
            succs = bb.successors()
            if len(succs) != 1 or succs[0] is bb:
                continue
            nxt = succs[0]
            if len(nxt.predecessors()) != 1:
                continue
            first = _trailing_fence(bb)
            second = _leading_fence(nxt)
            if first is None or second is None or first is second:
                continue
            merged_kind = _combine_kinds(first.kind, second.kind)
            merged_origins = merge_origins(origins_of(first),
                                           origins_of(second))
            merged_log = (tuple(getattr(first, "placement", ()))
                          + tuple(getattr(second, "placement", ()))
                          + (f"merged: cross-block {first.kind}+"
                             f"{second.kind} -> F{merged_kind} over edge "
                             f"{bb.name} -> {nxt.name} (section 7)",))
            if emit:
                telemetry.remark(
                    "merge-fences", "fence-merged-cross-block",
                    f"merged F{first.kind} (end of {bb.name}) with "
                    f"F{second.kind} (head of {nxt.name}) into one "
                    f"F{merged_kind} across the single-pred/single-succ "
                    "edge (section 7 merging rules)",
                    function=func.name, block=nxt.name,
                    instruction=f"fence.{merged_kind}",
                    merged_kind=merged_kind,
                    origins=[f"0x{o.addr:x}" for o in merged_origins])
            keeper = second
            if keeper.kind != merged_kind:
                new = Fence(merged_kind)
                nxt.insert_before(keeper, new)
                keeper.erase_from_parent()
                keeper = new
            keeper.origins = merged_origins
            keeper.placement = merged_log
            first.erase_from_parent()
            removed += 1
            changed = True
    return removed


def _merge_block(bb, func_name: str = "") -> int:
    removed = 0
    run: list[Fence] = []
    emit = telemetry.remarks_enabled()

    def flush() -> int:
        nonlocal run
        if len(run) < 2:
            run = []
            return 0
        kinds = {f.kind for f in run}
        if "sc" in kinds or ("rm" in kinds and "ww" in kinds):
            merged_kind = "sc"
        elif kinds == {"rm"}:
            merged_kind = "rm"
        else:
            merged_kind = "ww"
        # The survivor blames every access the run's fences protected; the
        # per-fence decision logs are concatenated plus a merge event.
        merged_origins: tuple = ()
        merged_log: tuple = ()
        for f in run:
            merged_origins = merge_origins(merged_origins, origins_of(f))
            merged_log = merged_log + tuple(getattr(f, "placement", ()))
        merged_log = merged_log + (
            f"merged: run of {len(run)} fences "
            f"({'+'.join(f.kind for f in run)}) -> F{merged_kind} (section 7)",
        )
        if emit:
            telemetry.remark(
                "merge-fences", "fence-merged",
                f"merged run of {len(run)} adjacent fences "
                f"({'+'.join(f.kind for f in run)}) into one F{merged_kind} "
                f"(section 7 merging rules)",
                function=func_name, block=bb.name,
                instruction=f"fence.{merged_kind}",
                run_length=len(run), merged_kind=merged_kind,
                origins=[f"0x{o.addr:x}" for o in merged_origins])
        keeper = run[0]
        count = 0
        for extra in run[1:]:
            extra.erase_from_parent()
            count += 1
        if keeper.kind != merged_kind:
            new = Fence(merged_kind)
            keeper.parent.insert_before(keeper, new)
            keeper.erase_from_parent()
            keeper = new
        keeper.origins = merged_origins
        keeper.placement = merged_log
        run = []
        return count

    for inst in list(bb.instructions):
        if isinstance(inst, Fence):
            run.append(inst)
        elif inst.accesses_memory():
            removed += flush()
        # pure instructions in between are transparent
    removed += flush()
    return removed


def count_fences(module: Module) -> int:
    total = 0
    for func in module.functions.values():
        for bb in func.blocks:
            for inst in bb.instructions:
                if isinstance(inst, Fence):
                    total += 1
    return total
