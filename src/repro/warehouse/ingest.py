"""Ingest: load bench trajectories, profile artifacts and the run
ledger into the warehouse.

Every ingestor is **idempotent**: facts are keyed by their natural key
(run identity + metric name, or a content hash for ledger lines) and
written with ``INSERT OR REPLACE``, so ingesting the same file twice
leaves the store byte-for-byte identical.  That property is what lets
CI re-ingest on every push without bookkeeping.

What maps to what:

* each ``trajectory`` entry of ``BENCH_translate.json`` becomes one
  ``bench`` run with per-config summary metrics (scalars plus flattened
  ``work.<counter>`` totals) and the deterministic ``work_digest``;
* the file's current snapshot (``programs`` / ``loader`` sections)
  attaches to the *newest* trajectory entry — per-program metrics,
  nested ``racecheck.*`` / ``provenance.*`` scalars, and the full
  stage×counter×function ``work_cells`` matrix (bench schema v8; older
  snapshots fall back to per-counter totals with an empty stage);
* a ``repro profile --json`` artifact becomes one ``profile`` run with
  its work cells and collapsed-stack samples (flamegraph diffs);
* each ledger line is stored under the sha256 of its canonical JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

from .store import Warehouse

_PathLike = Union[str, os.PathLike]

#: Nested program-row dicts flattened to dotted scalar metrics.
_NESTED_PROGRAM_KEYS = ("racecheck", "provenance")


def _num(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    return None


def _put_scalar_metrics(store: Warehouse, run_id: int, config: str,
                        row: dict) -> int:
    """Store every numeric scalar of ``row`` (flattening ``work`` totals
    to ``work.<counter>``); returns the number of metrics written."""
    written = 0
    for key in sorted(row):
        value = row[key]
        if key == "work" and isinstance(value, dict):
            for counter in sorted(value):
                n = _num(value[counter])
                if n is not None:
                    store.put_summary_metric(
                        run_id, config, f"work.{counter}", n)
                    written += 1
            continue
        n = _num(value)
        if n is not None:
            store.put_summary_metric(run_id, config, key, n)
            written += 1
    return written


def _put_program_row(store: Warehouse, run_id: int, config: str,
                     program: str, row: dict) -> int:
    """One bench ``programs[program][config]`` (or loader) row."""
    written = 0
    for key in sorted(row):
        value = row[key]
        if key in _NESTED_PROGRAM_KEYS and isinstance(value, dict):
            for sub in sorted(value):
                n = _num(value[sub])
                if n is not None:
                    store.put_program_metric(
                        run_id, config, program, f"{key}.{sub}", n)
                    written += 1
            continue
        if key == "work" and isinstance(value, dict):
            for counter in sorted(value):
                n = _num(value[counter])
                if n is not None:
                    store.put_program_metric(
                        run_id, config, program, f"work.{counter}", n)
                    written += 1
            continue
        if key == "work_digest" and isinstance(value, str):
            continue  # digests live in summary_digests, per config
        if key == "work_cells" and isinstance(value, list):
            for cell in value:
                if isinstance(cell, (list, tuple)) and len(cell) == 4:
                    stage, counter, function, count = cell
                    store.put_work_cell(run_id, config, program,
                                        str(stage), str(counter),
                                        str(function), int(count))
            continue
        n = _num(value)
        if n is not None:
            store.put_program_metric(run_id, config, program, key, n)
            written += 1
    # Pre-v8 rows carry only per-counter totals: keep them comparable by
    # storing stage=''/function='' cells so cell diffs degrade gracefully.
    if "work_cells" not in row and isinstance(row.get("work"), dict):
        for counter in sorted(row["work"]):
            n = _num(row["work"][counter])
            if n is not None:
                store.put_work_cell(run_id, config, program, "", counter,
                                    "", int(n))
    return written


def ingest_bench(store: Warehouse, path: _PathLike) -> dict:
    """Ingest ``BENCH_translate.json``; returns a count summary."""
    path = Path(path)
    data = json.loads(path.read_text())
    source = path.name
    trajectory = data.get("trajectory") or []
    counts = {"runs": 0, "summary_metrics": 0, "program_metrics": 0,
              "work_cells": 0}

    newest_run_id: Optional[int] = None
    newest_key: tuple = ()
    for entry in trajectory:
        sha = str(entry.get("sha", "unknown"))
        dirty = bool(entry.get("dirty", False))
        timestamp = str(entry.get("timestamp", ""))
        size = str(entry.get("size", ""))
        version = entry.get("version")
        run_id = store.upsert_run(
            "bench", sha, dirty, timestamp, size,
            int(version) if version is not None else None, source)
        counts["runs"] += 1
        for config in sorted(entry.get("summary") or {}):
            row = entry["summary"][config]
            if not isinstance(row, dict):
                continue
            counts["summary_metrics"] += _put_scalar_metrics(
                store, run_id, config, row)
            digest = row.get("work_digest")
            if isinstance(digest, str) and digest:
                store.put_digest(run_id, config, digest)
        key = (timestamp, sha)
        if key >= newest_key:
            newest_key, newest_run_id = key, run_id

    # The file's snapshot sections describe the run that last wrote the
    # file, i.e. the newest trajectory entry.
    if newest_run_id is not None:
        for program in sorted(data.get("programs") or {}):
            configs = data["programs"][program]
            if not isinstance(configs, dict):
                continue
            for config in sorted(configs):
                row = configs[config]
                if isinstance(row, dict):
                    counts["program_metrics"] += _put_program_row(
                        store, newest_run_id, config, program, row)
        for program in sorted(data.get("loader") or {}):
            row = data["loader"][program]
            if isinstance(row, dict):
                counts["program_metrics"] += _put_program_row(
                    store, newest_run_id, "loader", program, row)
        counts["work_cells"] = len(store.work_cells(newest_run_id))
    store.commit()
    return counts


def _parse_collapsed(collapsed: object) -> dict[str, int]:
    """Collapsed stacks from either form the profiler emits: the
    flamegraph.pl text (``"a;b 42"`` lines, :meth:`Profile.collapsed`)
    or an already-aggregated ``{stack: samples}`` mapping."""
    out: dict[str, int] = {}
    if isinstance(collapsed, dict):
        for stack, n in collapsed.items():
            value = _num(n)
            if value is not None:
                out[str(stack)] = int(value)
        return out
    if isinstance(collapsed, str):
        for line in collapsed.splitlines():
            stack, _, count = line.rpartition(" ")
            if stack and count.isdigit():
                out[stack] = out.get(stack, 0) + int(count)
    return out


def ingest_profile(store: Warehouse, path: _PathLike) -> dict:
    """Ingest one ``repro profile --json`` artifact."""
    path = Path(path)
    data = json.loads(path.read_text())
    sha = str(data.get("sha", "unknown"))
    dirty = bool(data.get("dirty", False))
    program = str(data.get("source", path.stem))
    config = str(data.get("config", ""))
    run_id = store.upsert_run("profile", sha, dirty, "",
                              "", None, path.name)
    work = data.get("work") or {}
    for cell in work.get("cells") or []:
        if isinstance(cell, (list, tuple)) and len(cell) == 4:
            stage, counter, function, count = cell
            store.put_work_cell(run_id, config, program, str(stage),
                                str(counter), str(function), int(count))
    for counter, total in sorted((work.get("counters") or {}).items()):
        n = _num(total)
        if n is not None:
            store.put_summary_metric(run_id, config, f"work.{counter}", n)
    digest = work.get("digest")
    if isinstance(digest, str) and digest:
        store.put_digest(run_id, config, digest)
    for stack, samples in sorted(_parse_collapsed(
            data.get("collapsed")).items()):
        store.put_stack(run_id, stack, samples)
    for key in ("builds",):
        n = _num(data.get(key))
        if n is not None:
            store.put_summary_metric(run_id, config, key, n)
    profile = data.get("profile")
    if isinstance(profile, dict):
        for key in ("total", "duration", "hz"):
            n = _num(profile.get(key))
            if n is not None:
                store.put_summary_metric(run_id, config,
                                         f"profile.{key}", n)
    store.commit()
    return {"runs": 1, "work_cells": len(store.work_cells(run_id)),
            "stacks": len(store.stacks(run_id))}


def ingest_ledger(store: Warehouse, root: _PathLike = ".") -> dict:
    """Ingest every well-formed line of ``.repro/ledger.jsonl`` (and its
    rotated generation), keyed by content hash."""
    from ..profiler.ledger import read_ledger

    entries = read_ledger(root)
    for entry in entries:
        canonical = json.dumps(entry, sort_keys=True,
                               separators=(",", ":"))
        entry_hash = hashlib.sha256(canonical.encode()).hexdigest()
        rc = entry.get("rc")
        store.put_ledger_entry(
            entry_hash,
            str(entry.get("sha", "unknown")),
            bool(entry.get("dirty", False)),
            str(entry.get("timestamp", "")),
            str(entry.get("command", "")),
            entry.get("schema"),
            entry.get("config_digest"),
            int(rc) if isinstance(rc, (int, bool)) else None,
            canonical)
    store.commit()
    return {"ledger_entries": len(entries)}


def ingest_all(store: Warehouse, root: _PathLike = ".",
               bench: str = "BENCH_translate.json") -> dict:
    """Ingest everything discoverable under ``root``: the bench
    trajectory file (when present), the run ledger, and any
    ``*.profile.json`` artifacts in ``root``."""
    root = Path(root)
    counts: dict[str, int] = {}

    def _merge(sub: dict) -> None:
        for key, value in sub.items():
            counts[key] = counts.get(key, 0) + value

    bench_path = root / bench
    if bench_path.exists():
        _merge(ingest_bench(store, bench_path))
    _merge(ingest_ledger(store, root))
    for artifact in sorted(root.glob("*.profile.json")):
        try:
            _merge(ingest_profile(store, artifact))
        except (json.JSONDecodeError, OSError, ValueError):
            continue
    return counts


__all__ = ["ingest_all", "ingest_bench", "ingest_ledger",
           "ingest_profile"]
