"""``repro dash --html``: one self-contained observability page.

The renderer reads the warehouse and emits a **single HTML file** with
zero external assets — styles inline, charts as inline SVG sparklines —
so the artifact can be attached to a CI run or mailed around and still
render offline, forever.

Design decisions (from the dataviz method):

* **Small multiples, one series per sparkline.**  Each metric gets its
  own chart instead of stacking many hues on one axis, so there is no
  palette-collision problem and no dual axis.  The single series wears
  the one validated accent blue; everything textual wears text tokens.
* **Anomaly flags are icon + label, never color alone** — a flagged
  point renders "▲ anomaly" text next to the marker.
* **Dark mode is selected, not flipped**: both palettes are validated
  steps, applied via CSS custom properties under a media query and a
  ``data-theme`` override.
* **Determinism**: no generation timestamps in the body, sorted
  iteration everywhere, fixed float formatting — the same warehouse
  contents produce a byte-identical file (a tested contract).

Anomaly detection reuses the bench regression gate's robust statistics
(:func:`repro.profiler.regression._median` / ``_mad``): a trajectory
point is flagged when it sits more than ``threshold`` MADs from the
median of the clean history (dirty runs are charted but excluded from
the baseline, matching the gate's policy).
"""

from __future__ import annotations

import html
from typing import Optional

from ..profiler.regression import _mad, _median
from .store import RunInfo, Warehouse

#: MADs-from-median beyond which a trajectory point is flagged.
ANOMALY_MADS = 4.0

#: Summary metrics charted per config, in render order.
_TRAJECTORY_METRICS = (
    ("translate_seconds_total", "wall time (s)"),
    ("work.opt.visits", "opt visits"),
    ("work.pointsto.transfers", "points-to transfers"),
    ("work.codegen.instructions", "codegen instructions"),
    ("fences_elided_total", "fences elided (total)"),
    ("fences_elided_beyond_walk_total", "fences elided: escape"),
    ("fences_elided_interproc_total", "fences elided: interproc"),
    ("fences_elided_delayset_total", "fences elided: delayset"),
    ("fences_elided_sync_total", "fences elided: sync"),
    ("fencecheck_violations_total", "fencecheck violations"),
    ("racecheck_racy_total", "racecheck: racy accesses"),
    ("tv_proved_total", "tv: proved pass invocations"),
    ("tv_unknown_total", "tv: unknown pass invocations"),
    ("tv_refuted_total", "tv: refuted (miscompiles)"),
    ("peak_rss_bytes", "peak RSS (bytes)"),
)

_W, _H, _PAD = 260, 56, 6

_CSS = """
:root {
  --surface: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --series: #2a78d6;
  --grid: #e4e3df;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --series: #3987e5;
    --grid: #3a3937;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
  --series: #2a78d6; --grid: #e4e3df;
}
[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
  --series: #3987e5; --grid: #3a3937;
}
body {
  background: var(--surface); color: var(--ink);
  font: 14px/1.45 system-ui, sans-serif;
  margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
}
h1, h2, h3 { font-weight: 600; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
.sub { color: var(--ink-2); }
.grid {
  display: grid; gap: 1rem 1.5rem;
  grid-template-columns: repeat(auto-fill, minmax(280px, 1fr));
}
.spark { border: 1px solid var(--grid); border-radius: 6px;
         padding: .6rem .8rem; }
.spark .name { color: var(--ink-2); font-size: .82rem; }
.spark .value { font-size: 1.1rem; font-variant-numeric: tabular-nums; }
.spark svg { display: block; width: 100%; height: auto; margin-top: .3rem; }
.spark polyline { fill: none; stroke: var(--series); stroke-width: 2; }
.spark circle { fill: var(--series); }
.flag { color: var(--ink); font-size: .8rem; }
table { border-collapse: collapse; margin: .6rem 0;
        font-variant-numeric: tabular-nums; }
th, td { border-bottom: 1px solid var(--grid); padding: .25rem .6rem;
         text-align: right; }
th { color: var(--ink-2); font-weight: 500; }
th:first-child, td:first-child { text-align: left; }
details { margin: .4rem 0; }
summary { cursor: pointer; color: var(--ink); }
code { color: var(--ink-2); }
"""


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:,.4f}".rstrip("0").rstrip(".")


def _esc(text: object) -> str:
    return html.escape(str(text), quote=True)


def anomalies(values: list[float], clean: list[bool],
              threshold: float = ANOMALY_MADS) -> list[bool]:
    """Flag points sitting > ``threshold`` MADs from the clean-history
    median (the regression gate's robust-noise policy)."""
    baseline = [v for v, ok in zip(values, clean) if ok]
    if len(baseline) < 3:
        return [False] * len(values)
    med = _median(baseline)
    mad = _mad(baseline, med)
    # A near-constant baseline has MAD ~ 0; floor the spread at 1% of
    # the median so ordinary jitter on a flat series is not flagged.
    spread = max(mad, abs(med) * 0.01, 1e-12)
    return [abs(v - med) / spread > threshold for v in values]


def _sparkline(values: list[float], flags: list[bool]) -> str:
    """One inline-SVG sparkline (polyline + last-point marker +
    anomaly markers).  Coordinates are rounded to fixed precision so
    the output is byte-stable."""
    n = len(values)
    if n == 0:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0

    def xy(i: int, v: float) -> tuple[float, float]:
        x = _PAD + (_W - 2 * _PAD) * (i / (n - 1) if n > 1 else 0.5)
        y = _H - _PAD - (_H - 2 * _PAD) * ((v - lo) / span)
        return round(x, 2), round(y, 2)

    points = " ".join(f"{x},{y}" for x, y in
                      (xy(i, v) for i, v in enumerate(values)))
    marks = []
    for i, (v, flagged) in enumerate(zip(values, flags)):
        if not flagged and i != n - 1:
            continue
        x, y = xy(i, v)
        r = 4 if flagged else 3
        marks.append(f'<circle cx="{x}" cy="{y}" r="{r}"/>')
        if flagged:
            ty = _PAD + 8 if y > _H / 2 else _H - _PAD
            marks.append(
                f'<text x="{x}" y="{ty}" font-size="9" '
                f'text-anchor="middle" fill="currentColor">'
                f'&#9650; anomaly</text>')
    return (f'<svg viewBox="0 0 {_W} {_H}" role="img" '
            f'aria-label="trend">'
            f'<polyline points="{points}"/>' + "".join(marks) + "</svg>")


def _series(store: Warehouse, runs: list[RunInfo], config: str,
            metric: str) -> Optional[tuple[list[float], list[bool]]]:
    values: list[float] = []
    clean: list[bool] = []
    present = False
    for run in runs:
        row = store.summary(run.id).get(config, {})
        if metric in row:
            present = True
        values.append(row.get(metric, 0.0))
        clean.append(not run.dirty)
    return (values, clean) if present else None


def _spark_card(name: str, values: list[float],
                flags: list[bool]) -> str:
    latest = values[-1]
    flagged = any(flags)
    flag_html = (' <span class="flag">&#9650; anomaly in history</span>'
                 if flagged else "")
    return (f'<div class="spark"><div class="name">{_esc(name)}</div>'
            f'<div class="value">{_fmt(latest)}{flag_html}</div>'
            f'{_sparkline(values, flags)}</div>')


def _trajectory_section(store: Warehouse, runs: list[RunInfo]) -> list[str]:
    out: list[str] = []
    configs = sorted({config for run in runs
                      for config in store.summary(run.id)})
    for config in configs:
        cards = []
        for metric, label in _TRAJECTORY_METRICS:
            series = _series(store, runs, config, metric)
            if series is None:
                continue
            values, clean = series
            cards.append(_spark_card(label, values,
                                     anomalies(values, clean)))
        if not cards:
            continue
        out.append(f"<h2>Trajectory — <code>{_esc(config)}</code></h2>")
        out.append('<div class="grid">' + "".join(cards) + "</div>")
    return out


def _health_section(store: Warehouse, runs: list[RunInfo]) -> list[str]:
    """Bench health: violations / racy totals across the trajectory plus
    the run list itself."""
    out = ["<h2>Runs</h2>",
           "<table><tr><th>sha</th><th>kind</th><th>timestamp</th>"
           "<th>size</th><th>dirty</th><th>bench v</th></tr>"]
    for run in runs:
        dirty = "&#9888; dirty" if run.dirty else "clean"
        out.append(
            f"<tr><td><code>{_esc(run.sha)}</code></td>"
            f"<td>{_esc(run.kind)}</td><td>{_esc(run.timestamp)}</td>"
            f"<td>{_esc(run.size)}</td><td>{dirty}</td>"
            f"<td>{_esc(run.version if run.version is not None else '')}"
            f"</td></tr>")
    out.append("</table>")
    return out


def _program_section(store: Warehouse, run: RunInfo) -> list[str]:
    metrics = store.program_metrics(run.id)
    if not metrics:
        return []
    out = [f"<h2>Per-program drill-down — <code>{_esc(run.sha)}</code>"
           "</h2>"]
    by_config: dict[str, list[tuple[str, dict[str, float]]]] = {}
    for (config, program), row in sorted(metrics.items()):
        by_config.setdefault(config, []).append((program, row))
    for config in sorted(by_config):
        rows = by_config[config]
        columns = sorted({metric for _, row in rows for metric in row})
        out.append(f"<details><summary><code>{_esc(config)}</code> "
                   f"({len(rows)} program(s))</summary>")
        out.append("<table><tr><th>program</th>"
                   + "".join(f"<th>{_esc(c)}</th>" for c in columns)
                   + "</tr>")
        for program, row in rows:
            cells = "".join(
                f"<td>{_fmt(row[c]) if c in row else '&middot;'}</td>"
                for c in columns)
            out.append(f"<tr><td>{_esc(program)}</td>{cells}</tr>")
        out.append("</table></details>")
    return out


def _ledger_section(store: Warehouse) -> list[str]:
    entries = store.ledger_entries()
    if not entries:
        return []
    by_command: dict[str, int] = {}
    failures = 0
    for entry in entries:
        by_command[str(entry.get("command", ""))] = \
            by_command.get(str(entry.get("command", "")), 0) + 1
        rc = entry.get("rc")
        if isinstance(rc, int) and rc != 0:
            failures += 1
    out = ["<h2>Ledger activity</h2>",
           f'<p class="sub">{len(entries)} entries'
           + (f" &mdash; &#9888; {failures} non-zero exit(s)"
              if failures else ", all rc=0 or unrecorded") + "</p>",
           "<table><tr><th>command</th><th>entries</th></tr>"]
    for command in sorted(by_command):
        out.append(f"<tr><td><code>{_esc(command)}</code></td>"
                   f"<td>{by_command[command]}</td></tr>")
    out.append("</table>")
    return out


def build_dashboard(store: Warehouse, title: str = "repro dashboard") -> str:
    """Render the whole warehouse to one self-contained HTML page.

    Deterministic: equal warehouse contents yield byte-identical HTML.
    """
    runs = store.runs("bench")
    body: list[str] = [f"<h1>{_esc(title)}</h1>"]
    if runs:
        newest = runs[-1]
        body.append(
            f'<p class="sub">{len(runs)} bench run(s); newest '
            f'<code>{_esc(newest.sha)}</code>'
            f'{" (dirty)" if newest.dirty else ""}'
            f' at {_esc(newest.timestamp)}</p>')
        body += _trajectory_section(store, runs)
        body += _health_section(store, runs)
        body += _program_section(store, newest)
    else:
        body.append('<p class="sub">No bench runs ingested yet — run '
                    '<code>repro bench</code> then '
                    '<code>repro warehouse ingest</code>.</p>')
    body += _ledger_section(store)
    return ("<!doctype html>\n<html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" "
            "content=\"width=device-width, initial-scale=1\">"
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


__all__ = ["ANOMALY_MADS", "anomalies", "build_dashboard"]
