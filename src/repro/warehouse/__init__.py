"""repro.warehouse — the cross-run observability store.

Three layers over one stdlib-``sqlite3`` database:

* :mod:`~repro.warehouse.ingest` loads bench trajectories
  (``BENCH_translate.json``), ``repro profile --json`` artifacts and
  the run ledger into natural-key fact tables, idempotently;
* :mod:`~repro.warehouse.diff` joins two runs and ranks the deltas —
  wall time with a noise/work-change verdict from the deterministic
  work digests, stage×function work cells, fence elisions per tier,
  pass effectiveness, flamegraph frame shares;
* :mod:`~repro.warehouse.dashboard` renders the whole trajectory to a
  single self-contained HTML page with inline-SVG sparklines and
  MAD-based anomaly flags.

CLI: ``repro warehouse ingest|runs``, ``repro diff A B``,
``repro dash --html``.
"""

from .dashboard import ANOMALY_MADS, anomalies, build_dashboard
from .diff import (DiffReport, diff_runs, render_markdown, render_text,
                   to_dict, to_json)
from .ingest import ingest_all, ingest_bench, ingest_ledger, ingest_profile
from .schema import SCHEMA_VERSION, migrate, schema_version
from .store import DEFAULT_DB, RunInfo, Warehouse, open_warehouse

__all__ = [
    "ANOMALY_MADS",
    "DEFAULT_DB",
    "DiffReport",
    "RunInfo",
    "SCHEMA_VERSION",
    "Warehouse",
    "anomalies",
    "build_dashboard",
    "diff_runs",
    "ingest_all",
    "ingest_bench",
    "ingest_ledger",
    "ingest_profile",
    "migrate",
    "open_warehouse",
    "render_markdown",
    "render_text",
    "schema_version",
    "to_dict",
    "to_json",
]
