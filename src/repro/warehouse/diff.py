"""``repro diff``: ranked, noise-aware deltas between two runs.

The join is by natural key — config for summary scalars, (config,
program, stage, counter, function) for work cells, frame for
flamegraph stacks — and every ranking is deterministic: absolute delta
descending, then key ascending, so the same two runs always render the
same report byte for byte.

The noise oracle is the deterministic work digest: when both runs
carry the same digest for a config, the pipeline performed *identical*
work there, so any wall-time delta is scheduler/machine noise; when
digests differ, the delta reflects a real algorithmic change.  Reports
label every time delta with that verdict instead of asking the reader
to guess.

Fence accounting is reported per elision tier so a shift between
tiers (e.g. the interprocedural analysis starting to catch fences the
delay-set tier used to) is visible even when the total is unchanged:

* ``walk`` — same-location walk (total minus the named tiers),
* ``escape`` — escape analysis beyond the walk (``beyond_walk``),
* ``interproc`` — interprocedural summaries,
* ``delayset`` — delay-set cycle pruning,
* ``sync`` — synchronization-refined (lock-protected) elision.

Translation-validation verdict totals (``tv_proved_total`` /
``tv_unknown_total`` / ``tv_refuted_total``, bench schema v9) get their
own section: a nonzero ``refuted`` on the candidate side is a
miscompile regression and is flagged loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .store import RunInfo, Warehouse

#: Named fence-elision tiers (summary metric suffix per tier).
FENCE_TIERS = (
    ("escape", "fences_elided_beyond_walk_total"),
    ("interproc", "fences_elided_interproc_total"),
    ("delayset", "fences_elided_delayset_total"),
    ("sync", "fences_elided_sync_total"),
)

#: Translation-validation verdict totals (summary metric per verdict).
TV_METRICS = (
    ("proved", "tv_proved_total"),
    ("unknown", "tv_unknown_total"),
    ("refuted", "tv_refuted_total"),
)

#: How many rows each ranked section keeps by default.
DEFAULT_TOP = 15


@dataclass
class DiffReport:
    """Everything ``repro diff A B`` computed, ready to render."""

    run_a: RunInfo
    run_b: RunInfo
    #: config -> {a, b, delta, pct, verdict('noise'|'work-change'|'unknown')}
    times: dict[str, dict] = field(default_factory=dict)
    #: ranked [(config, counter, a, b, delta)]
    counters: list[tuple[str, str, float, float, float]] = \
        field(default_factory=list)
    #: ranked [(config, program, stage, counter, function, a, b, delta)]
    cells: list[tuple[str, str, str, str, str, int, int, int]] = \
        field(default_factory=list)
    #: config -> tier -> {a, b, delta}
    fences: dict[str, dict[str, dict]] = field(default_factory=dict)
    #: config -> verdict ('proved'|'unknown'|'refuted') -> {a, b, delta}
    tv: dict[str, dict[str, dict]] = field(default_factory=dict)
    #: ranked [(stage/pass, a, b, delta)] for opt.* work (pass effect)
    passes: list[tuple[str, int, int, int]] = field(default_factory=list)
    #: ranked [(frame, a_samples, b_samples, delta_share)]
    frames: list[tuple[str, int, int, float]] = field(default_factory=list)


def _verdict(digest_a: Optional[str], digest_b: Optional[str]) -> str:
    if not digest_a or not digest_b:
        return "unknown"
    return "noise" if digest_a == digest_b else "work-change"


def _fence_tiers(row: dict[str, float]) -> dict[str, float]:
    total = row.get("fences_elided_total", 0.0)
    tiers = {name: row.get(metric, 0.0) for name, metric in FENCE_TIERS}
    tiers["walk"] = max(0.0, total - sum(tiers.values()))
    tiers["total"] = total
    return tiers


def diff_runs(store: Warehouse, run_a: RunInfo, run_b: RunInfo,
              top: int = DEFAULT_TOP) -> DiffReport:
    """Join two runs and rank every delta (A = baseline, B = candidate)."""
    report = DiffReport(run_a=run_a, run_b=run_b)
    summary_a = store.summary(run_a.id)
    summary_b = store.summary(run_b.id)
    digests_a = store.digests(run_a.id)
    digests_b = store.digests(run_b.id)
    configs = sorted(set(summary_a) | set(summary_b))

    counter_rows: list[tuple[str, str, float, float, float]] = []
    for config in configs:
        row_a = summary_a.get(config, {})
        row_b = summary_b.get(config, {})
        for key in ("translate_seconds_total", "ingest_seconds_total"):
            if key in row_a or key in row_b:
                a, b = row_a.get(key, 0.0), row_b.get(key, 0.0)
                report.times[config] = {
                    "metric": key,
                    "a": a,
                    "b": b,
                    "delta": b - a,
                    "pct": (100.0 * (b - a) / a) if a else 0.0,
                    "verdict": _verdict(digests_a.get(config),
                                        digests_b.get(config)),
                }
                break
        for metric in sorted(set(row_a) | set(row_b)):
            if not metric.startswith("work."):
                continue
            a, b = row_a.get(metric, 0.0), row_b.get(metric, 0.0)
            if a != b:
                counter_rows.append(
                    (config, metric[len("work."):], a, b, b - a))
        if any(m.startswith("fences_") for m in set(row_a) | set(row_b)):
            tiers_a = _fence_tiers(row_a)
            tiers_b = _fence_tiers(row_b)
            shifted = {
                tier: {"a": tiers_a[tier], "b": tiers_b[tier],
                       "delta": tiers_b[tier] - tiers_a[tier]}
                for tier in ("walk", "escape", "interproc", "delayset",
                             "sync", "total")
            }
            if any(row["delta"] for row in shifted.values()) or \
                    tiers_a["total"] or tiers_b["total"]:
                report.fences[config] = shifted
        if any(m.startswith("tv_") for m in set(row_a) | set(row_b)):
            verdicts = {
                name: {"a": row_a.get(metric, 0.0),
                       "b": row_b.get(metric, 0.0),
                       "delta": (row_b.get(metric, 0.0)
                                 - row_a.get(metric, 0.0))}
                for name, metric in TV_METRICS
            }
            if any(v["a"] or v["b"] for v in verdicts.values()):
                report.tv[config] = verdicts
    counter_rows.sort(key=lambda r: (-abs(r[4]), r[0], r[1]))
    report.counters = counter_rows[:top]

    cells_a = store.work_cells(run_a.id)
    cells_b = store.work_cells(run_b.id)
    if not (cells_a and cells_b):
        # Only one side carries an attribution matrix (e.g. a fresh
        # warehouse where just the newest snapshot has cells): pairwise
        # cell deltas would all be meaningless 0 -> X rows, so skip
        # them and let the summary-counter section carry the story.
        cells_a = cells_b = {}
    cell_rows: list[tuple[str, str, str, str, str, int, int, int]] = []
    pass_totals: dict[str, tuple[int, int]] = {}
    for key in set(cells_a) | set(cells_b):
        a, b = cells_a.get(key, 0), cells_b.get(key, 0)
        config, program, stage, counter, function = key
        if counter.startswith("opt."):
            pa, pb = pass_totals.get(stage or "(unscoped)", (0, 0))
            pass_totals[stage or "(unscoped)"] = (pa + a, pb + b)
        if a != b:
            cell_rows.append(
                (config, program, stage, counter, function, a, b, b - a))
    cell_rows.sort(key=lambda r: (-abs(r[7]), r[0], r[1], r[2], r[3], r[4]))
    report.cells = cell_rows[:top]
    report.passes = sorted(
        ((stage, a, b, b - a) for stage, (a, b) in pass_totals.items()
         if a != b),
        key=lambda r: (-abs(r[3]), r[0]))[:top]

    stacks_a = store.stacks(run_a.id)
    stacks_b = store.stacks(run_b.id)
    if stacks_a or stacks_b:
        total_a = sum(stacks_a.values()) or 1
        total_b = sum(stacks_b.values()) or 1
        frame_a: dict[str, int] = {}
        frame_b: dict[str, int] = {}
        for stacks, frames in ((stacks_a, frame_a), (stacks_b, frame_b)):
            for stack, n in stacks.items():
                leaf = stack.rsplit(";", 1)[-1]
                frames[leaf] = frames.get(leaf, 0) + n
        rows = []
        for frame in set(frame_a) | set(frame_b):
            a, b = frame_a.get(frame, 0), frame_b.get(frame, 0)
            share_delta = b / total_b - a / total_a
            if a != b or share_delta:
                rows.append((frame, a, b, round(share_delta, 6)))
        rows.sort(key=lambda r: (-abs(r[3]), r[0]))
        report.frames = rows[:top]
    return report


# ---- renderers --------------------------------------------------------------

def to_dict(report: DiffReport) -> dict:
    """JSON view (stable key order; byte-identical for equal inputs)."""
    return {
        "run_a": {"sha": report.run_a.sha, "dirty": report.run_a.dirty,
                  "timestamp": report.run_a.timestamp,
                  "kind": report.run_a.kind},
        "run_b": {"sha": report.run_b.sha, "dirty": report.run_b.dirty,
                  "timestamp": report.run_b.timestamp,
                  "kind": report.run_b.kind},
        "times": report.times,
        "counters": [list(r) for r in report.counters],
        "cells": [list(r) for r in report.cells],
        "fences": report.fences,
        "tv": report.tv,
        "passes": [list(r) for r in report.passes],
        "frames": [list(r) for r in report.frames],
    }


def to_json(report: DiffReport) -> str:
    return json.dumps(to_dict(report), sort_keys=True, indent=2) + "\n"


def _sign(x: float) -> str:
    return f"{x:+g}"


def render_text(report: DiffReport) -> str:
    lines = [f"== repro diff: {report.run_a.label} -> "
             f"{report.run_b.label} =="]
    if report.times:
        lines.append("")
        lines.append("-- wall time (digest verdict separates noise from "
                     "real work changes) --")
        for config in sorted(report.times):
            row = report.times[config]
            lines.append(
                f"  {config:<8} {row['a']:9.4f}s -> {row['b']:9.4f}s  "
                f"({row['delta']:+.4f}s, {row['pct']:+6.1f}%)  "
                f"[{row['verdict']}]")
    if report.counters:
        lines.append("")
        lines.append("-- work-counter deltas (ranked) --")
        for config, counter, a, b, delta in report.counters:
            lines.append(f"  {config:<8} {counter:<24} "
                         f"{a:12g} -> {b:12g}  ({_sign(delta)})")
    if report.cells:
        lines.append("")
        lines.append("-- stage x function work cells (ranked) --")
        for config, program, stage, counter, function, a, b, d in \
                report.cells:
            where = f"{stage or '(unscoped)'}:{function or '(module)'}"
            lines.append(f"  {config:<8} {program:<10} {where:<34} "
                         f"{counter:<22} {a:>10} -> {b:<10} ({_sign(d)})")
    if report.fences:
        lines.append("")
        lines.append("-- fence elisions per tier --")
        for config in sorted(report.fences):
            tiers = report.fences[config]
            parts = []
            for tier in ("walk", "escape", "interproc", "delayset",
                         "sync", "total"):
                row = tiers[tier]
                parts.append(f"{tier} {row['a']:g}->{row['b']:g}"
                             + (f" ({_sign(row['delta'])})"
                                if row["delta"] else ""))
            lines.append(f"  {config:<8} " + "  ".join(parts))
    if report.tv:
        lines.append("")
        lines.append("-- translation-validation verdicts "
                     "(refuted != 0 is a miscompile) --")
        for config in sorted(report.tv):
            verdicts = report.tv[config]
            parts = []
            for name, _metric in TV_METRICS:
                row = verdicts[name]
                parts.append(f"{name} {row['a']:g}->{row['b']:g}"
                             + (f" ({_sign(row['delta'])})"
                                if row["delta"] else ""))
            flag = "  !! REFUTED" if verdicts["refuted"]["b"] else ""
            lines.append(f"  {config:<8} " + "  ".join(parts) + flag)
    if report.passes:
        lines.append("")
        lines.append("-- pass effectiveness (opt.* work per pass) --")
        for stage, a, b, delta in report.passes:
            lines.append(f"  {stage:<22} {a:>12} -> {b:<12} "
                         f"({_sign(delta)})")
    if report.frames:
        lines.append("")
        lines.append("-- flamegraph frame share deltas (ranked) --")
        for frame, a, b, share in report.frames:
            lines.append(f"  {frame:<48} {a:>7} -> {b:<7} "
                         f"({share:+.2%} of samples)")
    if len(lines) == 1:
        lines.append("  (no differences)")
    return "\n".join(lines)


def render_markdown(report: DiffReport) -> str:
    lines = [f"## Diff: `{report.run_a.sha}` → `{report.run_b.sha}`", ""]
    if report.times:
        lines += ["### Wall time", "",
                  "| config | A (s) | B (s) | delta | verdict |",
                  "|---|---:|---:|---:|---|"]
        for config in sorted(report.times):
            row = report.times[config]
            lines.append(
                f"| {config} | {row['a']:.4f} | {row['b']:.4f} | "
                f"{row['delta']:+.4f} ({row['pct']:+.1f}%) | "
                f"{row['verdict']} |")
        lines.append("")
    if report.counters:
        lines += ["### Work counters", "",
                  "| config | counter | A | B | delta |",
                  "|---|---|---:|---:|---:|"]
        for config, counter, a, b, delta in report.counters:
            lines.append(f"| {config} | {counter} | {a:g} | {b:g} | "
                         f"{_sign(delta)} |")
        lines.append("")
    if report.cells:
        lines += ["### Stage × function cells", "",
                  "| config | program | stage | counter | function "
                  "| A | B | delta |",
                  "|---|---|---|---|---|---:|---:|---:|"]
        for config, program, stage, counter, function, a, b, d in \
                report.cells:
            lines.append(
                f"| {config} | {program} | {stage or '(unscoped)'} | "
                f"{counter} | {function or '(module)'} | {a} | {b} | "
                f"{_sign(d)} |")
        lines.append("")
    if report.fences:
        lines += ["### Fence elisions per tier", "",
                  "| config | walk | escape | interproc | delayset "
                  "| sync | total |",
                  "|---|---:|---:|---:|---:|---:|---:|"]
        for config in sorted(report.fences):
            tiers = report.fences[config]
            cells = []
            for tier in ("walk", "escape", "interproc", "delayset",
                         "sync", "total"):
                row = tiers[tier]
                cells.append(f"{row['a']:g}→{row['b']:g}")
            lines.append(f"| {config} | " + " | ".join(cells) + " |")
        lines.append("")
    if report.tv:
        lines += ["### Translation-validation verdicts", "",
                  "| config | proved | unknown | refuted |",
                  "|---|---:|---:|---:|"]
        for config in sorted(report.tv):
            verdicts = report.tv[config]
            cells = []
            for name, _metric in TV_METRICS:
                row = verdicts[name]
                cells.append(f"{row['a']:g}→{row['b']:g}")
            lines.append(f"| {config} | " + " | ".join(cells) + " |")
        lines.append("")
    if report.passes:
        lines += ["### Pass effectiveness (opt.* work)", "",
                  "| pass | A | B | delta |", "|---|---:|---:|---:|"]
        for stage, a, b, delta in report.passes:
            lines.append(f"| {stage} | {a} | {b} | {_sign(delta)} |")
        lines.append("")
    if report.frames:
        lines += ["### Flamegraph frames", "",
                  "| frame | A | B | share delta |", "|---|---:|---:|---:|"]
        for frame, a, b, share in report.frames:
            lines.append(f"| `{frame}` | {a} | {b} | {share:+.2%} |")
        lines.append("")
    if len(lines) == 2:
        lines.append("_No differences._")
    return "\n".join(lines).rstrip() + "\n"


__all__ = ["DEFAULT_TOP", "DiffReport", "FENCE_TIERS", "TV_METRICS",
           "diff_runs", "render_markdown", "render_text", "to_dict",
           "to_json"]
