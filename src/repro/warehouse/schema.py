"""Warehouse schema: versioned sqlite DDL with forward migrations.

The schema version lives in ``PRAGMA user_version``.  :func:`migrate`
applies every migration past the stored version in order, inside one
transaction per step, so a database created by an older build upgrades
in place the first time a newer build opens it — and a fresh database
is simply "migrate from 0".

Design notes:

* **Natural keys everywhere.**  Every fact table carries a UNIQUE
  constraint over its logical key and is written with ``INSERT OR
  REPLACE``, which is what makes re-ingesting the same artifact a
  no-op (idempotence is a tested contract, not a hope).
* **A run is the unit of comparison.**  One row in ``runs`` per
  recorded observation of the translator at a commit: a bench
  trajectory entry, a profile artifact, a trace artifact.  Ledger lines
  are activity records, not comparable runs, so they live in their own
  content-hash-keyed table.
* **Narrow fact tables, one value per row** (``metric`` / ``value``),
  rather than wide ones: schema evolution in this repo has been a new
  counter or fence tier per PR, and a narrow layout absorbs those with
  zero DDL.
"""

from __future__ import annotations

import sqlite3

#: Current schema version (``PRAGMA user_version`` after migration).
SCHEMA_VERSION = 2

_V1_DDL = """
CREATE TABLE IF NOT EXISTS runs (
    id        INTEGER PRIMARY KEY,
    kind      TEXT NOT NULL,          -- 'bench' | 'profile' | 'trace'
    sha       TEXT NOT NULL,
    dirty     INTEGER NOT NULL DEFAULT 0,
    timestamp TEXT NOT NULL DEFAULT '',
    size      TEXT NOT NULL DEFAULT '',
    version   INTEGER,
    source    TEXT NOT NULL DEFAULT '',
    UNIQUE (kind, sha, dirty, timestamp, size, source)
);

-- Per-config summary scalars of one run (translate_seconds_total,
-- fences_elided_*_total, work.<counter> totals, ...).
CREATE TABLE IF NOT EXISTS summary_metrics (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    config TEXT NOT NULL,
    metric TEXT NOT NULL,
    value  REAL NOT NULL,
    UNIQUE (run_id, config, metric)
);

-- Deterministic work digests per config (noise-vs-real-change oracle).
CREATE TABLE IF NOT EXISTS summary_digests (
    run_id INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    config TEXT NOT NULL,
    digest TEXT NOT NULL,
    UNIQUE (run_id, config)
);

-- Per-(config, program) scalars from a bench snapshot's rows.
CREATE TABLE IF NOT EXISTS program_metrics (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    config  TEXT NOT NULL,
    program TEXT NOT NULL,
    metric  TEXT NOT NULL,
    value   REAL NOT NULL,
    UNIQUE (run_id, config, program, metric)
);

-- The attribution matrix: deterministic work per
-- (config, program, stage/pass, counter, function) cell.
CREATE TABLE IF NOT EXISTS work_cells (
    run_id   INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    config   TEXT NOT NULL,
    program  TEXT NOT NULL,
    stage    TEXT NOT NULL,
    counter  TEXT NOT NULL,
    function TEXT NOT NULL,
    value    INTEGER NOT NULL,
    UNIQUE (run_id, config, program, stage, counter, function)
);

-- Ledger activity lines, keyed by content hash (idempotent ingest).
CREATE TABLE IF NOT EXISTS ledger_entries (
    entry_hash    TEXT PRIMARY KEY,
    sha           TEXT NOT NULL DEFAULT 'unknown',
    dirty         INTEGER NOT NULL DEFAULT 0,
    timestamp     TEXT NOT NULL DEFAULT '',
    command       TEXT NOT NULL DEFAULT '',
    entry_schema  INTEGER,
    config_digest TEXT,
    rc            INTEGER,
    data          TEXT NOT NULL
);
"""

_V2_DDL = """
-- Collapsed-stack samples of a profile run (flamegraph diffs).
CREATE TABLE IF NOT EXISTS stacks (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    stack   TEXT NOT NULL,
    samples INTEGER NOT NULL,
    UNIQUE (run_id, stack)
);

CREATE INDEX IF NOT EXISTS idx_summary_metrics_run
    ON summary_metrics (run_id);
CREATE INDEX IF NOT EXISTS idx_program_metrics_run
    ON program_metrics (run_id);
CREATE INDEX IF NOT EXISTS idx_work_cells_run
    ON work_cells (run_id);
"""

#: Ordered migrations; ``MIGRATIONS[i]`` upgrades version i -> i+1.
MIGRATIONS: tuple[str, ...] = (_V1_DDL, _V2_DDL)


def schema_version(conn: sqlite3.Connection) -> int:
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def migrate(conn: sqlite3.Connection) -> int:
    """Bring ``conn`` to :data:`SCHEMA_VERSION`; returns the number of
    migration steps applied (0 when already current)."""
    applied = 0
    version = schema_version(conn)
    if version > SCHEMA_VERSION:
        raise RuntimeError(
            f"warehouse schema v{version} is newer than this build "
            f"(v{SCHEMA_VERSION}); refusing to touch it")
    while version < SCHEMA_VERSION:
        with conn:  # one transaction per migration step
            conn.executescript(MIGRATIONS[version])
            version += 1
            conn.execute(f"PRAGMA user_version = {version}")
        applied += 1
    return applied
