"""The warehouse store: a thin, typed wrapper around one sqlite3 file.

One :class:`Warehouse` owns one connection (``:memory:`` or an on-disk
file, default ``.repro/warehouse.sqlite``), migrates it to the current
schema on open, and exposes the small upsert/query surface the ingest
layer, ``repro diff`` and ``repro dash`` are built on.

Run ordering is deterministic: ``(timestamp, sha, id)`` ascending, so
"latest" / "prev" selectors and every rendered report are reproducible
for identical inputs regardless of ingest order.
"""

from __future__ import annotations

import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .schema import SCHEMA_VERSION, migrate, schema_version

#: Default on-disk location, next to the run ledger.
DEFAULT_DB = ".repro/warehouse.sqlite"


@dataclass(frozen=True)
class RunInfo:
    """One comparable run (a bench trajectory entry or profile artifact)."""

    id: int
    kind: str
    sha: str
    dirty: bool
    timestamp: str
    size: str
    version: Optional[int]
    source: str

    @property
    def label(self) -> str:
        mark = "*" if self.dirty else ""
        return f"{self.sha}{mark} ({self.kind}" + \
            (f", {self.size}" if self.size else "") + ")"


class Warehouse:
    """Cross-run observability store (see :mod:`repro.warehouse`)."""

    def __init__(self, path: Union[str, os.PathLike, None] = None) -> None:
        self.path = str(path) if path is not None else ":memory:"
        if self.path != ":memory:":
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
        self.conn = sqlite3.connect(self.path)
        self.conn.execute("PRAGMA foreign_keys = ON")
        self.migrations_applied = migrate(self.conn)

    # ---- lifecycle -------------------------------------------------------
    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "Warehouse":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    @property
    def schema_version(self) -> int:
        return schema_version(self.conn)

    # ---- upserts (all idempotent via natural keys) -----------------------
    def upsert_run(self, kind: str, sha: str, dirty: bool,
                   timestamp: str = "", size: str = "",
                   version: Optional[int] = None,
                   source: str = "") -> int:
        """Insert-or-find a run row; returns its id."""
        key = (kind, sha, int(bool(dirty)), timestamp, size, source)
        row = self.conn.execute(
            "SELECT id FROM runs WHERE kind=? AND sha=? AND dirty=? "
            "AND timestamp=? AND size=? AND source=?", key).fetchone()
        if row is not None:
            if version is not None:
                self.conn.execute(
                    "UPDATE runs SET version=? WHERE id=?",
                    (version, row[0]))
            return int(row[0])
        cur = self.conn.execute(
            "INSERT INTO runs (kind, sha, dirty, timestamp, size, version, "
            "source) VALUES (?,?,?,?,?,?,?)", key[:5] + (version, key[5]))
        return int(cur.lastrowid)

    def put_summary_metric(self, run_id: int, config: str, metric: str,
                           value: float) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO summary_metrics VALUES (?,?,?,?)",
            (run_id, config, metric, float(value)))

    def put_digest(self, run_id: int, config: str, digest: str) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO summary_digests VALUES (?,?,?)",
            (run_id, config, digest))

    def put_program_metric(self, run_id: int, config: str, program: str,
                           metric: str, value: float) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO program_metrics VALUES (?,?,?,?,?)",
            (run_id, config, program, metric, float(value)))

    def put_work_cell(self, run_id: int, config: str, program: str,
                      stage: str, counter: str, function: str,
                      value: int) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO work_cells VALUES (?,?,?,?,?,?,?)",
            (run_id, config, program, stage, counter, function, int(value)))

    def put_stack(self, run_id: int, stack: str, samples: int) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO stacks VALUES (?,?,?)",
            (run_id, stack, int(samples)))

    def put_ledger_entry(self, entry_hash: str, sha: str, dirty: bool,
                         timestamp: str, command: str,
                         entry_schema: Optional[int],
                         config_digest: Optional[str],
                         rc: Optional[int], data: str) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO ledger_entries VALUES (?,?,?,?,?,?,?,?,?)",
            (entry_hash, sha, int(bool(dirty)), timestamp, command,
             entry_schema, config_digest, rc, data))

    def commit(self) -> None:
        self.conn.commit()

    # ---- queries ---------------------------------------------------------
    def runs(self, kind: Optional[str] = None) -> list[RunInfo]:
        """Every run, oldest first (deterministic order)."""
        sql = ("SELECT id, kind, sha, dirty, timestamp, size, version, "
               "source FROM runs")
        params: tuple = ()
        if kind is not None:
            sql += " WHERE kind=?"
            params = (kind,)
        sql += " ORDER BY timestamp, sha, id"
        return [RunInfo(r[0], r[1], r[2], bool(r[3]), r[4], r[5], r[6], r[7])
                for r in self.conn.execute(sql, params)]

    def run(self, run_id: int) -> Optional[RunInfo]:
        for info in self.runs():
            if info.id == run_id:
                return info
        return None

    def resolve(self, selector: str,
                kind: Optional[str] = "bench") -> Optional[RunInfo]:
        """Resolve a CLI run selector to a run.

        Selectors (newest-first view over runs of ``kind``, or all
        kinds when ``kind`` is None):

        * ``latest`` — the newest run,
        * ``prev`` — the second-newest,
        * ``latest-clean`` / ``prev-clean`` — same, dirty runs skipped,
        * ``@N`` — the N-th newest (``@0`` == ``latest``),
        * anything else — a SHA prefix (newest matching run wins).
        """
        ordered = list(reversed(self.runs(kind)))
        if not ordered:
            return None
        if selector in ("latest", "HEAD"):
            return ordered[0]
        if selector == "prev":
            return ordered[1] if len(ordered) > 1 else None
        if selector in ("latest-clean", "prev-clean"):
            clean = [r for r in ordered if not r.dirty]
            index = 0 if selector == "latest-clean" else 1
            return clean[index] if len(clean) > index else None
        if selector.startswith("@"):
            try:
                index = int(selector[1:])
            except ValueError:
                return None
            return ordered[index] if 0 <= index < len(ordered) else None
        matches = [r for r in ordered if r.sha.startswith(selector)]
        return matches[0] if matches else None

    def summary(self, run_id: int) -> dict[str, dict[str, float]]:
        """config -> metric -> value for one run."""
        out: dict[str, dict[str, float]] = {}
        for config, metric, value in self.conn.execute(
                "SELECT config, metric, value FROM summary_metrics "
                "WHERE run_id=? ORDER BY config, metric", (run_id,)):
            out.setdefault(config, {})[metric] = value
        return out

    def digests(self, run_id: int) -> dict[str, str]:
        return {config: digest for config, digest in self.conn.execute(
            "SELECT config, digest FROM summary_digests WHERE run_id=? "
            "ORDER BY config", (run_id,))}

    def program_metrics(self, run_id: int) \
            -> dict[tuple[str, str], dict[str, float]]:
        """(config, program) -> metric -> value for one run."""
        out: dict[tuple[str, str], dict[str, float]] = {}
        for config, program, metric, value in self.conn.execute(
                "SELECT config, program, metric, value FROM program_metrics "
                "WHERE run_id=? ORDER BY config, program, metric", (run_id,)):
            out.setdefault((config, program), {})[metric] = value
        return out

    def work_cells(self, run_id: int) \
            -> dict[tuple[str, str, str, str, str], int]:
        """(config, program, stage, counter, function) -> count."""
        return {
            (r[0], r[1], r[2], r[3], r[4]): int(r[5])
            for r in self.conn.execute(
                "SELECT config, program, stage, counter, function, value "
                "FROM work_cells WHERE run_id=? "
                "ORDER BY config, program, stage, counter, function",
                (run_id,))
        }

    def stacks(self, run_id: int) -> dict[str, int]:
        return {stack: int(n) for stack, n in self.conn.execute(
            "SELECT stack, samples FROM stacks WHERE run_id=? ORDER BY stack",
            (run_id,))}

    def ledger_entries(self) -> list[dict]:
        import json

        return [json.loads(row[0]) for row in self.conn.execute(
            "SELECT data FROM ledger_entries "
            "ORDER BY timestamp, command, entry_hash")]

    def counts(self) -> dict[str, int]:
        """Row counts per table — the idempotence test's measuring stick."""
        tables = ("runs", "summary_metrics", "summary_digests",
                  "program_metrics", "work_cells", "stacks",
                  "ledger_entries")
        return {t: int(self.conn.execute(
            f"SELECT COUNT(*) FROM {t}").fetchone()[0]) for t in tables}


def open_warehouse(path: Union[str, os.PathLike, None] = None) -> Warehouse:
    """Open (creating/migrating as needed) the warehouse at ``path``,
    ``:memory:`` when ``path`` is None."""
    return Warehouse(path)


__all__ = ["DEFAULT_DB", "RunInfo", "SCHEMA_VERSION", "Warehouse",
           "open_warehouse"]
