"""mini-C → AArch64 code generator: the evaluation's *Native* baseline.

Direct compilation from source to Arm, as the paper's Native configuration
compiles the C sources with a native compiler.  Shares the stack-machine
structure of the x86 generator (values in ``x0``/``d0``), but needs no
TSO-emulation fences: only the program's own atomics and explicit
``fence()`` calls produce barriers, which is precisely why Native wins in
Figure 12.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..arm.isa import AImm, AInstr, ALabel, AMem, DReg, XReg
from ..arm.program import ArmFunction, ArmProgram
from .astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    CHAR,
    Continue,
    CType,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    If,
    Index,
    INT,
    IntLit,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    While,
)
from .codegen_x86 import (
    EXTERNAL_NAMES,
    MUTEX_EXTERNAL_NAMES,
    _count_decls,
    _stmt_exprs,
    _walk_stmts,
)
from .parser import parse
from .sema import SemaResult, analyze


class ArmCodegenError(Exception):
    pass


class _FuncCtx:
    def __init__(self, func: FuncDef) -> None:
        self.func = func
        self.scopes: list[dict[str, tuple[int, CType]]] = [{}]
        self.next_offset = 0
        self.label_counter = 0
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, ctype: CType) -> int:
        offset = self.next_offset
        self.next_offset += 8
        self.scopes[-1][name] = (offset, ctype)
        return offset

    def lookup(self, name: str) -> Optional[tuple[int, CType]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}{self.label_counter}"


class ArmCodeGen:
    def __init__(self, sema: SemaResult) -> None:
        self.sema = sema
        self.program = ArmProgram()
        self.ctx: Optional[_FuncCtx] = None
        self.out: Optional[ArmFunction] = None
        self._epilogue = ""

    # ---- driver ----------------------------------------------------------
    def generate(self, entry: str = "main") -> ArmProgram:
        src = self.sema.program
        for name in sorted(EXTERNAL_NAMES.values()):
            self.program.declare_external(name)
        used_mutex = sorted({
            MUTEX_EXTERNAL_NAMES[e.name]
            for f in src.functions
            for stmt in _walk_stmts(f.body)
            for e in _stmt_exprs(stmt)
            if isinstance(e, Call) and e.is_builtin
            and e.name in MUTEX_EXTERNAL_NAMES
        })
        for name in used_mutex:
            self.program.declare_external(name)
        for g in src.globals:
            init = b""
            if g.init is not None:
                if isinstance(g.init, IntLit):
                    size = g.ctype.sizeof()
                    init = (g.init.value & ((1 << (8 * size)) - 1)).to_bytes(
                        size, "little"
                    )
                elif isinstance(g.init, FloatLit):
                    init = struct.pack("<d", g.init.value)
            self.program.add_global(g.name, max(1, g.sizeof()), init)
        for sym, data in src.strings.items():
            self.program.add_global(sym, len(data), data)
        for func in src.functions:
            self._gen_function(func)
        self.program.entry = entry
        return self.program

    # ---- emission helpers ----------------------------------------------------
    def emit(self, mnemonic: str, *operands) -> None:
        assert self.out is not None
        self.out.emit(AInstr(mnemonic, list(operands)))

    def label(self, name: str) -> None:
        assert self.out is not None
        self.out.label(name)

    def _slot(self, offset: int, width: int = 64) -> AMem:
        return AMem(base="x29", offset_imm=offset, width=width)

    def _push_x0(self) -> None:
        self.emit("sub", XReg("sp"), XReg("sp"), AImm(8))
        self.emit("str", XReg("x0"), AMem(base="sp"))

    def _pop(self, reg: str) -> None:
        self.emit("ldr", XReg(reg), AMem(base="sp"))
        self.emit("add", XReg("sp"), XReg("sp"), AImm(8))

    def _push_d0(self) -> None:
        self.emit("sub", XReg("sp"), XReg("sp"), AImm(8))
        self.emit("fstr", DReg("d0"), AMem(base="sp", width=64))

    def _pop_d(self, reg: str) -> None:
        self.emit("fldr", DReg(reg), AMem(base="sp", width=64))
        self.emit("add", XReg("sp"), XReg("sp"), AImm(8))

    # ---- functions -----------------------------------------------------------
    def _gen_function(self, func: FuncDef) -> None:
        self.ctx = _FuncCtx(func)
        self.out = ArmFunction(func.name)
        nslots = len(func.params) + _count_decls(func.body)
        frame = nslots * 8 + 16

        self.emit("sub", XReg("sp"), XReg("sp"), AImm(frame))
        self.emit("str", XReg("x29"), AMem(base="sp", offset_imm=frame - 8))
        self.emit("str", XReg("x30"), AMem(base="sp", offset_imm=frame - 16))
        self.emit("mov", XReg("x29"), XReg("sp"))

        int_idx = 0
        fp_idx = 0
        for p in func.params:
            offset = self.ctx.declare(p.name, p.ctype)
            if p.ctype.is_double:
                self.emit("fstr", DReg(f"d{fp_idx}"), self._slot(offset))
                fp_idx += 1
            else:
                self.emit("str", XReg(f"x{int_idx}"), self._slot(offset))
                int_idx += 1

        self._epilogue = self.ctx.new_label("ret")
        self._gen_block(func.body)
        self.emit("mov", XReg("x0"), AImm(0))
        self.label(self._epilogue)
        self.emit("mov", XReg("sp"), XReg("x29"))
        self.emit("ldr", XReg("x29"), AMem(base="sp", offset_imm=frame - 8))
        self.emit("ldr", XReg("x30"), AMem(base="sp", offset_imm=frame - 16))
        self.emit("add", XReg("sp"), XReg("sp"), AImm(frame))
        self.emit("ret")
        self.program.add_function(self.out)
        self.ctx = None
        self.out = None

    # ---- statements -------------------------------------------------------------
    def _gen_block(self, block: Block) -> None:
        assert self.ctx is not None
        self.ctx.push_scope()
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.ctx.pop_scope()

    def _gen_stmt(self, stmt: Stmt) -> None:
        assert self.ctx is not None
        if isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, Decl):
            offset = self.ctx.declare(stmt.name, stmt.ctype)
            if stmt.init is not None:
                self._gen_expr(stmt.init)
                if stmt.ctype.is_double:
                    self.emit("fstr", DReg("d0"), self._slot(offset))
                else:
                    if stmt.ctype == CHAR:
                        self.emit("and", XReg("x0"), XReg("x0"), AImm(0xFF))
                    self.emit("str", XReg("x0"), self._slot(offset))
        elif isinstance(stmt, ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, If):
            else_l = self.ctx.new_label("else")
            end_l = self.ctx.new_label("endif")
            self._gen_expr(stmt.cond)
            self.emit("cbz", XReg("x0"), ALabel(else_l))
            self._gen_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.emit("b", ALabel(end_l))
                self.label(else_l)
                self._gen_stmt(stmt.otherwise)
                self.label(end_l)
            else:
                self.label(else_l)
        elif isinstance(stmt, While):
            head = self.ctx.new_label("while")
            exit_l = self.ctx.new_label("endwhile")
            self.label(head)
            self._gen_expr(stmt.cond)
            self.emit("cbz", XReg("x0"), ALabel(exit_l))
            self.ctx.break_labels.append(exit_l)
            self.ctx.continue_labels.append(head)
            self._gen_stmt(stmt.body)
            self.ctx.break_labels.pop()
            self.ctx.continue_labels.pop()
            self.emit("b", ALabel(head))
            self.label(exit_l)
        elif isinstance(stmt, For):
            self.ctx.push_scope()
            head = self.ctx.new_label("for")
            step_l = self.ctx.new_label("forstep")
            exit_l = self.ctx.new_label("endfor")
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            self.label(head)
            if stmt.cond is not None:
                self._gen_expr(stmt.cond)
                self.emit("cbz", XReg("x0"), ALabel(exit_l))
            self.ctx.break_labels.append(exit_l)
            self.ctx.continue_labels.append(step_l)
            self._gen_stmt(stmt.body)
            self.ctx.break_labels.pop()
            self.ctx.continue_labels.pop()
            self.label(step_l)
            if stmt.step is not None:
                self._gen_expr(stmt.step)
            self.emit("b", ALabel(head))
            self.label(exit_l)
            self.ctx.pop_scope()
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
            else:
                self.emit("mov", XReg("x0"), AImm(0))
            self.emit("b", ALabel(self._epilogue))
        elif isinstance(stmt, Break):
            self.emit("b", ALabel(self.ctx.break_labels[-1]))
        elif isinstance(stmt, Continue):
            self.emit("b", ALabel(self.ctx.continue_labels[-1]))
        else:
            raise ArmCodegenError(f"cannot codegen {type(stmt).__name__}")

    # ---- expressions -------------------------------------------------------------
    def _gen_expr(self, expr: Expr) -> None:
        if isinstance(expr, IntLit):
            self.emit("mov", XReg("x0"), AImm(expr.value))
        elif isinstance(expr, FloatLit):
            bits = int.from_bytes(struct.pack("<d", expr.value), "little")
            self.emit("mov", XReg("x0"), AImm(bits))
            self.emit("fmov", DReg("d0"), XReg("x0"))
        elif isinstance(expr, StringLit):
            self.emit("adr", XReg("x0"), ALabel(expr.symbol))
        elif isinstance(expr, VarRef):
            self._gen_varref(expr)
        elif isinstance(expr, Unary):
            self._gen_unary(expr)
        elif isinstance(expr, Binary):
            self._gen_binary(expr)
        elif isinstance(expr, Assign):
            self._gen_assign(expr)
        elif isinstance(expr, Index):
            self._gen_address(expr)
            self._load_through_x0(expr.ctype)
        elif isinstance(expr, Call):
            self._gen_call(expr)
        elif isinstance(expr, CastExpr):
            self._gen_cast(expr)
        else:
            raise ArmCodegenError(f"cannot codegen {type(expr).__name__}")

    def _gen_varref(self, expr: VarRef) -> None:
        assert self.ctx is not None
        if expr.scope == "local":
            entry = self.ctx.lookup(expr.name)
            if entry is None:
                raise ArmCodegenError(f"unbound local {expr.name!r}")
            offset, ctype = entry
            if ctype.is_double:
                self.emit("fldr", DReg("d0"), self._slot(offset))
            else:
                self.emit("ldr", XReg("x0"), self._slot(offset))
        elif expr.scope == "global":
            if expr.is_array:
                self.emit("adr", XReg("x0"), ALabel(expr.name))
            else:
                self.emit("adr", XReg("x2"), ALabel(expr.name))
                self._load_through(XReg("x2"), expr.ctype)
        elif expr.scope == "func":
            self.emit("adr", XReg("x0"), ALabel(expr.name))
        else:
            raise ArmCodegenError(f"unresolved variable {expr.name!r}")

    def _load_through(self, base: XReg, ctype: CType) -> None:
        if ctype.is_double:
            self.emit("fldr", DReg("d0"), AMem(base=base.name, width=64))
        elif ctype == CHAR:
            self.emit("ldrb", XReg("x0"), AMem(base=base.name, width=8))
        else:
            self.emit("ldr", XReg("x0"), AMem(base=base.name))

    def _load_through_x0(self, ctype: CType) -> None:
        if ctype.is_double:
            self.emit("fldr", DReg("d0"), AMem(base="x0", width=64))
        elif ctype == CHAR:
            self.emit("ldrb", XReg("x0"), AMem(base="x0", width=8))
        else:
            self.emit("ldr", XReg("x0"), AMem(base="x0"))

    def _gen_unary(self, expr: Unary) -> None:
        if expr.op == "&":
            self._gen_address(expr.operand)
            return
        if expr.op == "*":
            self._gen_expr(expr.operand)
            self._load_through_x0(expr.ctype)
            return
        self._gen_expr(expr.operand)
        if expr.op == "-":
            if expr.ctype.is_double:
                self.emit("fmov", DReg("d1"), AImm(0))
                self.emit("fsub", DReg("d0"), DReg("d1"), DReg("d0"))
            else:
                self.emit("neg", XReg("x0"), XReg("x0"))
        elif expr.op == "!":
            self.emit("cmp", XReg("x0"), AImm(0))
            self.emit("cset", XReg("x0"), ALabel("eq"))
        elif expr.op == "~":
            self.emit("mvn", XReg("x0"), XReg("x0"))
        else:
            raise ArmCodegenError(f"bad unary {expr.op}")

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "&": "and", "|": "orr",
                "^": "eor", "<<": "lsl", ">>": "asr"}
    _CMP_CONDS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt",
                  ">=": "ge"}
    _FCMP_CONDS = {"==": "eq", "!=": "ne", "<": "mi", "<=": "ls", ">": "gt",
                   ">=": "ge"}

    def _gen_binary(self, expr: Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_logical(expr)
            return
        lt = expr.lhs.ctype
        rt = expr.rhs.ctype
        if lt.is_double:
            self._gen_fbinary(expr)
            return
        self._gen_expr(expr.lhs)
        self._push_x0()
        self._gen_expr(expr.rhs)
        self.emit("mov", XReg("x1"), XReg("x0"))
        self._pop("x0")
        if op in ("+", "-") and lt.is_pointer and rt.is_integral:
            size = lt.element_size()
            if size == 8:
                self.emit("lsl", XReg("x1"), XReg("x1"), AImm(3))
            self.emit(self._INT_OPS[op], XReg("x0"), XReg("x0"), XReg("x1"))
        elif op == "-" and lt.is_pointer and rt.is_pointer:
            self.emit("sub", XReg("x0"), XReg("x0"), XReg("x1"))
            if lt.element_size() == 8:
                self.emit("asr", XReg("x0"), XReg("x0"), AImm(3))
        elif op in self._INT_OPS:
            self.emit(self._INT_OPS[op], XReg("x0"), XReg("x0"), XReg("x1"))
        elif op == "/":
            self.emit("sdiv", XReg("x0"), XReg("x0"), XReg("x1"))
        elif op == "%":
            self.emit("sdiv", XReg("x2"), XReg("x0"), XReg("x1"))
            self.emit("msub", XReg("x0"), XReg("x2"), XReg("x1"), XReg("x0"))
        elif op in self._CMP_CONDS:
            self.emit("cmp", XReg("x0"), XReg("x1"))
            self.emit("cset", XReg("x0"), ALabel(self._CMP_CONDS[op]))
        else:
            raise ArmCodegenError(f"bad int binary {op}")

    def _gen_fbinary(self, expr: Binary) -> None:
        op = expr.op
        self._gen_expr(expr.lhs)
        self._push_d0()
        self._gen_expr(expr.rhs)
        self.emit("fmov", DReg("d1"), DReg("d0"))
        self._pop_d("d0")
        arith = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
        if op in arith:
            self.emit(arith[op], DReg("d0"), DReg("d0"), DReg("d1"))
        elif op in self._FCMP_CONDS:
            self.emit("fcmp", DReg("d0"), DReg("d1"))
            self.emit("cset", XReg("x0"), ALabel(self._FCMP_CONDS[op]))
        else:
            raise ArmCodegenError(f"bad float binary {op}")

    def _gen_logical(self, expr: Binary) -> None:
        assert self.ctx is not None
        done = self.ctx.new_label("ldone")
        short = self.ctx.new_label("lshort")
        self._gen_expr(expr.lhs)
        if expr.op == "&&":
            self.emit("cbz", XReg("x0"), ALabel(short))
        else:
            self.emit("cbnz", XReg("x0"), ALabel(short))
        self._gen_expr(expr.rhs)
        self.emit("cmp", XReg("x0"), AImm(0))
        self.emit("cset", XReg("x0"), ALabel("ne"))
        self.emit("b", ALabel(done))
        self.label(short)
        self.emit("mov", XReg("x0"), AImm(0 if expr.op == "&&" else 1))
        self.label(done)

    # ---- addresses ------------------------------------------------------------
    def _gen_address(self, expr: Expr) -> None:
        assert self.ctx is not None
        if isinstance(expr, VarRef):
            if expr.scope == "local":
                entry = self.ctx.lookup(expr.name)
                if entry is None:
                    raise ArmCodegenError(f"unbound local {expr.name!r}")
                offset, _ = entry
                self.emit("add", XReg("x0"), XReg("x29"), AImm(offset))
            elif expr.scope == "global":
                self.emit("adr", XReg("x0"), ALabel(expr.name))
            else:
                raise ArmCodegenError(f"cannot take address of {expr.name!r}")
        elif isinstance(expr, Index):
            self._gen_expr(expr.base)
            self._push_x0()
            self._gen_expr(expr.index)
            size = expr.base.ctype.element_size()
            if size == 8:
                self.emit("lsl", XReg("x0"), XReg("x0"), AImm(3))
            self._pop("x1")
            self.emit("add", XReg("x0"), XReg("x1"), XReg("x0"))
        elif isinstance(expr, Unary) and expr.op == "*":
            self._gen_expr(expr.operand)
        else:
            raise ArmCodegenError("not an lvalue")

    # ---- assignment ---------------------------------------------------------------
    def _gen_assign(self, expr: Assign) -> None:
        assert self.ctx is not None
        target = expr.target
        ctype = expr.ctype
        if isinstance(target, VarRef) and target.scope == "local":
            self._gen_expr(expr.value)
            entry = self.ctx.lookup(target.name)
            if entry is None:
                raise ArmCodegenError(f"unbound local {target.name!r}")
            offset, _ = entry
            if ctype.is_double:
                self.emit("fstr", DReg("d0"), self._slot(offset))
            else:
                if ctype == CHAR:
                    self.emit("and", XReg("x0"), XReg("x0"), AImm(0xFF))
                self.emit("str", XReg("x0"), self._slot(offset))
            return
        if isinstance(target, VarRef) and target.scope == "global":
            self._gen_expr(expr.value)
            self.emit("adr", XReg("x2"), ALabel(target.name))
            self._store_through(XReg("x2"), ctype)
            return
        if ctype.is_double:
            self._gen_expr(expr.value)
            self._push_d0()
            self._gen_address(target)
            self._pop_d("d0")
            self.emit("fstr", DReg("d0"), AMem(base="x0", width=64))
        else:
            self._gen_expr(expr.value)
            self._push_x0()
            self._gen_address(target)
            self.emit("mov", XReg("x2"), XReg("x0"))
            self._pop("x0")
            if ctype == CHAR:
                self.emit("strb", XReg("x0"), AMem(base="x2", width=8))
            else:
                self.emit("str", XReg("x0"), AMem(base="x2"))

    def _store_through(self, base: XReg, ctype: CType) -> None:
        if ctype.is_double:
            self.emit("fstr", DReg("d0"), AMem(base=base.name, width=64))
        elif ctype == CHAR:
            self.emit("strb", XReg("x0"), AMem(base=base.name, width=8))
        else:
            self.emit("str", XReg("x0"), AMem(base=base.name))

    # ---- calls ---------------------------------------------------------------------
    def _gen_call(self, expr: Call) -> None:
        if expr.is_builtin:
            self._gen_builtin(expr)
            return
        kinds: list[str] = []
        for arg in expr.args:
            self._gen_expr(arg)
            if arg.ctype.is_double:
                self._push_d0()
                kinds.append("fp")
            else:
                self._push_x0()
                kinds.append("int")
        int_idx = kinds.count("int")
        fp_idx = kinds.count("fp")
        for i in reversed(range(len(kinds))):
            if kinds[i] == "fp":
                fp_idx -= 1
                self._pop_d(f"d{fp_idx}")
            else:
                int_idx -= 1
                self._pop(f"x{int_idx}")
        self.emit("bl", ALabel(expr.name))

    def _gen_builtin(self, expr: Call) -> None:
        name = expr.name
        if name == "fence":
            self.emit("dmb ish")
            return
        if name == "sqrt":
            self._gen_expr(expr.args[0])
            self.emit("fsqrt", DReg("d0"), DReg("d0"))
            return
        if name in ("atomic_add", "atomic_xchg"):
            self._gen_expr(expr.args[0])
            self._push_x0()
            self._gen_expr(expr.args[1])
            self.emit("mov", XReg("x1"), XReg("x0"))
            self._pop("x2")
            assert self.ctx is not None
            loop = self.ctx.new_label("rmw")
            self.emit("dmb ish")
            self.label(loop)
            self.emit("ldxr", XReg("x0"), AMem(base="x2"))
            if name == "atomic_add":
                self.emit("add", XReg("x3"), XReg("x0"), XReg("x1"))
            else:
                self.emit("mov", XReg("x3"), XReg("x1"))
            self.emit("stxr", XReg("x4"), XReg("x3"), AMem(base="x2"))
            self.emit("cbnz", XReg("x4"), ALabel(loop))
            self.emit("dmb ish")
            return
        if name == "atomic_cas":
            self._gen_expr(expr.args[0])
            self._push_x0()
            self._gen_expr(expr.args[1])
            self._push_x0()
            self._gen_expr(expr.args[2])
            self.emit("mov", XReg("x3"), XReg("x0"))
            self._pop("x1")
            self._pop("x2")
            assert self.ctx is not None
            loop = self.ctx.new_label("cas")
            done = self.ctx.new_label("casdone")
            self.emit("dmb ish")
            self.label(loop)
            self.emit("ldxr", XReg("x0"), AMem(base="x2"))
            self.emit("cmp", XReg("x0"), XReg("x1"))
            self.emit("b.ne", ALabel(done))
            self.emit("stxr", XReg("x4"), XReg("x3"), AMem(base="x2"))
            self.emit("cbnz", XReg("x4"), ALabel(loop))
            self.label(done)
            self.emit("dmb ish")
            return
        if name == "spawn":
            fn = expr.args[0]
            assert isinstance(fn, VarRef)
            self._gen_expr(expr.args[1])
            self.emit("mov", XReg("x1"), XReg("x0"))
            self.emit("adr", XReg("x0"), ALabel(fn.name))
            self.emit("bl", ALabel(EXTERNAL_NAMES["spawn"]))
            return
        external = MUTEX_EXTERNAL_NAMES.get(name) or EXTERNAL_NAMES[name]
        if expr.args:
            self._gen_expr(expr.args[0])
            # integer arg is already in x0, double in d0
        self.emit("bl", ALabel(external))

    # ---- casts ---------------------------------------------------------------------
    def _gen_cast(self, expr: CastExpr) -> None:
        self._gen_expr(expr.operand)
        src = expr.operand.ctype
        dst = expr.target_type
        if src == dst:
            return
        if src.is_integral and dst.is_double:
            self.emit("scvtf", DReg("d0"), XReg("x0"))
        elif src.is_double and dst.is_integral:
            self.emit("fcvtzs", XReg("x0"), DReg("d0"))
            if dst == CHAR:
                self.emit("and", XReg("x0"), XReg("x0"), AImm(0xFF))
        elif src == INT and dst == CHAR:
            self.emit("and", XReg("x0"), XReg("x0"), AImm(0xFF))
        # char→int and pointer/int casts are free


def compile_to_arm(source: str, entry: str = "main") -> ArmProgram:
    """Compile mini-C source directly to Arm: the Native baseline."""
    program = parse(source)
    sema = analyze(program)
    return ArmCodeGen(sema).generate(entry)
