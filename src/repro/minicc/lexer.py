"""Lexer for mini-C, the C subset the Phoenix kernels are written in."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "double", "char", "void", "if", "else", "while", "for",
    "return", "break", "continue",
}

# Longest-match-first operator table.
OPERATORS = [
    "<<=", ">>=",
    "++", "--", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ",", ";",
]


class LexError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str   # 'int', 'float', 'ident', 'keyword', 'op', 'string', 'char', 'eof'
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise LexError("malformed hex literal", line)
                tokens.append(Token("int", source[i:j], line))
                i = j
                continue
            j = i
            is_float = False
            while j < n and (source[j].isdigit() or source[j] in ".eE"
                             or (source[j] in "+-" and source[j - 1] in "eE")):
                if source[j] in ".eE":
                    is_float = True
                j += 1
            text = source[i:j]
            kind = "float" if is_float else "int"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        if c == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                    if j >= n:
                        break
                    buf.append({"n": "\n", "t": "\t", "0": "\0",
                                "\\": "\\", '"': '"'}.get(source[j], source[j]))
                else:
                    buf.append(source[j])
                j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("string", "".join(buf), line))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                ch = {"n": "\n", "t": "\t", "0": "\0", "\\": "\\",
                      "'": "'"}.get(source[j + 1], source[j + 1])
                j += 2
            else:
                ch = source[j]
                j += 1
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line)
            tokens.append(Token("char", ch, line))
            i = j + 1
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                matched = True
                break
        if not matched:
            raise LexError(f"unexpected character {c!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
