"""mini-C → LIR frontend.

This is the *source-level* route into the shared optimizer and Arm backend:
the evaluation's Native baseline is ``mini-C → LIR → O2 → Arm``, exactly as
the paper's Native configuration is ``C → LLVM → O2 → Arm``.  It also gives
the optimizer and backend a second, independent producer of IR, which the
test-suite uses for differential testing against the lifted route.

Typed from the start: ints are ``i64``, doubles ``f64``, chars ``i8`` in
memory (computed on as ``i64``), pointers are typed pointers.  Only the
program's own concurrency constructs produce atomics/fences — no
TSO-emulation fences, which is why Native needs none of the Fig. 8a
machinery.
"""

from __future__ import annotations

from typing import Optional

from ..lir import (
    BasicBlock,
    ConstantFloat,
    ConstantInt,
    F64,
    Function,
    FunctionType,
    GlobalVariable,
    I1,
    I8,
    I64,
    IRBuilder,
    ArrayType,
    Module,
    Type,
    Value,
    VOID,
    ptr,
)
from .astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    CHAR,
    Continue,
    CType,
    Decl,
    DOUBLE,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    If,
    Index,
    INT,
    IntLit,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    VOID as C_VOID,
    While,
)
from .parser import parse
from .sema import SemaResult, analyze

# mini-C builtin → runtime external (signatures in LIR types).
_EXTERNALS = {
    "malloc": FunctionType(I64, (I64,)),
    "spawn": FunctionType(I64, (I64, I64)),
    "join": FunctionType(I64, (I64,)),
    "print_i64": FunctionType(VOID, (I64,)),
    "print_f64": FunctionType(VOID, (F64,)),
    "thread_id": FunctionType(I64, ()),
    "sqrt": FunctionType(F64, (F64,)),
    "pthread_mutex_lock": FunctionType(I64, (I64,)),
    "pthread_mutex_unlock": FunctionType(I64, (I64,)),
}


class FrontendError(Exception):
    pass


def _lir_type(ctype: CType) -> Type:
    if ctype.is_pointer:
        return ptr(_lir_type(ctype.pointee()))
    return {"int": I64, "double": F64, "char": I8, "void": VOID}[ctype.base]


def _value_type(ctype: CType) -> Type:
    """Type of the computed value (chars are widened to i64)."""
    if ctype == CHAR:
        return I64
    return _lir_type(ctype)


class LIRFrontend:
    def __init__(self, sema: SemaResult) -> None:
        self.sema = sema
        self.module = Module("native")
        self.b = IRBuilder()
        self.func: Optional[Function] = None
        self.locals: list[dict[str, tuple[Value, CType]]] = []
        self.break_stack: list[BasicBlock] = []
        self.continue_stack: list[BasicBlock] = []

    # ---- driver ----------------------------------------------------------
    def generate(self) -> Module:
        program = self.sema.program
        for g in program.globals:
            vt = _lir_type(g.ctype)
            if g.array_size is not None:
                vt = ArrayType(vt, g.array_size)
            init = None
            if isinstance(g.init, IntLit):
                init = ConstantInt(_lir_type(g.ctype), g.init.value)  # type: ignore[arg-type]
            elif isinstance(g.init, FloatLit):
                init = ConstantFloat(F64, g.init.value)
            self.module.add_global(GlobalVariable(g.name, vt, init))
        for sym, data in program.strings.items():
            self.module.add_global(
                GlobalVariable(sym, ArrayType(I8, len(data)), data)
            )
        # Declarations first so calls can be emitted in any order.
        for f in program.functions:
            params = tuple(_value_type(p.ctype) for p in f.params)
            ftype = FunctionType(_value_type(f.ret_type), params)
            self.module.add_function(
                Function(f.name, ftype, [p.name for p in f.params])
            )
        for f in program.functions:
            self._gen_function(f)
        return self.module

    # ---- helpers --------------------------------------------------------------
    def _lookup(self, name: str) -> Optional[tuple[Value, CType]]:
        for scope in reversed(self.locals):
            if name in scope:
                return scope[name]
        return None

    def _external(self, name: str) -> Value:
        return self.module.declare_external(name, _EXTERNALS[name])

    # ---- functions ----------------------------------------------------------------
    def _gen_function(self, fdef: FuncDef) -> None:
        func = self.module.get_function(fdef.name)
        self.func = func
        entry = func.new_block("entry")
        self.b.position_at_end(entry)
        self.locals = [{}]
        for param, arg in zip(fdef.params, func.arguments):
            slot = self.b.alloca(_value_type(param.ctype), f"{param.name}_addr")
            self.b.store(arg, slot)
            self.locals[-1][param.name] = (slot, param.ctype)
        self._gen_block(fdef.body)
        # Implicit return for functions that fall off the end.
        current = self.b.block
        if current is not None and current.terminator is None:
            if fdef.ret_type == C_VOID:
                self.b.ret()
            elif fdef.ret_type == DOUBLE:
                self.b.ret(ConstantFloat(F64, 0.0))
            else:
                self.b.ret(ConstantInt(I64, 0))
        self.func = None

    # ---- statements ----------------------------------------------------------------
    def _gen_block(self, block: Block) -> None:
        self.locals.append({})
        for stmt in block.statements:
            if self.b.block is not None and self.b.block.terminator is not None:
                break  # unreachable code after return/break
            self._gen_stmt(stmt)
        self.locals.pop()

    def _gen_stmt(self, stmt: Stmt) -> None:
        assert self.func is not None
        b = self.b
        if isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, Decl):
            slot = b.alloca(_value_type(stmt.ctype), f"{stmt.name}_addr")
            self.locals[-1][stmt.name] = (slot, stmt.ctype)
            if stmt.init is not None:
                b.store(self._gen_expr(stmt.init), slot)
        elif isinstance(stmt, ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, If):
            then_bb = self.func.new_block("then")
            else_bb = self.func.new_block("else") if stmt.otherwise else None
            end_bb = self.func.new_block("endif")
            cond = self._gen_condition(stmt.cond)
            b.cond_br(cond, then_bb, else_bb or end_bb)
            b.position_at_end(then_bb)
            self._gen_stmt(stmt.then)
            if b.block.terminator is None:
                b.br(end_bb)
            if else_bb is not None:
                b.position_at_end(else_bb)
                self._gen_stmt(stmt.otherwise)
                if b.block.terminator is None:
                    b.br(end_bb)
            b.position_at_end(end_bb)
            if not end_bb.predecessors():
                b.unreachable()
        elif isinstance(stmt, While):
            head = self.func.new_block("while_head")
            body = self.func.new_block("while_body")
            done = self.func.new_block("while_end")
            b.br(head)
            b.position_at_end(head)
            b.cond_br(self._gen_condition(stmt.cond), body, done)
            b.position_at_end(body)
            self.break_stack.append(done)
            self.continue_stack.append(head)
            self._gen_stmt(stmt.body)
            self.break_stack.pop()
            self.continue_stack.pop()
            if b.block.terminator is None:
                b.br(head)
            b.position_at_end(done)
        elif isinstance(stmt, For):
            self.locals.append({})
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            head = self.func.new_block("for_head")
            body = self.func.new_block("for_body")
            step = self.func.new_block("for_step")
            done = self.func.new_block("for_end")
            b.br(head)
            b.position_at_end(head)
            if stmt.cond is not None:
                b.cond_br(self._gen_condition(stmt.cond), body, done)
            else:
                b.br(body)
            b.position_at_end(body)
            self.break_stack.append(done)
            self.continue_stack.append(step)
            self._gen_stmt(stmt.body)
            self.break_stack.pop()
            self.continue_stack.pop()
            if b.block.terminator is None:
                b.br(step)
            b.position_at_end(step)
            if stmt.step is not None:
                self._gen_expr(stmt.step)
            b.br(head)
            b.position_at_end(done)
            self.locals.pop()
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                b.ret(self._gen_expr(stmt.value))
            else:
                b.ret()
        elif isinstance(stmt, Break):
            b.br(self.break_stack[-1])
        elif isinstance(stmt, Continue):
            b.br(self.continue_stack[-1])
        else:
            raise FrontendError(f"cannot lower {type(stmt).__name__}")

    def _gen_condition(self, expr: Expr) -> Value:
        v = self._gen_expr(expr)
        if v.type == I1:
            return v
        if v.type.is_pointer:
            v = self.b.ptrtoint(v, I64)
        return self.b.icmp("ne", v, ConstantInt(I64, 0))

    # ---- expressions ------------------------------------------------------------------
    def _gen_expr(self, expr: Expr) -> Value:
        b = self.b
        if isinstance(expr, IntLit):
            return ConstantInt(I64, expr.value)
        if isinstance(expr, FloatLit):
            return ConstantFloat(F64, expr.value)
        if isinstance(expr, StringLit):
            g = self.module.globals[expr.symbol]
            return b.gep(g.value_type, g, [ConstantInt(I64, 0), ConstantInt(I64, 0)])
        if isinstance(expr, VarRef):
            return self._gen_varref(expr)
        if isinstance(expr, Unary):
            return self._gen_unary(expr)
        if isinstance(expr, Binary):
            return self._gen_binary(expr)
        if isinstance(expr, Assign):
            return self._gen_assign(expr)
        if isinstance(expr, Index):
            addr = self._gen_address(expr)
            return self._load(addr, expr.ctype)
        if isinstance(expr, Call):
            return self._gen_call(expr)
        if isinstance(expr, CastExpr):
            return self._gen_cast(expr)
        raise FrontendError(f"cannot lower {type(expr).__name__}")

    def _load(self, addr: Value, ctype: CType) -> Value:
        v = self.b.load(addr)
        if ctype == CHAR and v.type == I8:
            return self.b.zext(v, I64)
        return v

    def _store(self, value: Value, addr: Value, ctype: CType) -> None:
        if ctype == CHAR and value.type == I64:
            value = self.b.trunc(value, I8)
        self.b.store(value, addr)

    def _gen_varref(self, expr: VarRef) -> Value:
        entry = self._lookup(expr.name)
        if entry is not None:
            slot, ctype = entry
            return self._load(slot, ctype)
        if expr.scope == "global":
            g = self.module.globals[expr.name]
            if expr.is_array:
                return self.b.gep(
                    g.value_type, g,
                    [ConstantInt(I64, 0), ConstantInt(I64, 0)],
                )
            return self._load(g, expr.ctype)  # type: ignore[arg-type]
        if expr.scope == "func":
            f = self.module.get_function(expr.name)
            return self.b.ptrtoint(f, I64)
        raise FrontendError(f"unresolved variable {expr.name!r}")

    def _gen_address(self, expr: Expr) -> Value:
        if isinstance(expr, VarRef):
            entry = self._lookup(expr.name)
            if entry is not None:
                return entry[0]
            if expr.scope == "global":
                g = self.module.globals[expr.name]
                if expr.is_array:
                    return self.b.gep(
                        g.value_type, g,
                        [ConstantInt(I64, 0), ConstantInt(I64, 0)],
                    )
                return g
            raise FrontendError(f"cannot address {expr.name!r}")
        if isinstance(expr, Index):
            base = self._gen_expr(expr.base)
            idx = self._gen_expr(expr.index)
            elem = base.type.pointee  # type: ignore[union-attr]
            return self.b.gep(elem, base, [idx])
        if isinstance(expr, Unary) and expr.op == "*":
            return self._gen_expr(expr.operand)
        raise FrontendError("not an lvalue")

    def _gen_unary(self, expr: Unary) -> Value:
        b = self.b
        if expr.op == "&":
            return self._gen_address(expr.operand)
        if expr.op == "*":
            return self._load(self._gen_expr(expr.operand), expr.ctype)
        v = self._gen_expr(expr.operand)
        if expr.op == "-":
            if expr.ctype.is_double:
                return b.binop("fsub", ConstantFloat(F64, 0.0), v)
            return b.sub(ConstantInt(I64, 0), v)
        if expr.op == "!":
            if v.type.is_pointer:
                v = b.ptrtoint(v, I64)
            z = b.icmp("eq", v, ConstantInt(v.type, 0))
            return b.zext(z, I64)
        if expr.op == "~":
            return b.binop("xor", v, ConstantInt(I64, -1))
        raise FrontendError(f"bad unary {expr.op}")

    _INT_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv", "%": "srem",
                "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "ashr"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
    _ICMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt",
             ">=": "sge"}
    _FCMP = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole", ">": "ogt",
             ">=": "oge"}

    def _gen_binary(self, expr: Binary) -> Value:
        b = self.b
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_logical(expr)
        lt, rt = expr.lhs.ctype, expr.rhs.ctype
        lhs = self._gen_expr(expr.lhs)
        if op in self._ICMP and (lt.is_double or rt.is_double):
            rhs = self._gen_expr(expr.rhs)
            return b.zext(b.fcmp(self._FCMP[op], lhs, rhs), I64)
        if lt.is_pointer and op in ("+", "-") and rt.is_integral:
            rhs = self._gen_expr(expr.rhs)
            if op == "-":
                rhs = b.sub(ConstantInt(I64, 0), rhs)
            return b.gep(lhs.type.pointee, lhs, [rhs])  # type: ignore[union-attr]
        if lt.is_pointer and rt.is_pointer:
            rhs = self._gen_expr(expr.rhs)
            li = b.ptrtoint(lhs, I64)
            ri = b.ptrtoint(rhs, I64)
            if op == "-":
                diff = b.sub(li, ri)
                size = lt.element_size()
                if size > 1:
                    shift = {2: 1, 4: 2, 8: 3}[size]
                    return b.binop("ashr", diff, ConstantInt(I64, shift))
                return diff
            return b.zext(b.icmp(self._ICMP[op], li, ri), I64)
        rhs = self._gen_expr(expr.rhs)
        if lt.is_pointer or rt.is_pointer:
            # mixed pointer/integer comparison (e.g. p == 0)
            if lhs.type.is_pointer:
                lhs = b.ptrtoint(lhs, I64)
            if rhs.type.is_pointer:
                rhs = b.ptrtoint(rhs, I64)
            return b.zext(b.icmp(self._ICMP[op], lhs, rhs), I64)
        if expr.ctype.is_double or lt.is_double:
            if op in self._FLOAT_OPS:
                return b.binop(self._FLOAT_OPS[op], lhs, rhs)
            raise FrontendError(f"bad float op {op}")
        if op in self._ICMP:
            return b.zext(b.icmp(self._ICMP[op], lhs, rhs), I64)
        return b.binop(self._INT_OPS[op], lhs, rhs)

    def _gen_logical(self, expr: Binary) -> Value:
        b = self.b
        assert self.func is not None
        result = b.alloca(I64, "logtmp")
        rhs_bb = self.func.new_block("log_rhs")
        short_bb = self.func.new_block("log_short")
        end_bb = self.func.new_block("log_end")
        cond = self._gen_condition(expr.lhs)
        if expr.op == "&&":
            b.cond_br(cond, rhs_bb, short_bb)
            short_value = 0
        else:
            b.cond_br(cond, short_bb, rhs_bb)
            short_value = 1
        b.position_at_end(rhs_bb)
        rv = self._gen_condition(expr.rhs)
        b.store(b.zext(rv, I64), result)
        b.br(end_bb)
        b.position_at_end(short_bb)
        b.store(ConstantInt(I64, short_value), result)
        b.br(end_bb)
        b.position_at_end(end_bb)
        return b.load(result)

    def _gen_assign(self, expr: Assign) -> Value:
        value = self._gen_expr(expr.value)
        target = expr.target
        if isinstance(target, VarRef):
            entry = self._lookup(target.name)
            if entry is not None:
                self._store(value, entry[0], entry[1])
                return value
            g = self.module.globals[target.name]
            self._store(value, g, target.ctype)  # type: ignore[arg-type]
            return value
        addr = self._gen_address(target)
        self._store(value, addr, expr.ctype)
        return value

    def _gen_call(self, expr: Call) -> Value:
        b = self.b
        if expr.is_builtin:
            return self._gen_builtin(expr)
        func = self.module.get_function(expr.name)
        args = [self._gen_expr(a) for a in expr.args]
        return b.call(func, args)

    def _gen_builtin(self, expr: Call) -> Value:
        b = self.b
        name = expr.name
        if name == "fence":
            b.fence("sc")
            return ConstantInt(I64, 0)
        if name == "sqrt":
            return b.call(self._external("sqrt"), [self._gen_expr(expr.args[0])])
        if name == "malloc":
            raw = b.call(self._external("malloc"), [self._gen_expr(expr.args[0])])
            return b.inttoptr(raw, ptr(I8))
        if name == "spawn":
            fn = expr.args[0]
            assert isinstance(fn, VarRef)
            faddr = b.ptrtoint(self.module.get_function(fn.name), I64)
            arg = self._gen_expr(expr.args[1])
            return b.call(self._external("spawn"), [faddr, arg])
        if name in ("join", "thread_id"):
            args = [self._gen_expr(a) for a in expr.args]
            return b.call(self._external(name), args)
        if name == "print_i":
            b.call(self._external("print_i64"), [self._gen_expr(expr.args[0])])
            return ConstantInt(I64, 0)
        if name == "print_f":
            b.call(self._external("print_f64"), [self._gen_expr(expr.args[0])])
            return ConstantInt(I64, 0)
        if name == "atomic_add":
            p = self._gen_expr(expr.args[0])
            v = self._gen_expr(expr.args[1])
            return b.atomicrmw("add", p, v, "sc")
        if name == "atomic_xchg":
            p = self._gen_expr(expr.args[0])
            v = self._gen_expr(expr.args[1])
            return b.atomicrmw("xchg", p, v, "sc")
        if name in ("mutex_lock", "mutex_unlock"):
            p = self._gen_expr(expr.args[0])
            extern = self._external(f"pthread_{name}")
            return b.call(extern, [b.ptrtoint(p, I64)])
        if name == "atomic_cas":
            p = self._gen_expr(expr.args[0])
            old = self._gen_expr(expr.args[1])
            new = self._gen_expr(expr.args[2])
            return b.cmpxchg(p, old, new, "sc")
        raise FrontendError(f"unknown builtin {name}")

    def _gen_cast(self, expr: CastExpr) -> Value:
        b = self.b
        v = self._gen_expr(expr.operand)
        src = expr.operand.ctype
        dst = expr.target_type
        if src == dst:
            return v
        if src.is_integral and dst.is_double:
            return b.cast("sitofp", v, F64)
        if src.is_double and dst.is_integral:
            iv = b.cast("fptosi", v, I64)
            if dst == CHAR:
                return b.binop("and", iv, ConstantInt(I64, 0xFF))
            return iv
        if src == INT and dst == CHAR:
            return b.binop("and", v, ConstantInt(I64, 0xFF))
        if src == CHAR and dst == INT:
            return v  # already widened
        if src.is_pointer and dst.is_pointer:
            return b.bitcast(v, _lir_type(dst))
        if src.is_pointer and dst.is_integral:
            return b.ptrtoint(v, I64)
        if src.is_integral and dst.is_pointer:
            return b.inttoptr(v, _lir_type(dst))
        raise FrontendError(f"cannot cast {src} to {dst}")


def compile_to_lir(source: str) -> Module:
    """Compile mini-C source to typed LIR (the Native route)."""
    program = parse(source)
    sema = analyze(program)
    return LIRFrontend(sema).generate()
