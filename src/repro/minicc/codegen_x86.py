"""mini-C → x86-64 code generator.

A classic single-pass stack-machine code generator: integer/pointer values
live in ``rax``, doubles in ``xmm0``, sub-expressions are spilled to the
machine stack, locals live in ``rbp``-relative slots.  This deliberately
mirrors what an unoptimized (or lightly optimized) C compiler emits — stack
slot traffic, explicit flag-setting comparisons, SSE scalar FP — which is
exactly the input shape the binary lifter has to cope with.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..x86.asm import Assembler, AsmFunction
from ..x86.isa import Imm, Instr, Label, Mem, Reg
from ..x86.objfile import X86Object
from ..x86.registers import INT_PARAM_REGS
from .astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    CHAR,
    Continue,
    CType,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    If,
    Index,
    INT,
    IntLit,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    While,
)
from .sema import SemaResult, analyze
from .parser import parse

# mini-C builtin -> runtime external symbol
EXTERNAL_NAMES = {
    "malloc": "malloc",
    "spawn": "spawn",
    "join": "join",
    "print_i": "print_i64",
    "print_f": "print_f64",
    "thread_id": "thread_id",
}

# Mutex builtins lower to pthread calls.  Declared only when actually used
# so the stub layout of lock-free programs is unchanged; the emulators
# execute them through the loader's extern catalog.
MUTEX_EXTERNAL_NAMES = {
    "mutex_lock": "pthread_mutex_lock",
    "mutex_unlock": "pthread_mutex_unlock",
}


class CodegenError(Exception):
    pass


class _FuncCtx:
    def __init__(
        self, func: FuncDef, reg_locals: dict[str, str], save_count: int = 0
    ) -> None:
        self.func = func
        # A local's home is ("slot", rbp_offset) or ("reg", callee_saved_reg).
        # Slots start below the callee-saved register save area.
        self.scopes: list[dict[str, tuple[str, object, CType]]] = [{}]
        self.reg_locals = reg_locals
        self.next_offset = 8 * save_count
        self.label_counter = 0
        self.break_labels: list[str] = []
        self.continue_labels: list[str] = []

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, name: str, ctype: CType) -> tuple[str, object, CType]:
        if name in self.reg_locals:
            home = ("reg", self.reg_locals[name], ctype)
        else:
            self.next_offset += 8
            home = ("slot", self.next_offset, ctype)
        self.scopes[-1][name] = home
        return home

    def lookup(self, name: str) -> Optional[tuple[str, object, CType]]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}{self.label_counter}"


def _count_decls(stmt: Stmt) -> int:
    if isinstance(stmt, Block):
        return sum(_count_decls(s) for s in stmt.statements)
    if isinstance(stmt, Decl):
        return 1
    if isinstance(stmt, If):
        n = _count_decls(stmt.then)
        if stmt.otherwise is not None:
            n += _count_decls(stmt.otherwise)
        return n
    if isinstance(stmt, While):
        return _count_decls(stmt.body)
    if isinstance(stmt, For):
        n = _count_decls(stmt.body)
        if stmt.init is not None:
            n += _count_decls(stmt.init)
        return n
    return 0


# Callee-saved registers available for hot scalar locals (rbp is the frame
# pointer; rbx/r12-r15 survive calls per the System-V ABI).
_LOCAL_REGS = ["rbx", "r12", "r13", "r14", "r15"]


def _walk_stmts(stmt):
    yield stmt
    if isinstance(stmt, Block):
        for s in stmt.statements:
            yield from _walk_stmts(s)
    elif isinstance(stmt, If):
        yield from _walk_stmts(stmt.then)
        if stmt.otherwise is not None:
            yield from _walk_stmts(stmt.otherwise)
    elif isinstance(stmt, While):
        yield from _walk_stmts(stmt.body)
    elif isinstance(stmt, For):
        if stmt.init is not None:
            yield from _walk_stmts(stmt.init)
        yield from _walk_stmts(stmt.body)


def _walk_exprs(expr):
    if expr is None:
        return
    yield expr
    for attr in ("operand", "lhs", "rhs", "target", "value", "base", "index"):
        sub = getattr(expr, attr, None)
        if isinstance(sub, Expr):
            yield from _walk_exprs(sub)
    if isinstance(expr, Call):
        for a in expr.args:
            yield from _walk_exprs(a)


def _stmt_exprs(stmt):
    for attr in ("expr", "cond", "init", "step", "value"):
        sub = getattr(stmt, attr, None)
        if isinstance(sub, Expr):
            yield from _walk_exprs(sub)


# Builtins that lower to inline instructions (no machine-level call).
_INLINE_BUILTINS = {"fence", "sqrt", "atomic_add", "atomic_cas", "atomic_xchg"}


def _is_leaf(func: FuncDef) -> bool:
    """True when the body performs no machine-level calls, so caller-saved
    registers (including XMM) can hold values across the whole function."""
    for stmt in _walk_stmts(func.body):
        for expr in _stmt_exprs(stmt):
            if isinstance(expr, Call) and not (
                expr.is_builtin and expr.name in _INLINE_BUILTINS
            ):
                return False
    return True


def _choose_register_locals(func: FuncDef) -> dict[str, str]:
    """Pick hot, non-addressed, uniquely-declared scalar locals and
    parameters to live in registers — roughly what -O1/-O2 register
    allocation does for loop counters, accumulators and leaf-function
    parameters.

    Integers use callee-saved GPRs (plus r10/r11 in leaf functions, where
    nothing clobbers them).  Doubles are register-allocated only in leaf
    functions (x86-64 has no callee-saved XMM registers), using xmm8-xmm13.
    """
    leaf = _is_leaf(func)
    decl_type: dict[str, CType] = {p.name: p.ctype for p in func.params}
    decl_count: dict[str, int] = {p.name: 1 for p in func.params}
    for stmt in _walk_stmts(func.body):
        if isinstance(stmt, Decl):
            decl_count[stmt.name] = decl_count.get(stmt.name, 0) + 1
            decl_type[stmt.name] = stmt.ctype
    addressed: set[str] = set()
    uses: dict[str, int] = {}
    for stmt in _walk_stmts(func.body):
        for expr in _stmt_exprs(stmt):
            if isinstance(expr, Unary) and expr.op == "&" and isinstance(
                expr.operand, VarRef
            ):
                addressed.add(expr.operand.name)
            if isinstance(expr, VarRef):
                uses[expr.name] = uses.get(expr.name, 0) + 1

    int_pool = list(_LOCAL_REGS) + (["r10", "r11"] if leaf else [])
    fp_pool = [f"xmm{i}" for i in range(8, 14)] if leaf else []
    candidates = [
        name
        for name, n in decl_count.items()
        if n == 1 and name not in addressed
    ]
    candidates.sort(key=lambda n: -uses.get(n, 0))
    assignment: dict[str, str] = {}
    for name in candidates:
        pool = fp_pool if decl_type[name].is_double else int_pool
        if pool:
            assignment[name] = pool.pop(0)
    return assignment


class X86CodeGen:
    def __init__(self, sema: SemaResult) -> None:
        self.sema = sema
        self.asm = Assembler()
        self.ctx: Optional[_FuncCtx] = None
        self.out: Optional[AsmFunction] = None

    # ---- driver ----------------------------------------------------------
    def generate(self, entry: str = "main") -> X86Object:
        program = self.sema.program
        for name in sorted(EXTERNAL_NAMES.values()):
            self.asm.declare_external(name)
        used_mutex = sorted({
            MUTEX_EXTERNAL_NAMES[e.name]
            for f in program.functions
            for stmt in _walk_stmts(f.body)
            for e in _stmt_exprs(stmt)
            if isinstance(e, Call) and e.is_builtin
            and e.name in MUTEX_EXTERNAL_NAMES
        })
        for name in used_mutex:
            self.asm.declare_external(name)
        for g in program.globals:
            init = b""
            if g.init is not None:
                if isinstance(g.init, IntLit):
                    size = g.ctype.sizeof()
                    init = (g.init.value & ((1 << (8 * size)) - 1)).to_bytes(
                        size, "little"
                    )
                elif isinstance(g.init, FloatLit):
                    init = struct.pack("<d", g.init.value)
            self.asm.add_global(g.name, max(1, g.sizeof()), init)
        for sym, data in program.strings.items():
            self.asm.add_global(sym, len(data), data)
        for func in program.functions:
            self._gen_function(func)
        obj = self.asm.link(entry)
        for name in used_mutex:
            # Type the pthread calls for the lifter (one pointer arg,
            # integer status return), matching the loader catalog.
            obj.extern_sigs[name] = (1, 0, "i64")
        return obj

    # ---- emission helpers ----------------------------------------------------
    def emit(self, mnemonic: str, *operands, lock: bool = False) -> None:
        assert self.out is not None
        self.out.emit(Instr(mnemonic, list(operands), lock=lock))

    def label(self, name: str) -> None:
        assert self.out is not None
        self.out.label(name)

    def _slot(self, offset: int, width: int = 64) -> Mem:
        return Mem(base="rbp", disp=-offset, width=width)

    # ---- functions -----------------------------------------------------------
    def _gen_function(self, func: FuncDef) -> None:
        reg_locals = _choose_register_locals(func)
        saved = sorted(
            {r for r in reg_locals.values() if r in _LOCAL_REGS},
            key=_LOCAL_REGS.index,
        )
        self.ctx = _FuncCtx(func, reg_locals, save_count=len(saved))
        self.out = AsmFunction(func.name)
        nslots = len(func.params) + _count_decls(func.body)
        frame = (nslots * 8 + 15) & ~15

        self.emit("push", Reg("rbp"))
        self.emit("mov", Reg("rbp"), Reg("rsp"))
        for reg in saved:
            self.emit("push", Reg(reg))
        if frame:
            self.emit("sub", Reg("rsp"), Imm(frame))

        # Spill parameters into local slots (System-V register assignment).
        int_idx = 0
        sse_idx = 0
        for p in func.params:
            home = self.ctx.declare(p.name, p.ctype)
            kind, where, _ = home
            if p.ctype.is_double:
                src = Reg(f"xmm{sse_idx}")
                if kind == "reg":
                    self.emit("movsd", Reg(where), src)
                else:
                    self.emit("movsd", self._slot(where), src)
                sse_idx += 1
            else:
                if int_idx >= len(INT_PARAM_REGS):
                    raise CodegenError("too many integer parameters")
                src = Reg(INT_PARAM_REGS[int_idx])
                if kind == "reg":
                    self.emit("mov", Reg(where), src)
                else:
                    self.emit("mov", self._slot(where), src)
                int_idx += 1

        self._epilogue = self.ctx.new_label("ret")
        self._gen_block(func.body)
        # Fall-through return (void or missing return yields 0).
        self.emit("xor", Reg("rax"), Reg("rax"))
        self.label(self._epilogue)
        self.emit("lea", Reg("rsp"), Mem(base="rbp", disp=-8 * len(saved)))
        for reg in reversed(saved):
            self.emit("pop", Reg(reg))
        self.emit("pop", Reg("rbp"))
        self.emit("ret")
        self.asm.add_function(self.out)
        self.ctx = None
        self.out = None

    # ---- statements -------------------------------------------------------------
    def _gen_block(self, block: Block) -> None:
        assert self.ctx is not None
        self.ctx.push_scope()
        for stmt in block.statements:
            self._gen_stmt(stmt)
        self.ctx.pop_scope()

    def _gen_stmt(self, stmt: Stmt) -> None:
        assert self.ctx is not None
        if isinstance(stmt, Block):
            self._gen_block(stmt)
        elif isinstance(stmt, Decl):
            home = self.ctx.declare(stmt.name, stmt.ctype)
            if stmt.init is not None:
                self._gen_expr(stmt.init)
                if stmt.ctype == CHAR:
                    self.emit("and", Reg("rax"), Imm(0xFF))
                self._store_local(home, Reg("rax"))
        elif isinstance(stmt, ExprStmt):
            self._gen_expr(stmt.expr)
        elif isinstance(stmt, If):
            else_l = self.ctx.new_label("else")
            end_l = self.ctx.new_label("endif")
            self._gen_cond_jump(stmt.cond, else_l)
            self._gen_stmt(stmt.then)
            if stmt.otherwise is not None:
                self.emit("jmp", Label(end_l))
                self.label(else_l)
                self._gen_stmt(stmt.otherwise)
                self.label(end_l)
            else:
                self.label(else_l)
        elif isinstance(stmt, While):
            head = self.ctx.new_label("while")
            exit_l = self.ctx.new_label("endwhile")
            self.label(head)
            self._gen_cond_jump(stmt.cond, exit_l)
            self.ctx.break_labels.append(exit_l)
            self.ctx.continue_labels.append(head)
            self._gen_stmt(stmt.body)
            self.ctx.break_labels.pop()
            self.ctx.continue_labels.pop()
            self.emit("jmp", Label(head))
            self.label(exit_l)
        elif isinstance(stmt, For):
            self.ctx.push_scope()
            head = self.ctx.new_label("for")
            step_l = self.ctx.new_label("forstep")
            exit_l = self.ctx.new_label("endfor")
            if stmt.init is not None:
                self._gen_stmt(stmt.init)
            self.label(head)
            if stmt.cond is not None:
                self._gen_cond_jump(stmt.cond, exit_l)
            self.ctx.break_labels.append(exit_l)
            self.ctx.continue_labels.append(step_l)
            self._gen_stmt(stmt.body)
            self.ctx.break_labels.pop()
            self.ctx.continue_labels.pop()
            self.label(step_l)
            if stmt.step is not None:
                self._gen_expr(stmt.step)
            self.emit("jmp", Label(head))
            self.label(exit_l)
            self.ctx.pop_scope()
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self._gen_expr(stmt.value)
            else:
                self.emit("xor", Reg("rax"), Reg("rax"))
            self.emit("jmp", Label(self._epilogue_label()))
        elif isinstance(stmt, Break):
            self.emit("jmp", Label(self.ctx.break_labels[-1]))
        elif isinstance(stmt, Continue):
            self.emit("jmp", Label(self.ctx.continue_labels[-1]))
        else:
            raise CodegenError(f"cannot codegen {type(stmt).__name__}")

    def _epilogue_label(self) -> str:
        return self._epilogue  # type: ignore[attr-defined]

    def _gen_cond_jump(self, cond: Expr, false_label: str) -> None:
        self._gen_expr(cond)
        self.emit("test", Reg("rax"), Reg("rax"))
        self.emit("je", Label(false_label))

    # ---- expressions -------------------------------------------------------------
    def _gen_expr(self, expr: Expr) -> None:
        """Leaves the value in rax (ints/pointers) or xmm0 (doubles)."""
        if isinstance(expr, IntLit):
            self._load_const(expr.value)
        elif isinstance(expr, FloatLit):
            bits = int.from_bytes(struct.pack("<d", expr.value), "little")
            self.emit("movabs", Reg("rax"), Imm(bits, 64))
            self.emit("movq", Reg("xmm0"), Reg("rax"))
        elif isinstance(expr, StringLit):
            self.emit("movabs", Reg("rax"), Label(expr.symbol))
        elif isinstance(expr, VarRef):
            self._gen_varref(expr)
        elif isinstance(expr, Unary):
            self._gen_unary(expr)
        elif isinstance(expr, Binary):
            self._gen_binary(expr)
        elif isinstance(expr, Assign):
            self._gen_assign(expr)
        elif isinstance(expr, Index):
            self._gen_address(expr)
            self._load_from_rax(expr.ctype)
        elif isinstance(expr, Call):
            self._gen_call(expr)
        elif isinstance(expr, CastExpr):
            self._gen_cast(expr)
        else:
            raise CodegenError(f"cannot codegen {type(expr).__name__}")

    def _load_const(self, value: int) -> None:
        if -(2**31) <= value < 2**31:
            self.emit("mov", Reg("rax"), Imm(value))
        else:
            self.emit("movabs", Reg("rax"), Imm(value, 64))

    def _store_local(self, home: tuple, src: Reg) -> None:
        kind, where, ctype = home
        if ctype.is_double:
            if kind == "reg":
                self.emit("movsd", Reg(where), Reg("xmm0"))
            else:
                self.emit("movsd", self._slot(where), Reg("xmm0"))
        elif kind == "reg":
            self.emit("mov", Reg(where), src)
        else:
            self.emit("mov", self._slot(where), src)

    def _load_local(self, home: tuple, dst: Reg) -> None:
        kind, where, ctype = home
        if ctype.is_double:
            if kind == "reg":
                self.emit("movsd", Reg("xmm0"), Reg(where))
            else:
                self.emit("movsd", Reg("xmm0"), self._slot(where))
        elif kind == "reg":
            self.emit("mov", dst, Reg(where))
        else:
            self.emit("mov", dst, self._slot(where))

    def _gen_varref(self, expr: VarRef) -> None:
        assert self.ctx is not None
        if expr.scope == "local":
            entry = self.ctx.lookup(expr.name)
            if entry is None:
                raise CodegenError(f"unbound local {expr.name!r}")
            self._load_local(entry, Reg("rax"))
        elif expr.scope == "global":
            if expr.is_array:
                self.emit("movabs", Reg("rax"), Label(expr.name))
            else:
                self.emit("movabs", Reg("rcx"), Label(expr.name))
                self._load_from(Reg("rcx"), expr.ctype)
        elif expr.scope == "func":
            self.emit("movabs", Reg("rax"), Label(expr.name))
        else:
            raise CodegenError(f"unresolved variable {expr.name!r}")

    def _load_from(self, base: Reg, ctype: CType) -> None:
        mem = Mem(base=base.name, width=64)
        if ctype.is_double:
            self.emit("movsd", Reg("xmm0"), Mem(base=base.name, width=64))
        elif ctype == CHAR:
            self.emit("movzx", Reg("rax"), Mem(base=base.name, width=8))
        else:
            self.emit("mov", Reg("rax"), mem)

    def _load_from_rax(self, ctype: CType) -> None:
        self._load_from(Reg("rax"), ctype)

    def _gen_unary(self, expr: Unary) -> None:
        if expr.op == "&":
            self._gen_address(expr.operand)
            return
        if expr.op == "*":
            self._gen_expr(expr.operand)
            self._load_from_rax(expr.ctype)
            return
        self._gen_expr(expr.operand)
        if expr.op == "-":
            if expr.ctype.is_double:
                self.emit("pxor", Reg("xmm1"), Reg("xmm1"))
                self.emit("subsd", Reg("xmm1"), Reg("xmm0"))
                self.emit("movsd", Reg("xmm0"), Reg("xmm1"))
            else:
                self.emit("neg", Reg("rax"))
        elif expr.op == "!":
            self.emit("test", Reg("rax"), Reg("rax"))
            self.emit("sete", Reg("al"))
            self.emit("movzx", Reg("rax"), Reg("al"))
        elif expr.op == "~":
            self.emit("not", Reg("rax"))
        else:
            raise CodegenError(f"bad unary {expr.op}")

    # int binary helpers: lhs in rax, rhs in rcx
    _INT_OPS = {"+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor"}
    _CMP_CC = {"==": "e", "!=": "ne", "<": "l", "<=": "le", ">": "g",
               ">=": "ge"}
    _FCMP_CC = {"==": "e", "!=": "ne", "<": "b", "<=": "be", ">": "a",
                ">=": "ae"}

    def _gen_binary(self, expr: Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_logical(expr)
            return
        lt = expr.lhs.ctype
        rt = expr.rhs.ctype
        if lt.is_double or (op in self._CMP_CC and lt.is_double):
            self._gen_fbinary(expr)
            return
        # integer/pointer path
        self._gen_expr(expr.lhs)
        if not self._eval_simple_into(expr.rhs, "rcx"):
            self.emit("push", Reg("rax"))
            self._gen_expr(expr.rhs)
            self.emit("mov", Reg("rcx"), Reg("rax"))
            self.emit("pop", Reg("rax"))
        if op in ("+", "-") and lt.is_pointer and rt.is_integral:
            self._scale(Reg("rcx"), lt.element_size())
            self.emit(self._INT_OPS[op], Reg("rax"), Reg("rcx"))
        elif op == "-" and lt.is_pointer and rt.is_pointer:
            self.emit("sub", Reg("rax"), Reg("rcx"))
            size = lt.element_size()
            if size == 8:
                self.emit("sar", Reg("rax"), Imm(3, 8))
        elif op in self._INT_OPS:
            self.emit(self._INT_OPS[op], Reg("rax"), Reg("rcx"))
        elif op == "*":
            self.emit("imul", Reg("rax"), Reg("rcx"))
        elif op == "/":
            self.emit("cqo")
            self.emit("idiv", Reg("rcx"))
        elif op == "%":
            self.emit("cqo")
            self.emit("idiv", Reg("rcx"))
            self.emit("mov", Reg("rax"), Reg("rdx"))
        elif op in ("<<", ">>"):
            self.emit("shl" if op == "<<" else "sar", Reg("rax"), Reg("cl"))
        elif op in self._CMP_CC:
            self.emit("cmp", Reg("rax"), Reg("rcx"))
            self.emit(f"set{self._CMP_CC[op]}", Reg("al"))
            self.emit("movzx", Reg("rax"), Reg("al"))
        else:
            raise CodegenError(f"bad int binary {op}")

    def _eval_simple_into(self, expr: Expr, reg: str) -> bool:
        """Evaluate a trivial integer expression directly into ``reg``
        (no rax clobber), avoiding the push/pop dance.  Returns False when
        the expression is not trivial."""
        assert self.ctx is not None
        if isinstance(expr, IntLit) and -(2**31) <= expr.value < 2**31:
            self.emit("mov", Reg(reg), Imm(expr.value))
            return True
        if isinstance(expr, VarRef) and expr.scope == "local":
            entry = self.ctx.lookup(expr.name)
            if entry is None or entry[2].is_double:
                return False
            kind, where, _ = entry
            if kind == "reg":
                self.emit("mov", Reg(reg), Reg(where))
            else:
                self.emit("mov", Reg(reg), self._slot(where))
            return True
        if isinstance(expr, CastExpr) and self._is_free_cast(expr):
            return self._eval_simple_into(expr.operand, reg)
        return False

    @staticmethod
    def _is_free_cast(expr: CastExpr) -> bool:
        src = expr.operand.ctype
        dst = expr.target_type
        if src is None or dst is None:
            return False
        if src.is_double or dst.is_double or dst == CHAR:
            return False
        return True  # int/pointer casts are free at machine level

    def _scale(self, reg: Reg, size: int) -> None:
        if size == 1:
            return
        shift = {2: 1, 4: 2, 8: 3}.get(size)
        if shift is None:
            raise CodegenError(f"bad element size {size}")
        self.emit("shl", reg, Imm(shift, 8))

    def _eval_simple_double_into(self, expr: Expr, xmm: str) -> bool:
        """Evaluate a trivial double expression directly into ``xmm``
        (clobbers rax for literals).  Returns False when not trivial."""
        assert self.ctx is not None
        if isinstance(expr, FloatLit):
            bits = int.from_bytes(struct.pack("<d", expr.value), "little")
            self.emit("movabs", Reg("rax"), Imm(bits, 64))
            self.emit("movq", Reg(xmm), Reg("rax"))
            return True
        if isinstance(expr, VarRef) and expr.scope == "local":
            entry = self.ctx.lookup(expr.name)
            if entry is None or not entry[2].is_double:
                return False
            kind, where, _ = entry
            if kind == "reg":
                self.emit("movsd", Reg(xmm), Reg(where))
            else:
                self.emit("movsd", Reg(xmm), self._slot(where))
            return True
        return False

    def _gen_fbinary(self, expr: Binary) -> None:
        op = expr.op
        self._gen_expr(expr.lhs)
        if not self._eval_simple_double_into(expr.rhs, "xmm1"):
            self.emit("sub", Reg("rsp"), Imm(8))
            self.emit("movsd", Mem(base="rsp", width=64), Reg("xmm0"))
            self._gen_expr(expr.rhs)
            self.emit("movsd", Reg("xmm1"), Reg("xmm0"))
            self.emit("movsd", Reg("xmm0"), Mem(base="rsp", width=64))
            self.emit("add", Reg("rsp"), Imm(8))
        arith = {"+": "addsd", "-": "subsd", "*": "mulsd", "/": "divsd"}
        if op in arith:
            self.emit(arith[op], Reg("xmm0"), Reg("xmm1"))
        elif op in self._FCMP_CC:
            self.emit("ucomisd", Reg("xmm0"), Reg("xmm1"))
            self.emit(f"set{self._FCMP_CC[op]}", Reg("al"))
            self.emit("movzx", Reg("rax"), Reg("al"))
        else:
            raise CodegenError(f"bad float binary {op}")

    def _gen_logical(self, expr: Binary) -> None:
        assert self.ctx is not None
        done = self.ctx.new_label("ldone")
        short = self.ctx.new_label("lshort")
        self._gen_expr(expr.lhs)
        self.emit("test", Reg("rax"), Reg("rax"))
        if expr.op == "&&":
            self.emit("je", Label(short))
        else:
            self.emit("jne", Label(short))
        self._gen_expr(expr.rhs)
        self.emit("test", Reg("rax"), Reg("rax"))
        self.emit("setne", Reg("al"))
        self.emit("movzx", Reg("rax"), Reg("al"))
        self.emit("jmp", Label(done))
        self.label(short)
        self.emit("mov", Reg("rax"), Imm(0 if expr.op == "&&" else 1))
        self.label(done)

    # ---- addresses ------------------------------------------------------------
    def _gen_address(self, expr: Expr) -> None:
        """Leaves the address of an lvalue in rax."""
        assert self.ctx is not None
        if isinstance(expr, VarRef):
            if expr.scope == "local":
                entry = self.ctx.lookup(expr.name)
                if entry is None:
                    raise CodegenError(f"unbound local {expr.name!r}")
                kind, where, _ = entry
                if kind == "reg":
                    raise CodegenError(
                        f"address taken of register local {expr.name!r}"
                    )
                self.emit("lea", Reg("rax"), self._slot(where))
            elif expr.scope == "global":
                self.emit("movabs", Reg("rax"), Label(expr.name))
            else:
                raise CodegenError(f"cannot take address of {expr.name!r}")
        elif isinstance(expr, Index):
            size = expr.base.ctype.element_size()
            if size not in (1, 2, 4, 8):
                raise CodegenError(f"bad element size {size}")
            self._gen_expr(expr.base)
            if self._eval_simple_into(expr.index, "rcx"):
                self.emit(
                    "lea",
                    Reg("rax"),
                    Mem(base="rax", index="rcx", scale=size, width=64),
                )
            else:
                self.emit("push", Reg("rax"))
                self._gen_expr(expr.index)
                self.emit("pop", Reg("rcx"))
                self.emit(
                    "lea",
                    Reg("rax"),
                    Mem(base="rcx", index="rax", scale=size, width=64),
                )
        elif isinstance(expr, Unary) and expr.op == "*":
            self._gen_expr(expr.operand)
        else:
            raise CodegenError("not an lvalue")

    # ---- assignment ---------------------------------------------------------------
    def _gen_assign(self, expr: Assign) -> None:
        assert self.ctx is not None
        target = expr.target
        ctype = expr.ctype
        if isinstance(target, VarRef) and target.scope == "local":
            self._gen_expr(expr.value)
            entry = self.ctx.lookup(target.name)
            if entry is None:
                raise CodegenError(f"unbound local {target.name!r}")
            if ctype == CHAR:
                self.emit("and", Reg("rax"), Imm(0xFF))
            self._store_local(entry, Reg("rax"))
            return
        if isinstance(target, VarRef) and target.scope == "global":
            self._gen_expr(expr.value)
            self.emit("movabs", Reg("rcx"), Label(target.name))
            self._store_to(Reg("rcx"), ctype)
            return
        # *p = v or a[i] = v: value first, then address.
        if ctype.is_double:
            self._gen_expr(expr.value)
            self.emit("sub", Reg("rsp"), Imm(8))
            self.emit("movsd", Mem(base="rsp", width=64), Reg("xmm0"))
            self._gen_address(target)
            self.emit("movsd", Reg("xmm0"), Mem(base="rsp", width=64))
            self.emit("add", Reg("rsp"), Imm(8))
            self.emit("movsd", Mem(base="rax", width=64), Reg("xmm0"))
        else:
            self._gen_address(target)
            if self._eval_simple_into(expr.value, "rcx"):
                if ctype == CHAR:
                    self.emit("mov", Mem(base="rax", width=8), Reg("cl"))
                else:
                    self.emit("mov", Mem(base="rax", width=64), Reg("rcx"))
                self.emit("mov", Reg("rax"), Reg("rcx"))
                return
            self.emit("push", Reg("rax"))
            self._gen_expr(expr.value)
            self.emit("pop", Reg("rcx"))
            if ctype == CHAR:
                self.emit("mov", Mem(base="rcx", width=8), Reg("al"))
            else:
                self.emit("mov", Mem(base="rcx", width=64), Reg("rax"))

    def _store_to(self, base: Reg, ctype: CType) -> None:
        """Store rax/xmm0 through the pointer in ``base``."""
        if ctype.is_double:
            self.emit("movsd", Mem(base=base.name, width=64), Reg("xmm0"))
        elif ctype == CHAR:
            self.emit("mov", Mem(base=base.name, width=8), Reg("al"))
        else:
            self.emit("mov", Mem(base=base.name, width=64), Reg("rax"))

    # ---- calls ---------------------------------------------------------------------
    def _gen_call(self, expr: Call) -> None:
        if expr.is_builtin:
            self._gen_builtin(expr)
            return
        # Complex arguments are evaluated left to right and parked on the
        # stack; trivial arguments (literals and locals) are marshaled
        # directly into their parameter registers at the end — they have no
        # side effects, so the reordering is unobservable.
        kinds: list[str] = []
        simple: list[bool] = []
        for arg in expr.args:
            is_sse = arg.ctype.is_double
            kinds.append("sse" if is_sse else "int")
            trivial = (
                self._is_trivial_double(arg) if is_sse
                else self._is_trivial_int(arg)
            )
            simple.append(trivial)
            if trivial:
                continue
            self._gen_expr(arg)
            if is_sse:
                self.emit("sub", Reg("rsp"), Imm(8))
                self.emit("movsd", Mem(base="rsp", width=64), Reg("xmm0"))
            else:
                self.emit("push", Reg("rax"))
        int_regs = self._int_reg_seq(kinds)
        sse_regs = self._sse_reg_seq(kinds)
        for i in reversed(range(len(kinds))):
            if simple[i]:
                continue
            if kinds[i] == "sse":
                self.emit("movsd", Reg(sse_regs[i]), Mem(base="rsp", width=64))
                self.emit("add", Reg("rsp"), Imm(8))
            else:
                self.emit("pop", Reg(int_regs[i]))
        for i in range(len(kinds)):
            if not simple[i]:
                continue
            if kinds[i] == "sse":
                self._eval_simple_double_into(expr.args[i], sse_regs[i])
            else:
                self._eval_simple_into(expr.args[i], int_regs[i])
        self.emit("call", Label(expr.name))

    def _is_trivial_int(self, expr: Expr) -> bool:
        if isinstance(expr, IntLit) and -(2**31) <= expr.value < 2**31:
            return True
        if isinstance(expr, VarRef) and expr.scope == "local":
            entry = self.ctx.lookup(expr.name) if self.ctx else None
            return entry is not None and not entry[2].is_double
        if isinstance(expr, CastExpr) and self._is_free_cast(expr):
            return self._is_trivial_int(expr.operand)
        return False

    def _is_trivial_double(self, expr: Expr) -> bool:
        if isinstance(expr, FloatLit):
            return True
        if isinstance(expr, VarRef) and expr.scope == "local":
            entry = self.ctx.lookup(expr.name) if self.ctx else None
            return entry is not None and entry[2].is_double
        return False

    @staticmethod
    def _int_reg_seq(kinds: list[str]) -> list[str]:
        regs = []
        idx = 0
        for k in kinds:
            if k == "int":
                regs.append(INT_PARAM_REGS[idx])
                idx += 1
            else:
                regs.append("")
        return regs

    @staticmethod
    def _sse_reg_seq(kinds: list[str]) -> list[str]:
        regs = []
        idx = 0
        for k in kinds:
            if k == "sse":
                regs.append(f"xmm{idx}")
                idx += 1
            else:
                regs.append("")
        return regs

    def _gen_builtin(self, expr: Call) -> None:
        name = expr.name
        if name == "fence":
            self.emit("mfence")
            return
        if name == "sqrt":
            self._gen_expr(expr.args[0])
            self.emit("sqrtsd", Reg("xmm0"), Reg("xmm0"))
            return
        if name == "atomic_add" or name == "atomic_xchg":
            self._gen_expr(expr.args[0])
            self.emit("push", Reg("rax"))
            self._gen_expr(expr.args[1])
            self.emit("mov", Reg("rcx"), Reg("rax"))
            self.emit("pop", Reg("rdx"))
            if name == "atomic_add":
                self.emit("xadd", Mem(base="rdx", width=64), Reg("rcx"), lock=True)
            else:
                self.emit("xchg", Mem(base="rdx", width=64), Reg("rcx"))
            self.emit("mov", Reg("rax"), Reg("rcx"))
            return
        if name == "atomic_cas":
            self._gen_expr(expr.args[0])
            self.emit("push", Reg("rax"))
            self._gen_expr(expr.args[1])
            self.emit("push", Reg("rax"))
            self._gen_expr(expr.args[2])
            self.emit("mov", Reg("rcx"), Reg("rax"))
            self.emit("pop", Reg("rax"))
            self.emit("pop", Reg("rdx"))
            self.emit("cmpxchg", Mem(base="rdx", width=64), Reg("rcx"), lock=True)
            return
        if name == "spawn":
            fn = expr.args[0]
            assert isinstance(fn, VarRef)
            self._gen_expr(expr.args[1])
            self.emit("mov", Reg("rsi"), Reg("rax"))
            self.emit("movabs", Reg("rdi"), Label(fn.name))
            self.emit("call", Label(EXTERNAL_NAMES["spawn"]))
            return
        # Plain externals: join / malloc / print_i / print_f / thread_id
        # and the pthread mutex builtins.
        external = MUTEX_EXTERNAL_NAMES.get(name) or EXTERNAL_NAMES[name]
        if expr.args:
            self._gen_expr(expr.args[0])
            if expr.args[0].ctype.is_double:
                pass  # already in xmm0
            else:
                self.emit("mov", Reg("rdi"), Reg("rax"))
        self.emit("call", Label(external))

    # ---- casts ---------------------------------------------------------------------
    def _gen_cast(self, expr: CastExpr) -> None:
        self._gen_expr(expr.operand)
        src = expr.operand.ctype
        dst = expr.target_type
        if src == dst:
            return
        if src.is_integral and dst.is_double:
            self.emit("cvtsi2sd", Reg("xmm0"), Reg("rax"))
        elif src.is_double and dst.is_integral:
            self.emit("cvttsd2si", Reg("rax"), Reg("xmm0"))
            if dst == CHAR:
                self.emit("and", Reg("rax"), Imm(0xFF))
        elif src == CHAR and dst == INT:
            pass  # chars are kept zero-extended in rax
        elif src == INT and dst == CHAR:
            self.emit("and", Reg("rax"), Imm(0xFF))
        else:
            pass  # pointer/int casts are free at machine level


def compile_to_x86(source: str, entry: str = "main") -> X86Object:
    """Compile mini-C source text to a linked x86-64 image."""
    program = parse(source)
    sema = analyze(program)
    return X86CodeGen(sema).generate(entry)
