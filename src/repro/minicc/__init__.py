"""mini-C: the C-subset compiler used to produce x86-64 binaries (lifter
input) and native Arm binaries (the evaluation's Native baseline)."""

from .astnodes import CType, FuncDef, Program
from .codegen_x86 import CodegenError, compile_to_x86
from .lexer import LexError, tokenize
from .parser import ParseError, parse
from .sema import BUILTINS, SemaError, SemaResult, analyze

__all__ = [
    "CType", "FuncDef", "Program",
    "CodegenError", "compile_to_x86",
    "LexError", "tokenize",
    "ParseError", "parse",
    "BUILTINS", "SemaError", "SemaResult", "analyze",
]

from .codegen_arm import ArmCodegenError, compile_to_arm  # noqa: E402

__all__ += ["ArmCodegenError", "compile_to_arm"]
