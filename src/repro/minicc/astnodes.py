"""AST node definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CType:
    """``base`` is 'int', 'double', 'char' or 'void'; ``ptr`` is the number
    of pointer levels."""

    base: str
    ptr: int = 0

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0

    @property
    def is_double(self) -> bool:
        return self.base == "double" and self.ptr == 0

    @property
    def is_integral(self) -> bool:
        return self.base in ("int", "char") and self.ptr == 0

    def pointee(self) -> "CType":
        if not self.is_pointer:
            raise ValueError(f"{self} is not a pointer")
        return CType(self.base, self.ptr - 1)

    def pointer_to(self) -> "CType":
        return CType(self.base, self.ptr + 1)

    def element_size(self) -> int:
        """Size of the pointee (for pointer arithmetic)."""
        return self.pointee().sizeof()

    def sizeof(self) -> int:
        if self.ptr > 0:
            return 8
        return {"int": 8, "double": 8, "char": 1, "void": 0}[self.base]

    def __str__(self) -> str:
        return self.base + "*" * self.ptr


INT = CType("int")
DOUBLE = CType("double")
CHAR = CType("char")
VOID = CType("void")


# ---- expressions -----------------------------------------------------------


@dataclass
class Expr:
    line: int = 0
    ctype: Optional[CType] = None  # filled in by sema


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class StringLit(Expr):
    value: str = ""
    symbol: str = ""  # anonymous global name, assigned by sema


@dataclass
class VarRef(Expr):
    name: str = ""
    # sema fills these:
    scope: str = ""       # 'local', 'global', 'param', 'func'
    is_array: bool = False


@dataclass
class Unary(Expr):
    op: str = ""          # '-', '!', '~', '*', '&'
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Assign(Expr):
    target: Optional[Expr] = None  # VarRef, Unary('*'), or Index
    value: Optional[Expr] = None


@dataclass
class Index(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)
    is_builtin: bool = False


@dataclass
class CastExpr(Expr):
    target_type: Optional[CType] = None
    operand: Optional[Expr] = None


# ---- statements -----------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class Decl(Stmt):
    ctype: Optional[CType] = None
    name: str = ""
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    otherwise: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---- top level --------------------------------------------------------------


@dataclass
class GlobalDecl:
    ctype: CType
    name: str
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    line: int = 0

    def sizeof(self) -> int:
        if self.array_size is not None:
            return self.ctype.sizeof() * self.array_size
        return self.ctype.sizeof()


@dataclass
class Param:
    ctype: CType
    name: str


@dataclass
class FuncDef:
    ret_type: CType
    name: str
    params: list[Param]
    body: Block
    line: int = 0


@dataclass
class Program:
    globals: list[GlobalDecl] = field(default_factory=list)
    functions: list[FuncDef] = field(default_factory=list)
    # String-literal pool: symbol -> bytes (filled by sema).
    strings: dict[str, bytes] = field(default_factory=dict)

    def loc(self, source: str) -> int:
        """Non-blank, non-comment-only source lines (Table 1 metric)."""
        count = 0
        for raw in source.splitlines():
            stripped = raw.strip()
            if stripped and not stripped.startswith("//"):
                count += 1
        return count
