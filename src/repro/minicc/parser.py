"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from typing import Optional

from .astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    Continue,
    CType,
    Decl,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalDecl,
    If,
    Index,
    IntLit,
    Param,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    While,
)
from .lexer import Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, line: int) -> None:
        super().__init__(f"line {line}: {message}")
        self.line = line


_TYPE_KEYWORDS = {"int", "double", "char", "void"}


class Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # ---- token helpers ---------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, kind: str, text: Optional[str] = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.check(kind, text):
            tok = self.peek()
            want = text or kind
            raise ParseError(f"expected {want!r}, got {tok.text!r}", tok.line)
        return self.advance()

    # ---- types -------------------------------------------------------------
    def at_type(self) -> bool:
        return self.peek().kind == "keyword" and self.peek().text in _TYPE_KEYWORDS

    def parse_type(self) -> CType:
        tok = self.expect("keyword")
        if tok.text not in _TYPE_KEYWORDS:
            raise ParseError(f"expected a type, got {tok.text!r}", tok.line)
        ptr = 0
        while self.accept("op", "*"):
            ptr += 1
        return CType(tok.text, ptr)

    # ---- top level ------------------------------------------------------------
    def parse_program(self) -> Program:
        program = Program()
        while not self.check("eof"):
            start = self.pos
            self.parse_type()           # lookahead only: advance past type
            self.expect("ident")        # ... and name, to see what follows
            if self.check("op", "("):
                self.pos = start
                program.functions.append(self.parse_function())
            else:
                self.pos = start
                program.globals.append(self.parse_global())
        return program

    def parse_global(self) -> GlobalDecl:
        line = self.peek().line
        ctype = self.parse_type()
        name = self.expect("ident").text
        array_size = None
        init = None
        if self.accept("op", "["):
            array_size = int(self.expect("int").text, 0)
            self.expect("op", "]")
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return GlobalDecl(ctype, name, array_size, init, line)

    def parse_function(self) -> FuncDef:
        line = self.peek().line
        ret_type = self.parse_type()
        name = self.expect("ident").text
        self.expect("op", "(")
        params: list[Param] = []
        if not self.check("op", ")"):
            while True:
                if self.check("keyword", "void") and self.peek(1).text == ")":
                    self.advance()
                    break
                ptype = self.parse_type()
                pname = self.expect("ident").text
                params.append(Param(ptype, pname))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        body = self.parse_block()
        return FuncDef(ret_type, name, params, body, line)

    # ---- statements ---------------------------------------------------------
    def parse_block(self) -> Block:
        line = self.expect("op", "{").line
        stmts: list[Stmt] = []
        while not self.check("op", "}"):
            stmts.append(self.parse_stmt())
        self.expect("op", "}")
        return Block(line=line, statements=stmts)

    def parse_stmt(self) -> Stmt:
        tok = self.peek()
        if self.check("op", "{"):
            return self.parse_block()
        if self.at_type():
            return self.parse_decl()
        if self.check("keyword", "if"):
            return self.parse_if()
        if self.check("keyword", "while"):
            return self.parse_while()
        if self.check("keyword", "for"):
            return self.parse_for()
        if self.check("keyword", "return"):
            self.advance()
            value = None if self.check("op", ";") else self.parse_expr()
            self.expect("op", ";")
            return Return(line=tok.line, value=value)
        if self.accept("keyword", "break"):
            self.expect("op", ";")
            return Break(line=tok.line)
        if self.accept("keyword", "continue"):
            self.expect("op", ";")
            return Continue(line=tok.line)
        expr = self.parse_expr()
        self.expect("op", ";")
        return ExprStmt(line=tok.line, expr=expr)

    def parse_decl(self) -> Decl:
        line = self.peek().line
        ctype = self.parse_type()
        name = self.expect("ident").text
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return Decl(line=line, ctype=ctype, name=name, init=init)

    def parse_if(self) -> If:
        line = self.expect("keyword", "if").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        otherwise = None
        if self.accept("keyword", "else"):
            otherwise = self.parse_stmt()
        return If(line=line, cond=cond, then=then, otherwise=otherwise)

    def parse_while(self) -> While:
        line = self.expect("keyword", "while").line
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return While(line=line, cond=cond, body=body)

    def parse_for(self) -> For:
        line = self.expect("keyword", "for").line
        self.expect("op", "(")
        init: Optional[Stmt] = None
        if not self.check("op", ";"):
            if self.at_type():
                init = self.parse_decl()  # consumes ';'
            else:
                expr = self.parse_expr()
                self.expect("op", ";")
                init = ExprStmt(line=line, expr=expr)
        else:
            self.expect("op", ";")
        cond = None if self.check("op", ";") else self.parse_expr()
        self.expect("op", ";")
        step = None if self.check("op", ")") else self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return For(line=line, init=init, cond=cond, step=step, body=body)

    # ---- expressions (precedence climbing) -------------------------------------
    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", "<=", ">", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    def parse_expr(self) -> Expr:
        return self.parse_assignment()

    _COMPOUND_OPS = {
        "+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
        "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>",
    }

    def parse_assignment(self) -> Expr:
        lhs = self.parse_binary(0)
        if self.check("op", "="):
            line = self.advance().line
            value = self.parse_assignment()
            self._require_lvalue(lhs, line)
            return Assign(line=line, target=lhs, value=value)
        tok = self.peek()
        if tok.kind == "op" and tok.text in self._COMPOUND_OPS:
            # `a OP= b` desugars to `a = a OP b` (the lvalue is re-evaluated,
            # which is observationally identical for mini-C's pure lvalues).
            self.advance()
            rhs = self.parse_assignment()
            self._require_lvalue(lhs, tok.line)
            import copy

            read = copy.deepcopy(lhs)
            value = Binary(
                line=tok.line, op=self._COMPOUND_OPS[tok.text],
                lhs=read, rhs=rhs,
            )
            return Assign(line=tok.line, target=lhs, value=value)
        return lhs

    @staticmethod
    def _require_lvalue(expr: Expr, line: int) -> None:
        if not isinstance(expr, (VarRef, Index)) and not (
            isinstance(expr, Unary) and expr.op == "*"
        ):
            raise ParseError("invalid assignment target", line)

    def _desugar_incdec(self, target: Expr, op_text: str, line: int) -> Expr:
        """``x++``/``--x`` desugar to ``x = x ± 1``; the expression's value
        is the *new* value in both forms (documented mini-C deviation)."""
        self._require_lvalue(target, line)
        import copy

        read = copy.deepcopy(target)
        delta = Binary(
            line=line, op="+" if op_text == "++" else "-",
            lhs=read, rhs=IntLit(line=line, value=1),
        )
        return Assign(line=line, target=target, value=delta)

    def parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        lhs = self.parse_binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            op = self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = Binary(line=op.line, op=op.text, lhs=lhs, rhs=rhs)
        return lhs

    def parse_unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return self._desugar_incdec(operand, tok.text, tok.line)
        if tok.kind == "op" and tok.text in ("-", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return Unary(line=tok.line, op=tok.text, operand=operand)
        # Cast: '(' type ')' unary
        if tok.kind == "op" and tok.text == "(":
            nxt = self.peek(1)
            if nxt.kind == "keyword" and nxt.text in _TYPE_KEYWORDS:
                self.advance()
                target = self.parse_type()
                self.expect("op", ")")
                operand = self.parse_unary()
                return CastExpr(line=tok.line, target_type=target, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_primary()
        while True:
            if self.check("op", "["):
                line = self.advance().line
                index = self.parse_expr()
                self.expect("op", "]")
                expr = Index(line=line, base=expr, index=index)
            elif self.peek().kind == "op" and self.peek().text in ("++", "--"):
                tok = self.advance()
                expr = self._desugar_incdec(expr, tok.text, tok.line)
            else:
                break
        return expr

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "int":
            self.advance()
            return IntLit(line=tok.line, value=int(tok.text, 0))
        if tok.kind == "float":
            self.advance()
            return FloatLit(line=tok.line, value=float(tok.text))
        if tok.kind == "char":
            self.advance()
            return IntLit(line=tok.line, value=ord(tok.text))
        if tok.kind == "string":
            self.advance()
            return StringLit(line=tok.line, value=tok.text)
        if tok.kind == "ident":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: list[Expr] = []
                if not self.check("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                return Call(line=tok.line, name=tok.text, args=args)
            return VarRef(line=tok.line, name=tok.text)
        if self.accept("op", "("):
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r}", tok.line)


def parse(source: str) -> Program:
    return Parser(tokenize(source)).parse_program()
