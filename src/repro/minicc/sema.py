"""Semantic analysis for mini-C: symbol resolution and type checking.

After ``analyze`` runs, every expression carries its ``ctype`` and all
implicit conversions (int↔double, char→int promotion) have been made
explicit as :class:`~repro.minicc.astnodes.CastExpr` nodes, so both code
generators are purely syntax-directed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .astnodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    CastExpr,
    CHAR,
    Continue,
    CType,
    Decl,
    DOUBLE,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    FuncDef,
    GlobalDecl,
    If,
    Index,
    INT,
    IntLit,
    Program,
    Return,
    Stmt,
    StringLit,
    Unary,
    VarRef,
    VOID,
    While,
)


class SemaError(Exception):
    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass
class BuiltinSig:
    name: str
    ret: CType
    params: list[CType]
    # spawn's first argument is a function name, not an expression value.
    takes_function: bool = False


BUILTINS: dict[str, BuiltinSig] = {
    "malloc": BuiltinSig("malloc", CType("char", 1), [INT]),
    "spawn": BuiltinSig("spawn", INT, [INT], takes_function=True),
    "join": BuiltinSig("join", INT, [INT]),
    "print_i": BuiltinSig("print_i", VOID, [INT]),
    "print_f": BuiltinSig("print_f", VOID, [DOUBLE]),
    "thread_id": BuiltinSig("thread_id", INT, []),
    "fence": BuiltinSig("fence", VOID, []),
    "atomic_add": BuiltinSig("atomic_add", INT, [CType("int", 1), INT]),
    "atomic_cas": BuiltinSig("atomic_cas", INT, [CType("int", 1), INT, INT]),
    "atomic_xchg": BuiltinSig("atomic_xchg", INT, [CType("int", 1), INT]),
    "sqrt": BuiltinSig("sqrt", DOUBLE, [DOUBLE]),
    # pthread mutexes: the argument is the lock word (int*, first 8 bytes
    # of the mutex; 0 = unlocked, 1 = held).
    "mutex_lock": BuiltinSig("mutex_lock", INT, [CType("int", 1)]),
    "mutex_unlock": BuiltinSig("mutex_unlock", INT, [CType("int", 1)]),
}


@dataclass
class SemaResult:
    program: Program
    functions: dict[str, FuncDef] = field(default_factory=dict)
    globals: dict[str, GlobalDecl] = field(default_factory=dict)


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.vars: dict[str, CType] = {}

    def lookup(self, name: str) -> Optional[CType]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def declare(self, name: str, ctype: CType, line: int) -> None:
        if name in self.vars:
            raise SemaError(f"redeclaration of {name!r}", line)
        self.vars[name] = ctype


class Analyzer:
    def __init__(self, program: Program) -> None:
        self.program = program
        self.result = SemaResult(program)
        self.current: Optional[FuncDef] = None
        self._string_counter = 0
        self._loop_depth = 0

    # ---- driver ----------------------------------------------------------
    def analyze(self) -> SemaResult:
        for g in self.program.globals:
            if g.name in self.result.globals:
                raise SemaError(f"duplicate global {g.name!r}", g.line)
            if g.ctype == VOID:
                raise SemaError("global of type void", g.line)
            if g.init is not None and not isinstance(g.init, (IntLit, FloatLit)):
                raise SemaError(
                    f"global {g.name!r} initializer must be a literal", g.line
                )
            self.result.globals[g.name] = g
        for f in self.program.functions:
            if f.name in self.result.functions or f.name in BUILTINS:
                raise SemaError(f"duplicate function {f.name!r}", f.line)
            self.result.functions[f.name] = f
        for f in self.program.functions:
            self._check_function(f)
        return self.result

    def _check_function(self, func: FuncDef) -> None:
        self.current = func
        scope = _Scope()
        for p in func.params:
            scope.declare(p.name, p.ctype, func.line)
        self._check_block(func.body, scope)
        self.current = None

    # ---- statements --------------------------------------------------------
    def _check_block(self, block: Block, scope: _Scope) -> None:
        inner = _Scope(scope)
        for stmt in block.statements:
            self._check_stmt(stmt, inner)

    def _check_stmt(self, stmt: Stmt, scope: _Scope) -> None:
        if isinstance(stmt, Block):
            self._check_block(stmt, scope)
        elif isinstance(stmt, Decl):
            if stmt.ctype == VOID:
                raise SemaError("variable of type void", stmt.line)
            if stmt.init is not None:
                self._check_expr(stmt.init, scope)
                stmt.init = self._coerce(stmt.init, stmt.ctype, stmt.line)
            scope.declare(stmt.name, stmt.ctype, stmt.line)
        elif isinstance(stmt, ExprStmt):
            self._check_expr(stmt.expr, scope)
        elif isinstance(stmt, If):
            self._check_cond(stmt, "cond", scope)
            self._check_stmt(stmt.then, scope)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, scope)
        elif isinstance(stmt, While):
            self._check_cond(stmt, "cond", scope)
            self._loop_depth += 1
            self._check_stmt(stmt.body, scope)
            self._loop_depth -= 1
        elif isinstance(stmt, For):
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._check_cond(stmt, "cond", inner)
            if stmt.step is not None:
                self._check_expr(stmt.step, inner)
            self._loop_depth += 1
            self._check_stmt(stmt.body, inner)
            self._loop_depth -= 1
        elif isinstance(stmt, Return):
            assert self.current is not None
            want = self.current.ret_type
            if stmt.value is None:
                if want != VOID:
                    raise SemaError("missing return value", stmt.line)
            else:
                if want == VOID:
                    raise SemaError("return value in void function", stmt.line)
                self._check_expr(stmt.value, scope)
                stmt.value = self._coerce(stmt.value, want, stmt.line)
        elif isinstance(stmt, (Break, Continue)):
            if self._loop_depth == 0:
                raise SemaError("break/continue outside a loop", stmt.line)
        else:
            raise SemaError(f"unknown statement {type(stmt).__name__}")

    def _check_cond(self, stmt, attr: str, scope: _Scope) -> None:
        expr = getattr(stmt, attr)
        self._check_expr(expr, scope)
        t = expr.ctype
        if t.is_double:
            setattr(stmt, attr, self._coerce(expr, INT, stmt.line))
        # ints, chars and pointers are all valid conditions

    # ---- expressions ---------------------------------------------------------
    def _check_expr(self, expr: Expr, scope: _Scope) -> CType:
        if isinstance(expr, IntLit):
            expr.ctype = INT
        elif isinstance(expr, FloatLit):
            expr.ctype = DOUBLE
        elif isinstance(expr, StringLit):
            symbol = f".str{self._string_counter}"
            self._string_counter += 1
            expr.symbol = symbol
            self.program.strings[symbol] = expr.value.encode() + b"\0"
            expr.ctype = CType("char", 1)
        elif isinstance(expr, VarRef):
            expr.ctype = self._check_varref(expr, scope)
        elif isinstance(expr, Unary):
            expr.ctype = self._check_unary(expr, scope)
        elif isinstance(expr, Binary):
            expr.ctype = self._check_binary(expr, scope)
        elif isinstance(expr, Assign):
            expr.ctype = self._check_assign(expr, scope)
        elif isinstance(expr, Index):
            expr.ctype = self._check_index(expr, scope)
        elif isinstance(expr, Call):
            expr.ctype = self._check_call(expr, scope)
        elif isinstance(expr, CastExpr):
            self._check_expr(expr.operand, scope)
            self._check_cast_valid(expr)
            expr.ctype = expr.target_type
        else:
            raise SemaError(f"unknown expression {type(expr).__name__}", expr.line)
        return expr.ctype

    def _check_varref(self, expr: VarRef, scope: _Scope) -> CType:
        local = scope.lookup(expr.name)
        if local is not None:
            expr.scope = "local"
            return local
        g = self.result.globals.get(expr.name)
        if g is not None:
            expr.scope = "global"
            expr.is_array = g.array_size is not None
            if expr.is_array:
                return g.ctype.pointer_to()  # arrays decay to pointers
            return g.ctype
        if expr.name in self.result.functions:
            expr.scope = "func"
            return INT  # function designator (only meaningful to spawn)
        raise SemaError(f"undeclared identifier {expr.name!r}", expr.line)

    def _check_unary(self, expr: Unary, scope: _Scope) -> CType:
        t = self._check_expr(expr.operand, scope)
        if expr.op == "-":
            if t.is_double:
                return DOUBLE
            if t.is_integral:
                expr.operand = self._promote_char(expr.operand)
                return INT
            raise SemaError("cannot negate a pointer", expr.line)
        if expr.op == "!":
            if t.is_double:
                expr.operand = self._coerce(expr.operand, INT, expr.line)
            return INT
        if expr.op == "~":
            if not t.is_integral:
                raise SemaError("~ requires an integer", expr.line)
            expr.operand = self._promote_char(expr.operand)
            return INT
        if expr.op == "*":
            if not t.is_pointer:
                raise SemaError("cannot dereference a non-pointer", expr.line)
            return t.pointee()
        if expr.op == "&":
            inner = expr.operand
            if isinstance(inner, VarRef):
                if inner.scope == "func":
                    raise SemaError("cannot take address of function", expr.line)
                if inner.is_array:
                    return t  # &array is the array pointer itself
                return t.pointer_to()
            if isinstance(inner, Index):
                return t.pointer_to()
            if isinstance(inner, Unary) and inner.op == "*":
                return t.pointer_to()
            raise SemaError("cannot take address of this expression", expr.line)
        raise SemaError(f"unknown unary {expr.op!r}", expr.line)

    def _check_binary(self, expr: Binary, scope: _Scope) -> CType:
        lt = self._check_expr(expr.lhs, scope)
        rt = self._check_expr(expr.rhs, scope)
        op = expr.op
        if op in ("&&", "||"):
            for attr in ("lhs", "rhs"):
                sub = getattr(expr, attr)
                if sub.ctype.is_double:
                    setattr(expr, attr, self._coerce(sub, INT, expr.line))
            return INT
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer and rt.is_pointer:
                return INT
            if lt.is_pointer or rt.is_pointer:
                # pointer vs integer comparison (e.g. p == 0)
                return INT
            self._unify_arith(expr)
            return INT
        if op in ("%", "<<", ">>", "&", "|", "^"):
            if not lt.is_integral or not rt.is_integral:
                raise SemaError(f"{op} requires integers", expr.line)
            expr.lhs = self._promote_char(expr.lhs)
            expr.rhs = self._promote_char(expr.rhs)
            return INT
        if op in ("+", "-"):
            if lt.is_pointer and rt.is_integral:
                expr.rhs = self._promote_char(expr.rhs)
                return lt
            if op == "+" and lt.is_integral and rt.is_pointer:
                # canonicalize int + ptr as ptr + int
                expr.lhs, expr.rhs = expr.rhs, expr.lhs
                expr.lhs.ctype, expr.rhs.ctype = rt, lt
                return rt
            if op == "-" and lt.is_pointer and rt.is_pointer:
                if lt != rt:
                    raise SemaError("pointer subtraction type mismatch", expr.line)
                return INT
            if lt.is_pointer or rt.is_pointer:
                raise SemaError(f"bad pointer arithmetic with {op}", expr.line)
        # plain arithmetic
        return self._unify_arith(expr)

    def _unify_arith(self, expr: Binary) -> CType:
        lt, rt = expr.lhs.ctype, expr.rhs.ctype
        if lt.is_double or rt.is_double:
            expr.lhs = self._coerce(expr.lhs, DOUBLE, expr.line)
            expr.rhs = self._coerce(expr.rhs, DOUBLE, expr.line)
            return DOUBLE
        if lt.is_integral and rt.is_integral:
            expr.lhs = self._promote_char(expr.lhs)
            expr.rhs = self._promote_char(expr.rhs)
            return INT
        raise SemaError(f"bad operands to {expr.op}: {lt} and {rt}", expr.line)

    def _check_assign(self, expr: Assign, scope: _Scope) -> CType:
        target_t = self._check_expr(expr.target, scope)
        if isinstance(expr.target, VarRef):
            if expr.target.scope == "func":
                raise SemaError("cannot assign to function", expr.line)
            if expr.target.is_array:
                raise SemaError("cannot assign to array", expr.line)
        self._check_expr(expr.value, scope)
        expr.value = self._coerce(expr.value, target_t, expr.line)
        return target_t

    def _check_index(self, expr: Index, scope: _Scope) -> CType:
        base_t = self._check_expr(expr.base, scope)
        if not base_t.is_pointer:
            raise SemaError("indexing a non-pointer", expr.line)
        idx_t = self._check_expr(expr.index, scope)
        if not idx_t.is_integral:
            raise SemaError("array index must be an integer", expr.line)
        expr.index = self._promote_char(expr.index)
        return base_t.pointee()

    def _check_call(self, expr: Call, scope: _Scope) -> CType:
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            expr.is_builtin = True
            if len(expr.args) != len(builtin.params) and not (
                builtin.takes_function
            ):
                raise SemaError(
                    f"{expr.name} expects {len(builtin.params)} args", expr.line
                )
            if builtin.takes_function:
                # spawn(fn, arg): first arg must be a function name.
                if len(expr.args) != 2:
                    raise SemaError("spawn expects (function, arg)", expr.line)
                fn = expr.args[0]
                if not isinstance(fn, VarRef) or fn.name not in self.result.functions:
                    raise SemaError(
                        "spawn's first argument must be a function", expr.line
                    )
                fn.scope = "func"
                fn.ctype = INT
                self._check_expr(expr.args[1], scope)
                expr.args[1] = self._coerce(expr.args[1], INT, expr.line)
                return builtin.ret
            for i, want in enumerate(builtin.params):
                self._check_expr(expr.args[i], scope)
                expr.args[i] = self._coerce(expr.args[i], want, expr.line)
            return builtin.ret
        func = self.result.functions.get(expr.name)
        if func is None:
            raise SemaError(f"call to undeclared function {expr.name!r}", expr.line)
        if len(expr.args) != len(func.params):
            raise SemaError(
                f"{expr.name} expects {len(func.params)} args, got "
                f"{len(expr.args)}",
                expr.line,
            )
        for i, p in enumerate(func.params):
            self._check_expr(expr.args[i], scope)
            expr.args[i] = self._coerce(expr.args[i], p.ctype, expr.line)
        return func.ret_type

    # ---- conversions ----------------------------------------------------------
    def _promote_char(self, expr: Expr) -> Expr:
        if expr.ctype == CHAR:
            return self._wrap_cast(expr, INT)
        return expr

    def _coerce(self, expr: Expr, want: CType, line: int) -> Expr:
        have = expr.ctype
        if have == want:
            return expr
        if have.is_integral and want == INT:
            return self._wrap_cast(expr, INT)
        if have == INT and want == CHAR:
            return self._wrap_cast(expr, CHAR)
        if have.is_integral and want == DOUBLE:
            return self._wrap_cast(self._promote_char(expr), DOUBLE)
        if have == DOUBLE and want.is_integral:
            return self._wrap_cast(expr, want)
        if have.is_pointer and want.is_pointer:
            return self._wrap_cast(expr, want)  # pointer cast, free
        if have.is_pointer and want == INT:
            return self._wrap_cast(expr, INT)
        if have == INT and want.is_pointer:
            return self._wrap_cast(expr, want)
        raise SemaError(f"cannot convert {have} to {want}", line)

    @staticmethod
    def _wrap_cast(expr: Expr, target: CType) -> CastExpr:
        cast = CastExpr(line=expr.line, target_type=target, operand=expr)
        cast.ctype = target
        return cast

    def _check_cast_valid(self, expr: CastExpr) -> None:
        src = expr.operand.ctype
        dst = expr.target_type
        if dst == VOID:
            raise SemaError("cannot cast to void", expr.line)
        if src == VOID:
            raise SemaError("cannot cast from void", expr.line)
        # everything else (int/double/char/pointers) is permitted


def analyze(program: Program) -> SemaResult:
    return Analyzer(program).analyze()
