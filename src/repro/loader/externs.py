"""EFACT-style external-function knowledge base.

Real binaries call libc; a lifter that fails on the first ``printf``
lifts nothing.  Following EFACT, every external call target is resolved
*by name* against a catalog of typed summaries: the lifted code calls a
declared external with a known signature, both emulators implement the
function natively (sharing one formatting/string kernel so the
co-simulation oracle compares identical output), and the analysis layer
receives mod-ref/escape annotations so fence elision stays sound across
libc calls.  Unknown externals degrade to conservative opaque calls with
a remark — never a hard error.

glibc decorates the symbols actually found at call targets
(``__printf``, ``_IO_puts``, ``strlen_ifunc`` for ifunc resolvers, ...);
:func:`normalize_name` strips the decorations back to the canonical
catalog name.

The catalog's analysis annotations deliberately treat libc-internal
state (the heap free list, ``FILE`` buffers) as invisible to lifted
code, the same stance the minicc runtime takes for ``print_i64``: a
``printf`` between two accesses of user data neither reads nor writes
that data unless a pointer to it is passed in.
"""

from __future__ import annotations

from dataclasses import dataclass

#: pointsto mod/ref encoding (mirrors repro.analysis.pointsto.REF/MOD).
_REF, _MOD = 1, 2

RETRY = "retry"  # blocking-call protocol shared with the emulators


@dataclass(frozen=True)
class CatalogEntry:
    """One known external function: signature plus analysis effects."""

    name: str
    argc: int                  # integer (GPR) parameters in the lifted sig
    ret: str = "i64"           # "i64" | "void"
    kind: str = "pure"         # alloc | memory | pure | io | control | thread
    reads: tuple[int, ...] = ()    # params whose pointee may be read
    writes: tuple[int, ...] = ()   # params whose pointee may be written
    escapes: tuple[int, ...] = ()  # params published to other threads
    # (dst_param, src_param): *dst receives *src's contents (memcpy may
    # copy pointers, so provenance must flow).
    copies: tuple[tuple[int, int], ...] = ()
    returns_param: int | None = None  # returns one of its pointer args
    noreturn: bool = False

    @property
    def sig(self) -> tuple[int, int, str]:
        """(int_args, sse_args, ret) in the lifter's EXTERNAL_SIGS shape."""
        return (self.argc, 0, self.ret)


def _e(name: str, argc: int, **kw) -> tuple[str, CatalogEntry]:
    return name, CatalogEntry(name, argc, **kw)


#: Canonical name -> typed summary.  ``printf`` supports the format
#: subset implemented by :func:`format_printf`; its lifted signature
#: passes the first two variadic slots, which covers the typical
#: "format + up to two values" call.
CATALOG: dict[str, CatalogEntry] = dict([
    _e("malloc", 1, kind="alloc"),
    _e("calloc", 2, kind="alloc"),
    _e("free", 1, ret="void", kind="alloc"),
    _e("memcpy", 3, kind="memory", reads=(1,), writes=(0,),
       copies=((0, 1),), returns_param=0),
    _e("memmove", 3, kind="memory", reads=(1,), writes=(0,),
       copies=((0, 1),), returns_param=0),
    _e("memset", 3, kind="memory", writes=(0,), returns_param=0),
    _e("strlen", 1, reads=(0,)),
    _e("strcmp", 2, reads=(0, 1)),
    _e("strncmp", 3, reads=(0, 1)),
    _e("strcpy", 2, kind="memory", reads=(1,), writes=(0,),
       returns_param=0),
    _e("atoi", 1, reads=(0,)),
    _e("puts", 1, kind="io", reads=(0,)),
    _e("putchar", 1, kind="io"),
    _e("putc", 2, kind="io"),  # (char, FILE*); the stream is opaque
    _e("printf", 3, kind="io", reads=(0, 1, 2)),
    _e("exit", 1, ret="void", kind="control", noreturn=True),
    _e("abort", 0, ret="void", kind="control", noreturn=True),
    # Both the start routine (arg 2) and its argument (arg 3) escape: the
    # spawned thread calls one with the other, so anything reachable from
    # either outlives the call and is shared across threads.
    _e("pthread_create", 4, kind="thread", writes=(0,), escapes=(2, 3)),
    _e("pthread_join", 2, kind="thread", writes=(1,)),
    # Mutexes: the lock word is the first 8 bytes of the pthread_mutex_t
    # (0 = unlocked, 1 = held).  pthread_mutex_trylock is deliberately
    # *not* catalogued: it stays an opaque external, so neither the
    # lockset analysis (it may fail) nor the emulators assume anything.
    _e("pthread_mutex_init", 2, kind="thread", writes=(0,)),
    _e("pthread_mutex_lock", 1, kind="thread", reads=(0,), writes=(0,)),
    _e("pthread_mutex_unlock", 1, kind="thread", reads=(0,), writes=(0,)),
    _e("pthread_mutex_destroy", 1, kind="thread", writes=(0,)),
])

#: Decorated names that prefix-stripping alone cannot recover.
ALIASES: dict[str, str] = {
    "__pthread_create_2_1": "pthread_create",
    "__pthread_join": "pthread_join",
    "_IO_printf": "printf",
    "_exit": "exit",
    "cfree": "free",
}

_STRIP_PREFIXES = ("__libc_", "__GI_", "__new_", "_IO_", "__isoc99_", "__")
_STRIP_SUFFIXES = ("_ifunc", "_avx2", "_sse2", "_erms", "_unaligned")


def normalize_name(raw: str) -> str:
    """Undo glibc symbol decoration: ``__new_memcpy_ifunc`` -> ``memcpy``,
    ``_IO_putc`` -> ``putc``, ``__printf`` -> ``printf``."""
    name = ALIASES.get(raw, raw)
    changed = True
    while changed and name not in CATALOG:
        changed = False
        name = ALIASES.get(name, name)
        for suffix in _STRIP_SUFFIXES:
            if name.endswith(suffix) and len(name) > len(suffix):
                name = name[: -len(suffix)]
                changed = True
        for prefix in _STRIP_PREFIXES:
            if name.startswith(prefix) and len(name) > len(prefix):
                name = name[len(prefix):]
                changed = True
                break
    return name


def resolve_names(names) -> CatalogEntry | None:
    """First catalog entry any of the candidate raw names normalizes to."""
    for raw in names:
        entry = CATALOG.get(normalize_name(raw))
        if entry is not None:
            return entry
    return None


# ---- analysis integration -------------------------------------------------

_summary_cache: dict[str, object] = {}


def catalog_summary(name: str):
    """A :class:`repro.analysis.summaries.FunctionSummary` for a catalogued
    external, or None.  Names owned by the minicc runtime
    (``EXTERNAL_SIGS``) are excluded so existing minicc behaviour — and
    its conservative escape treatment — is unchanged."""
    if name in _summary_cache:
        return _summary_cache[name]
    from ..analysis.summaries import FunctionSummary
    from ..lifter.typedisc import EXTERNAL_SIGS

    entry = CATALOG.get(name)
    result = None
    if entry is not None and name not in EXTERNAL_SIGS:
        n = entry.argc
        modref = []
        for i in range(n):
            bits = 0
            if i in entry.reads:
                bits |= _REF
            if i in entry.writes:
                bits |= _MOD
            modref.append(bits)
        stores = []
        for i in range(n):
            toks = frozenset(
                ("contents", src) for dst, src in entry.copies if dst == i
            )
            stores.append(toks)
        if entry.returns_param is not None:
            returns = frozenset({("param", entry.returns_param)})
        elif entry.ret == "void":
            returns = frozenset()
        else:
            returns = frozenset({("unknown",)})
        result = FunctionSummary(
            function=name,
            nparams=n,
            param_escapes=tuple(i in entry.escapes for i in range(n)),
            contents_escape=(False,) * n,
            param_modref=tuple(modref),
            stores_into=tuple(stores),
            returns=returns,
            touches=0,
        )
    _summary_cache[name] = result
    return result


# ---- shared execution kernel ---------------------------------------------
#
# Both emulators execute catalogued externals through one set of handlers
# over a tiny environment protocol, so the co-simulation oracle sees
# byte-identical output and allocation behaviour on both sides.

class ExternEnv:
    """What a catalog handler may do to the host emulator.

    Adapters for the x86 and Arm emulators implement this; handlers are
    written once against it.
    """

    def arg(self, i: int) -> int:
        raise NotImplementedError

    def set_ret(self, value: int) -> None:
        raise NotImplementedError

    def read(self, addr: int, size: int) -> bytes:
        raise NotImplementedError

    def write(self, addr: int, data: bytes) -> None:
        raise NotImplementedError

    def alloc(self, size: int) -> int:
        raise NotImplementedError

    def emit(self, text: str) -> None:
        raise NotImplementedError

    def exit(self, status: int) -> None:
        raise NotImplementedError

    def spawn(self, fn_addr: int, arg: int) -> int:
        raise NotImplementedError

    def join(self, tid: int):
        """Result register of the joined thread, or RETRY if still running
        (x86 yields back to the scheduler; Arm runs the target inline)."""
        raise NotImplementedError

    def read_cstr(self, addr: int, limit: int = 1 << 20) -> bytes:
        out = bytearray()
        while len(out) < limit:
            b = self.read(addr + len(out), 1)
            if not b or b == b"\x00":
                break
            out += b
        return bytes(out)


def _signed(v: int, bits: int) -> int:
    v &= (1 << bits) - 1
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def format_printf(fmt: bytes, args: list[int], env: ExternEnv) -> str:
    """The supported ``printf`` subset: %d %i %u %ld %li %lu %zu %c %s
    %x %lx %p %% (with the l/ll/z length modifiers).  Unknown directives
    are emitted literally so a partially supported format degrades
    visibly rather than crashing."""
    out: list[str] = []
    argi = 0
    i = 0
    text = fmt.decode("latin-1")

    def next_arg() -> int:
        nonlocal argi
        v = args[argi] if argi < len(args) else 0
        argi += 1
        return v

    while i < len(text):
        ch = text[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        long_mod = False
        while j < len(text) and text[j] in "lz":
            long_mod = True
            j += 1
        conv = text[j] if j < len(text) else ""
        if conv == "%":
            out.append("%")
        elif conv in "di":
            out.append(str(_signed(next_arg(), 64 if long_mod else 32)))
        elif conv == "u":
            v = next_arg()
            out.append(str(v if long_mod else v & 0xFFFFFFFF))
        elif conv == "x":
            v = next_arg()
            out.append(format(v if long_mod else v & 0xFFFFFFFF, "x"))
        elif conv == "p":
            out.append(f"0x{next_arg():x}")
        elif conv == "c":
            out.append(chr(next_arg() & 0xFF))
        elif conv == "s":
            out.append(env.read_cstr(next_arg()).decode("latin-1"))
        else:
            out.append(text[i : j + 1])  # unsupported: pass through
        i = j + 1
    return "".join(out)


def _cstr_cmp(a: bytes, b: bytes) -> int:
    if a == b:
        return 0
    return -1 if (a + b"\x00") < (b + b"\x00") else 1


def _h_malloc(env: ExternEnv):
    env.set_ret(env.alloc(env.arg(0)))


def _h_calloc(env: ExternEnv):
    n = env.arg(0) * env.arg(1)
    addr = env.alloc(n)
    env.write(addr, b"\x00" * max(1, n))
    env.set_ret(addr)


def _h_free(env: ExternEnv):
    pass  # bump allocator: release is a no-op


def _h_memcpy(env: ExternEnv):
    d, s, n = env.arg(0), env.arg(1), env.arg(2)
    if n:
        env.write(d, env.read(s, n))
    env.set_ret(d)


def _h_memset(env: ExternEnv):
    d, c, n = env.arg(0), env.arg(1), env.arg(2)
    if n:
        env.write(d, bytes([c & 0xFF]) * n)
    env.set_ret(d)


def _h_strlen(env: ExternEnv):
    env.set_ret(len(env.read_cstr(env.arg(0))))


def _h_strcmp(env: ExternEnv):
    env.set_ret(
        _cstr_cmp(env.read_cstr(env.arg(0)), env.read_cstr(env.arg(1)))
        & (2**64 - 1)
    )


def _h_strncmp(env: ExternEnv):
    n = env.arg(2)
    env.set_ret(
        _cstr_cmp(env.read_cstr(env.arg(0))[:n], env.read_cstr(env.arg(1))[:n])
        & (2**64 - 1)
    )


def _h_strcpy(env: ExternEnv):
    d = env.arg(0)
    env.write(d, env.read_cstr(env.arg(1)) + b"\x00")
    env.set_ret(d)


def _h_atoi(env: ExternEnv):
    s = env.read_cstr(env.arg(0)).decode("latin-1").strip()
    num = ""
    for k, ch in enumerate(s):
        if ch in "+-" and k == 0 or ch.isdigit():
            num += ch
        else:
            break
    try:
        env.set_ret(int(num) & (2**64 - 1))
    except ValueError:
        env.set_ret(0)


def _h_puts(env: ExternEnv):
    env.emit(env.read_cstr(env.arg(0)).decode("latin-1") + "\n")
    env.set_ret(0)


def _h_putchar(env: ExternEnv):
    c = env.arg(0) & 0xFF
    env.emit(chr(c))
    env.set_ret(c)


def _h_putc(env: ExternEnv):
    # (char, FILE*) — the stream argument is libc-internal, ignored.
    c = env.arg(0) & 0xFF
    env.emit(chr(c))
    env.set_ret(c)


def _h_printf(env: ExternEnv):
    fmt = env.read_cstr(env.arg(0))
    text = format_printf(fmt, [env.arg(1), env.arg(2)], env)
    env.emit(text)
    env.set_ret(len(text))


def _h_exit(env: ExternEnv):
    env.exit(env.arg(0))


def _h_abort(env: ExternEnv):
    raise RuntimeError("program aborted")


def _h_pthread_create(env: ExternEnv):
    tidp, _attr, fn, arg = (env.arg(i) for i in range(4))
    tid = env.spawn(fn, arg)
    env.write(tidp, tid.to_bytes(8, "little"))
    env.set_ret(0)


def _h_pthread_mutex_init(env: ExternEnv):
    env.write(env.arg(0), (0).to_bytes(8, "little"))
    env.set_ret(0)


def _h_pthread_mutex_lock(env: ExternEnv):
    addr = env.arg(0)
    if int.from_bytes(env.read(addr, 8), "little") != 0:
        return RETRY  # held: re-execute the call after a scheduling step
    env.write(addr, (1).to_bytes(8, "little"))
    env.set_ret(0)


def _h_pthread_mutex_unlock(env: ExternEnv):
    env.write(env.arg(0), (0).to_bytes(8, "little"))
    env.set_ret(0)


def _h_pthread_mutex_destroy(env: ExternEnv):
    env.set_ret(0)


def _h_pthread_join(env: ExternEnv):
    result = env.join(env.arg(0))
    if result == RETRY:
        return RETRY
    retp = env.arg(1)
    if retp:
        env.write(retp, (result & (2**64 - 1)).to_bytes(8, "little"))
    env.set_ret(0)


HANDLERS = {
    "malloc": _h_malloc,
    "calloc": _h_calloc,
    "free": _h_free,
    "memcpy": _h_memcpy,
    "memmove": _h_memcpy,
    "memset": _h_memset,
    "strlen": _h_strlen,
    "strcmp": _h_strcmp,
    "strncmp": _h_strncmp,
    "strcpy": _h_strcpy,
    "atoi": _h_atoi,
    "puts": _h_puts,
    "putchar": _h_putchar,
    "putc": _h_putc,
    "printf": _h_printf,
    "exit": _h_exit,
    "abort": _h_abort,
    "pthread_create": _h_pthread_create,
    "pthread_join": _h_pthread_join,
    "pthread_mutex_init": _h_pthread_mutex_init,
    "pthread_mutex_lock": _h_pthread_mutex_lock,
    "pthread_mutex_unlock": _h_pthread_mutex_unlock,
    "pthread_mutex_destroy": _h_pthread_mutex_destroy,
}


# ---- emulator adapters ----------------------------------------------------

class _X86Env(ExternEnv):
    def __init__(self, emu, thread) -> None:
        self.emu = emu
        self.thread = thread

    _ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

    def arg(self, i: int) -> int:
        return self.thread.regs[self._ARG_REGS[i]]

    def set_ret(self, value: int) -> None:
        self.thread.regs["rax"] = value & (2**64 - 1)

    def read(self, addr: int, size: int) -> bytes:
        # Store buffers were flushed at the runtime-call barrier.
        return bytes(self.emu.memory[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self.emu.memory[addr : addr + len(data)] = data

    def alloc(self, size: int) -> int:
        addr = (self.emu.heap_ptr + 15) & ~15
        self.emu.heap_ptr = addr + max(1, size)
        return addr

    def emit(self, text: str) -> None:
        self.emu.output.append(text)

    def exit(self, status: int) -> None:
        for t in self.emu.threads:
            self.emu._flush(t)
            t.done = True
        self.emu.threads[0].regs["rax"] = status & (2**64 - 1)

    def spawn(self, fn_addr: int, arg: int) -> int:
        child = self.emu._make_thread(fn_addr)
        child.regs["rdi"] = arg
        return child.tid

    def join(self, tid: int):
        for t in self.emu.threads:
            if t.tid == tid:
                if not t.done:
                    return RETRY
                self.emu._flush(t)
                return t.regs["rax"]
        raise RuntimeError(f"join of unknown thread {tid}")


class _ArmEnv(ExternEnv):
    def __init__(self, emu, thread) -> None:
        self.emu = emu
        self.thread = thread

    def arg(self, i: int) -> int:
        return self.thread.x[f"x{i}"]

    def set_ret(self, value: int) -> None:
        self.thread.x["x0"] = value & (2**64 - 1)

    def read(self, addr: int, size: int) -> bytes:
        return bytes(self.emu.memory[addr : addr + size])

    def write(self, addr: int, data: bytes) -> None:
        self.emu.memory[addr : addr + len(data)] = data

    def alloc(self, size: int) -> int:
        addr = (self.emu.heap_ptr + 15) & ~15
        self.emu.heap_ptr = addr + max(1, size)
        return addr

    def emit(self, text: str) -> None:
        self.emu.output.append(text)

    def exit(self, status: int) -> None:
        for t in self.emu.threads:
            t.done = True
        self.emu.threads[0].x["x0"] = status & (2**64 - 1)

    def spawn(self, fn_addr: int, arg: int) -> int:
        child = self.emu._make_thread(fn_addr)
        child.x["x0"] = arg
        return child.tid

    def join(self, tid: int):
        for t in self.emu.threads:
            if t.tid == tid:
                while not t.done:  # Arm join blocks inline, like _ext_join
                    for _ in range(self.emu.quantum):
                        if t.done:
                            break
                        self.emu.step(t)
                return t.x["x0"]
        raise RuntimeError(f"join of unknown thread {tid}")


def install_x86_catalog(emu) -> None:
    """Register handlers for every catalogued external the object names.
    Existing runtime handlers (minicc's malloc/spawn/...) are kept."""
    def make(fn):
        def handler(thread):
            return fn(_X86Env(emu, thread))
        return handler

    for name in emu.obj.externals:
        base = name.split("@", 1)[0]  # "printf@401040": second address
        if base in HANDLERS and name not in emu.externals:
            emu.externals[name] = make(HANDLERS[base])


def install_arm_catalog(emu) -> None:
    """Same, keyed off the Arm program's declared externals."""
    def make(fn):
        def handler(thread):
            return fn(_ArmEnv(emu, thread))
        return handler

    for name in emu.program.externals:
        base = name.split("@", 1)[0]
        if base in HANDLERS and name not in emu.externals:
            emu.externals[name] = make(HANDLERS[base])
