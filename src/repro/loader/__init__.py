"""repro.loader: real-binary front end (ELF64 -> X86Object).

Three layers, mirroring the issue that introduced them:

* :mod:`repro.loader.elf` — from-scratch ELF64 reader (headers, symbol
  tables, relocations, PLT/IPLT decoding);
* :mod:`repro.loader.triage` — format sniffing, call-graph function
  discovery, per-function decode-confidence reports, and
  :func:`ingest_elf`, which packages a real binary as the
  :class:`~repro.x86.objfile.X86Object` the pipeline consumes;
* :mod:`repro.loader.externs` — the EFACT-style external-function
  catalog: typed signatures, mod-ref/escape summaries for the analysis
  layer, and one shared execution kernel both emulators install so the
  co-simulation oracle stays exact across libc calls.
"""

from .elf import ElfError, ElfFile, decode_plt, is_elf, parse_elf
from .externs import (CATALOG, CatalogEntry, catalog_summary, format_printf,
                      install_arm_catalog, install_x86_catalog,
                      normalize_name, resolve_names)
from .triage import (FunctionReport, TriageError, TriageReport, ingest_elf,
                     sniff_format, triage_object)

__all__ = [
    "ElfError", "ElfFile", "decode_plt", "is_elf", "parse_elf",
    "CATALOG", "CatalogEntry", "catalog_summary", "format_printf",
    "install_arm_catalog", "install_x86_catalog", "normalize_name",
    "resolve_names",
    "FunctionReport", "TriageError", "TriageReport", "ingest_elf",
    "sniff_format", "triage_object",
]
