"""Binary triage: format sniffing, function discovery, confidence.

Sits between the raw bytes and the lifter.  :func:`sniff_format` decides
whether an input is a real ELF64 image or mini-C source for the ELF-lite
path.  :func:`ingest_elf` walks the call graph from the entry function,
classifies every call target (lift it / substitute a catalogued external
/ leave an opaque external with a remark), synthesizes data symbols for
the addresses the reachable code actually touches, and packages the
result as the :class:`~repro.x86.objfile.X86Object` the rest of the
pipeline already consumes.

Every discovered function carries a confidence record — decodable
bytes, unknown-opcode spans, whether decode agrees with the symbol's
size — so a binary the decoder cannot fully digest degrades into an
explicit report instead of an exception half-way through the lift.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..profiler.workcounters import work
from ..x86.decoder import DecodeError, decode_one
from ..x86.isa import Imm, Instr, Mem
from ..x86.objfile import DataSymbol, FuncSymbol, X86Object
from . import elf as elfmod
from .externs import resolve_names

#: Size cap when scanning a function with no symbol-table size.
MAX_SCAN_BYTES = 0x10000
#: Size cap for synthesized anonymous data symbols.
MAX_ANON_DATA = 4096


class TriageError(Exception):
    """The binary cannot be ingested for translation; the message names
    the function and byte span that defeated the decoder."""


@dataclass
class UnknownSpan:
    address: int
    size: int
    reason: str


@dataclass
class FunctionReport:
    """Per-function decode confidence."""

    name: str
    address: int
    size: int
    decoded_instrs: int = 0
    decoded_bytes: int = 0
    unknown_spans: list[UnknownSpan] = field(default_factory=list)
    calls_internal: list[str] = field(default_factory=list)
    calls_external: list[str] = field(default_factory=list)
    calls_opaque: list[str] = field(default_factory=list)

    @property
    def decodable_pct(self) -> float:
        if self.size <= 0:
            return 0.0
        return round(100.0 * self.decoded_bytes / self.size, 2)

    @property
    def size_agreement(self) -> bool:
        """Decode consumed exactly the symbol's stated size."""
        return not self.unknown_spans and self.decoded_bytes == self.size

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "address": self.address,
            "size": self.size,
            "decoded_instrs": self.decoded_instrs,
            "decoded_bytes": self.decoded_bytes,
            "decodable_pct": self.decodable_pct,
            "size_agreement": self.size_agreement,
            "unknown_spans": [
                {"address": s.address, "size": s.size, "reason": s.reason}
                for s in self.unknown_spans
            ],
            "calls": {
                "internal": sorted(self.calls_internal),
                "external": sorted(self.calls_external),
                "opaque": sorted(self.calls_opaque),
            },
        }


@dataclass
class TriageReport:
    """Machine-readable ingestion summary (``repro triage`` emits this
    as JSON)."""

    format: str                       # "elf64" | "elf-lite"
    entry: str
    functions: list[FunctionReport] = field(default_factory=list)
    externals_resolved: dict[str, int] = field(default_factory=dict)
    externals_opaque: dict[str, int] = field(default_factory=dict)
    data_symbols: int = 0
    remarks: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(f.size_agreement for f in self.functions)

    def as_dict(self) -> dict:
        return {
            "format": self.format,
            "entry": self.entry,
            "ok": self.ok,
            "functions": [f.as_dict() for f in self.functions],
            "externals": {
                "resolved": dict(sorted(self.externals_resolved.items())),
                "opaque": dict(sorted(self.externals_opaque.items())),
            },
            "counts": {
                "functions_discovered": len(self.functions),
                "externals_resolved": len(self.externals_resolved),
                "externals_opaque": len(self.externals_opaque),
                "data_symbols": self.data_symbols,
            },
            "remarks": list(self.remarks),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)


def sniff_format(data: bytes) -> str:
    """``"elf64"`` for a real ELF image, ``"source"`` otherwise (the
    ELF-lite path: mini-C text compiled by ``repro.minicc``)."""
    return "elf64" if elfmod.is_elf(data) else "source"


# ---- instruction-stream scanning -----------------------------------------

def _scan_stream(body: bytes, address: int,
                 report: FunctionReport) -> list[Instr]:
    """Decode ``body`` at ``address``, resynchronizing one byte at a
    time after failures; failures accumulate as unknown spans."""
    instrs: list[Instr] = []
    offset = 0
    span_start = None
    span_reason = ""
    while offset < len(body):
        try:
            instr = decode_one(body, offset, address + offset)
        except DecodeError as exc:
            if span_start is None:
                span_start = offset
                span_reason = str(exc)
            offset += 1
            continue
        if span_start is not None:
            report.unknown_spans.append(
                UnknownSpan(address + span_start, offset - span_start,
                            span_reason))
            span_start = None
        instrs.append(instr)
        report.decoded_instrs += 1
        report.decoded_bytes += instr.size
        offset += instr.size
    if span_start is not None:
        report.unknown_spans.append(
            UnknownSpan(address + span_start, len(body) - span_start,
                        span_reason))
    work("triage.instructions", len(instrs), function=report.name)
    work("triage.bytes", len(body), function=report.name)
    return instrs


def _read_upto(elf: elfmod.ElfFile, addr: int, limit: int) -> bytes:
    """The longest mapped prefix of [addr, addr+limit): small images end
    long before MAX_SCAN_BYTES, and a probe read must not fail for that."""
    lo, hi = 0, limit
    while lo < hi:          # binary-search the mapped extent
        mid = (lo + hi + 1) // 2
        try:
            elf.read(addr, mid)
            lo = mid
        except elfmod.ElfError:
            hi = mid - 1
    return elf.read(addr, lo) if lo else b""


def _scan_unsized(data: bytes, address: int) -> int:
    """Heuristic extent of a function with no symbol size: decode
    linearly, tracking the furthest forward branch target, until a
    ``ret``/``hlt``/unconditional ``jmp`` past every pending target."""
    offset = 0
    frontier = 0
    while offset < min(len(data), MAX_SCAN_BYTES):
        try:
            instr = decode_one(data, offset, address + offset)
        except DecodeError:
            break
        end = offset + instr.size
        m = instr.mnemonic
        if m.startswith("j") and instr.operands \
                and isinstance(instr.operands[0], Imm):
            target_off = instr.operands[0].value - address
            if end <= target_off <= MAX_SCAN_BYTES:
                frontier = max(frontier, target_off)
        if m in ("ret", "hlt") or (m == "jmp" and end > frontier):
            if end > frontier:
                return end
        offset = end
    return offset


def _call_targets(instrs: list[Instr], start: int, end: int) -> list[int]:
    """Direct call targets plus tail-jumps leaving [start, end)."""
    out = []
    for instr in instrs:
        if not instr.operands or not isinstance(instr.operands[0], Imm):
            continue
        target = instr.operands[0].value
        if instr.mnemonic == "call" or (
                instr.mnemonic == "jmp" and not start <= target < end):
            out.append(target)
    return out


def _address_operands(instrs: list[Instr]) -> set[int]:
    """Absolute addresses referenced by operands: RIP-rebased memory
    displacements and 32/64-bit immediates that may be pointers."""
    out: set[int] = set()
    for instr in instrs:
        if instr.mnemonic == "call":
            continue
        for op in instr.operands:
            if isinstance(op, Mem) and op.base is None and op.index is None:
                out.add(op.disp)
            elif isinstance(op, Imm) and op.width >= 32:
                out.add(op.value)
    return out


# ---- ELF ingestion --------------------------------------------------------

def ingest_elf(data: bytes, entry: str = "main",
               strict: bool = True) -> tuple[X86Object, TriageReport]:
    """Turn a real ELF64 executable into an :class:`X86Object`.

    Walks the call graph from ``entry``: targets that resolve (by PLT or
    symbol name) against the external catalog become typed externals;
    other symbol-covered targets are queued for lifting; targets with
    neither become conservative opaque externals with a remark.  With
    ``strict`` (the translation path), any reachable function the
    decoder cannot fully digest raises :class:`TriageError`; triage
    reporting passes ``strict=False`` and records the damage instead.
    """
    elf = elfmod.parse_elf(data)
    plt = elfmod.decode_plt(elf)
    report = TriageReport(format="elf64", entry=entry)

    func_syms = {s.name: s for s in elf.function_symbols()}
    func_by_addr = {s.value: s for s in func_syms.values()}
    if not func_syms:
        report.remarks.append(
            "no function symbols (stripped?); discovery falls back to "
            "call-target scanning from the ELF entry point")
        return _ingest_stripped(elf, report, entry)

    entry_sym = func_syms.get(entry)
    if entry_sym is None:
        # Build an empty object whose require_entry() produces the
        # canonical EntryError diagnostic; triage carries a remark.
        report.remarks.append(
            f"entry function {entry!r} not found among "
            f"{len(func_syms)} symbols")
        obj = X86Object(entry=entry, source_format="elf64")
        obj.functions = {}
        return obj, report

    functions: dict[str, FuncSymbol] = {}
    externals: dict[str, int] = {}
    extern_sigs: dict[str, tuple[int, int, str]] = {}
    data_addrs: set[int] = set()
    queue = [entry_sym.value]
    seen = {entry_sym.value}
    func_reports: dict[int, FunctionReport] = {}

    def classify_target(addr: int) -> str:
        """Resolve one call target; returns the name it was filed
        under (and queues internal targets for decoding)."""
        names = []
        if addr in plt:
            names.append(plt[addr])
        names.extend(elf.names_at(addr))
        entry_def = resolve_names(names)
        if entry_def is not None:
            name = entry_def.name
            prior = externals.get(name)
            if prior is not None and prior != addr:
                name = f"{name}@{addr:x}"  # same libc fn, second address
            externals[name] = addr
            extern_sigs[name] = entry_def.sig
            report.externals_resolved[name] = addr
            return name
        sym = func_by_addr.get(addr)
        if sym is not None:
            if addr not in seen:
                seen.add(addr)
                queue.append(addr)
            return sym.name
        if addr in plt:
            name = f"ext_{addr:x}"
            externals[name] = addr
            extern_sigs[name] = (0, 0, "i64")
            report.externals_opaque[name] = addr
            report.remarks.append(
                f"PLT entry {plt[addr]!r} at {addr:#x} is not in the "
                f"external catalog; treated as an opaque call")
            return name
        # No symbol, no PLT entry: an unnamed local function.
        if addr not in seen:
            seen.add(addr)
            queue.append(addr)
            func_by_addr[addr] = elfmod.ElfSymbol(
                f"sub_{addr:x}", addr, 0, elfmod.STT_FUNC,
                elfmod.STB_LOCAL, 1, "symtab")
            report.remarks.append(
                f"call target {addr:#x} has no symbol; scanning as "
                f"sub_{addr:x}")
        return f"sub_{addr:x}"

    while queue:
        addr = queue.pop(0)
        sym = func_by_addr[addr]
        size = sym.size
        if size == 0:
            probe = _read_upto(elf, addr, MAX_SCAN_BYTES)
            size = _scan_unsized(probe, addr) or len(probe)
        frep = FunctionReport(sym.name, addr, size)
        func_reports[addr] = frep
        try:
            body = elf.read(addr, size)
        except elfmod.ElfError as exc:
            frep.unknown_spans.append(UnknownSpan(addr, size, str(exc)))
            report.remarks.append(f"{sym.name}: {exc}")
            continue
        instrs = _scan_stream(body, addr, frep)
        if strict and frep.unknown_spans:
            span = frep.unknown_spans[0]
            raise TriageError(
                f"function {sym.name!r} at {addr:#x} has "
                f"{len(frep.unknown_spans)} undecodable span(s); first at "
                f"{span.address:#x} ({span.size} bytes): {span.reason}")
        functions[sym.name] = FuncSymbol(sym.name, addr, size)
        for target in _call_targets(instrs, addr, addr + size):
            name = classify_target(target)
            if name in externals:
                which = (frep.calls_opaque if name.startswith("ext_")
                         else frep.calls_external)
                which.append(name)
            else:
                frep.calls_internal.append(name)
        data_addrs |= _address_operands(instrs)

    report.functions = sorted(func_reports.values(),
                              key=lambda f: f.address)

    data_symbols = _synthesize_data(elf, data_addrs, functions)
    report.data_symbols = len(data_symbols)

    lo = min(f.address for f in functions.values())
    hi = max(f.address + f.size for f in functions.values())
    obj = X86Object(
        text=elf.read(lo, hi - lo),
        text_base=lo,
        functions=functions,
        data_symbols=data_symbols,
        externals=externals,
        entry=entry,
        extern_sigs=extern_sigs,
        source_format="elf64",
    )
    return obj, report


def _synthesize_data(elf: elfmod.ElfFile, addrs: set[int],
                     functions: dict[str, FuncSymbol]) -> dict[str, DataSymbol]:
    """Data symbols for every referenced address that lands in an
    allocatable non-code section: named OBJECT symbols when the symbol
    table covers the address, anonymous NUL-scanned blobs otherwise."""
    func_ranges = [(f.address, f.address + f.size) for f in functions.values()]
    out: dict[str, DataSymbol] = {}
    covered: list[tuple[int, int]] = []
    for addr in sorted(addrs):
        if any(lo <= addr < hi for lo, hi in func_ranges):
            continue
        if any(lo <= addr < hi for lo, hi in covered):
            continue
        sec = elf.section_at(addr)
        if sec is None or sec.is_exec or not sec.is_alloc:
            continue
        sym = elf.object_symbol_covering(addr)
        if sym is not None:
            size = max(1, sym.size)
            name, base = sym.name, sym.value
        else:
            # Anonymous literal; most are C strings, so NUL-scan for a
            # plausible extent (minimum one 8-byte slot).
            blob = elf.read_cstr(addr, MAX_ANON_DATA)
            size = max(8, len(blob) + 1)
            size = min(size, sec.sh_addr + sec.sh_size - addr)
            name, base = f"data_{addr:x}", addr
        if name in out:
            continue
        init = b"" if sec.is_nobits else elf.read(base, size)
        out[name] = DataSymbol(name, base, size, init)
        covered.append((base, base + size))
    return out


def _ingest_stripped(elf: elfmod.ElfFile, report: TriageReport,
                     entry: str) -> tuple[X86Object, TriageReport]:
    """Best-effort discovery for symbol-less images: scan from the ELF
    entry point, following direct call targets.  The result is only
    suitable for triage reporting (functions get positional names), so
    the object defines no ``main`` and translation stops with a clear
    EntryError."""
    plt = elfmod.decode_plt(elf)
    start = elf.header.e_entry
    queue, seen = [start], {start}
    functions: dict[str, FuncSymbol] = {}
    while queue:
        addr = queue.pop(0)
        name = "_start" if addr == start else f"sub_{addr:x}"
        probe = _read_upto(elf, addr, MAX_SCAN_BYTES)
        size = _scan_unsized(probe, addr)
        if size == 0:
            continue
        frep = FunctionReport(name, addr, size)
        instrs = _scan_stream(probe[:size], addr, frep)
        report.functions.append(frep)
        functions[name] = FuncSymbol(name, addr, size)
        for target in _call_targets(instrs, addr, addr + size):
            if target in plt:
                report.externals_opaque[f"ext_{target:x}"] = target
                continue
            if target not in seen:
                seen.add(target)
                queue.append(target)
    report.functions.sort(key=lambda f: f.address)
    obj = X86Object(entry=entry, source_format="elf64")
    obj.functions = {}
    if functions:
        lo = min(f.address for f in functions.values())
        hi = max(f.address + f.size for f in functions.values())
        obj.text = elf.read(lo, hi - lo)
        obj.text_base = lo
        obj.functions = functions
    return obj, report


# ---- ELF-lite triage ------------------------------------------------------

def triage_object(obj: X86Object) -> TriageReport:
    """Confidence report for an already-linked :class:`X86Object`
    (the ELF-lite path): same per-function decode sweep, with calls
    classified against the object's own symbol tables."""
    report = TriageReport(format=obj.source_format, entry=obj.entry)
    for name, sym in obj.functions.items():
        frep = FunctionReport(name, sym.address, sym.size)
        instrs = _scan_stream(obj.function_body(name), sym.address, frep)
        for target in _call_targets(instrs, sym.address,
                                    sym.address + sym.size):
            ext = obj.external_at(target)
            if ext is not None:
                frep.calls_external.append(ext)
                report.externals_resolved[ext] = target
            elif obj.function_at(target) is not None:
                frep.calls_internal.append(obj.function_at(target).name)
            else:
                frep.calls_opaque.append(f"ext_{target:x}")
                report.externals_opaque[f"ext_{target:x}"] = target
        report.functions.append(frep)
    report.functions.sort(key=lambda f: f.address)
    report.data_symbols = len(obj.data_symbols)
    return report
