"""From-scratch ELF64 reader: the container layer of ``repro.loader``.

Parses the pieces of a Linux x86-64 executable the lifter actually
needs — header, program/section headers, ``.symtab``/``.dynsym`` plus
their string tables, ``.rela.*`` relocations — and decodes PLT/IPLT
entries back to the external function they forward to, so calls through
``printf@plt`` (dynamic binaries, ``R_X86_64_JUMP_SLOT``) and glibc's
ifunc trampolines (static binaries, ``R_X86_64_IRELATIVE``) both
resolve to a *name* the external-function catalog can match.

Only the little-endian 64-bit class is supported; everything else is a
clean :class:`ElfError` so triage can degrade instead of crashing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

ELF_MAGIC = b"\x7fELF"

# e_ident indexes / values
EI_CLASS, EI_DATA = 4, 5
ELFCLASS64, ELFDATA2LSB = 2, 1

# e_machine
EM_X86_64 = 62

# e_type
ET_EXEC, ET_DYN = 2, 3
ET_NAMES = {1: "rel", 2: "exec", 3: "dyn", 4: "core"}

# sh_type
SHT_NOBITS, SHT_SYMTAB, SHT_DYNSYM, SHT_RELA = 8, 2, 11, 4
SHF_ALLOC, SHF_EXECINSTR = 0x2, 0x4

# p_type
PT_LOAD = 1

# symbol types / bindings
STT_OBJECT, STT_FUNC, STT_GNU_IFUNC = 1, 2, 10
STB_LOCAL, STB_GLOBAL, STB_WEAK = 0, 1, 2

# x86-64 relocation types
R_X86_64_64 = 1
R_X86_64_GLOB_DAT = 6
R_X86_64_JUMP_SLOT = 7
R_X86_64_RELATIVE = 8
R_X86_64_IRELATIVE = 37


class ElfError(Exception):
    """The input is not an ELF64 image this reader can digest."""


@dataclass(frozen=True)
class ElfHeader:
    ei_class: int
    ei_data: int
    e_type: int
    e_machine: int
    e_entry: int
    e_phoff: int
    e_shoff: int
    e_phnum: int
    e_shnum: int
    e_shstrndx: int

    @property
    def type_name(self) -> str:
        return ET_NAMES.get(self.e_type, f"type{self.e_type}")


@dataclass(frozen=True)
class ProgramHeader:
    p_type: int
    p_flags: int
    p_offset: int
    p_vaddr: int
    p_filesz: int
    p_memsz: int


@dataclass(frozen=True)
class Section:
    name: str
    sh_type: int
    sh_flags: int
    sh_addr: int
    sh_offset: int
    sh_size: int
    sh_link: int
    sh_info: int
    sh_entsize: int

    @property
    def is_alloc(self) -> bool:
        return bool(self.sh_flags & SHF_ALLOC)

    @property
    def is_exec(self) -> bool:
        return bool(self.sh_flags & SHF_EXECINSTR)

    @property
    def is_nobits(self) -> bool:
        return self.sh_type == SHT_NOBITS

    def contains(self, addr: int) -> bool:
        return self.sh_addr <= addr < self.sh_addr + self.sh_size


@dataclass(frozen=True)
class ElfSymbol:
    name: str
    value: int
    size: int
    stype: int  # STT_*
    bind: int   # STB_*
    shndx: int
    table: str  # "symtab" | "dynsym"

    @property
    def is_function(self) -> bool:
        return self.stype in (STT_FUNC, STT_GNU_IFUNC)

    @property
    def is_object(self) -> bool:
        return self.stype == STT_OBJECT

    @property
    def is_defined(self) -> bool:
        return self.shndx != 0  # not SHN_UNDEF


@dataclass(frozen=True)
class Relocation:
    r_offset: int
    r_type: int
    r_sym: int
    r_addend: int
    section: str  # the .rela.* section it came from


@dataclass
class ElfFile:
    """A parsed ELF64 executable, indexed for the loader's questions."""

    data: bytes
    header: ElfHeader
    phdrs: list[ProgramHeader]
    sections: list[Section]
    symbols: list[ElfSymbol]          # .symtab then .dynsym entries
    relocations: list[Relocation]     # every .rela.* section, concatenated
    _by_addr: dict[int, list[ElfSymbol]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for sym in self.symbols:
            if sym.is_defined and sym.name:
                self._by_addr.setdefault(sym.value, []).append(sym)

    # ---- lookups ---------------------------------------------------------
    def section(self, name: str) -> Section | None:
        for sec in self.sections:
            if sec.name == name:
                return sec
        return None

    def section_at(self, addr: int) -> Section | None:
        for sec in self.sections:
            if sec.is_alloc and sec.contains(addr):
                return sec
        return None

    def symbols_at(self, addr: int) -> list[ElfSymbol]:
        """Every defined, named symbol whose value is exactly ``addr``."""
        return list(self._by_addr.get(addr, []))

    def names_at(self, addr: int) -> list[str]:
        return [s.name for s in self.symbols_at(addr)]

    def function_symbols(self) -> list[ElfSymbol]:
        """Defined, named, sized STT_FUNC/STT_GNU_IFUNC symbols, sorted by
        address; one entry per address (``.symtab`` wins over ``.dynsym``,
        then the strongest binding)."""
        best: dict[int, ElfSymbol] = {}

        def rank(s: ElfSymbol) -> tuple:
            return (s.table == "symtab", s.bind == STB_GLOBAL, s.size > 0)

        for sym in self.symbols:
            if not (sym.is_function and sym.is_defined and sym.name):
                continue
            cur = best.get(sym.value)
            if cur is None or rank(sym) > rank(cur):
                best[sym.value] = sym
        return sorted(best.values(), key=lambda s: s.value)

    def object_symbol_covering(self, addr: int) -> ElfSymbol | None:
        """The defined STT_OBJECT symbol whose [value, value+size) interval
        contains ``addr``, preferring the tightest fit."""
        hit: ElfSymbol | None = None
        for sym in self.symbols:
            if not (sym.is_object and sym.is_defined and sym.name):
                continue
            if sym.value <= addr < sym.value + max(1, sym.size):
                if hit is None or sym.size < hit.size:
                    hit = sym
        return hit

    # ---- memory image ----------------------------------------------------
    def read(self, addr: int, size: int) -> bytes:
        """File-backed bytes at virtual address ``addr`` (``.bss`` reads as
        zeros); raises :class:`ElfError` when the range is unmapped."""
        sec = self.section_at(addr)
        if sec is not None and sec.contains(addr):
            avail = sec.sh_addr + sec.sh_size - addr
            n = min(size, avail)
            if sec.is_nobits:
                chunk = b"\x00" * n
            else:
                off = sec.sh_offset + (addr - sec.sh_addr)
                chunk = self.data[off : off + n]
            if n < size:
                return chunk + self.read(addr + n, size - n)
            return chunk
        # Fall back to program headers (e.g. section table stripped).
        for ph in self.phdrs:
            if ph.p_type != PT_LOAD:
                continue
            if ph.p_vaddr <= addr < ph.p_vaddr + ph.p_memsz:
                off_in = addr - ph.p_vaddr
                n = min(size, ph.p_memsz - off_in)
                file_n = max(0, min(n, ph.p_filesz - off_in))
                chunk = self.data[ph.p_offset + off_in :
                                  ph.p_offset + off_in + file_n]
                chunk += b"\x00" * (n - file_n)
                if n < size:
                    return chunk + self.read(addr + n, size - n)
                return chunk
        raise ElfError(f"virtual address {addr:#x} is not mapped")

    def read_cstr(self, addr: int, limit: int = 4096) -> bytes:
        """NUL-terminated bytes at ``addr`` (terminator not included)."""
        out = bytearray()
        while len(out) < limit:
            b = self.read(addr + len(out), 1)
            if not b or b == b"\x00":
                break
            out += b
        return bytes(out)

    # ---- relocation indexes ---------------------------------------------
    def jump_slot_targets(self) -> dict[int, int]:
        """GOT slot address -> dynsym index, from R_X86_64_JUMP_SLOT."""
        return {r.r_offset: r.r_sym for r in self.relocations
                if r.r_type == R_X86_64_JUMP_SLOT}

    def irelative_targets(self) -> dict[int, int]:
        """GOT slot address -> ifunc resolver address (R_X86_64_IRELATIVE)."""
        return {r.r_offset: r.r_addend for r in self.relocations
                if r.r_type == R_X86_64_IRELATIVE}


def is_elf(data: bytes) -> bool:
    return data[:4] == ELF_MAGIC


def parse_elf(data: bytes) -> ElfFile:
    """Parse an ELF64 little-endian x86-64 image from raw bytes."""
    if not is_elf(data):
        raise ElfError("bad magic: not an ELF file")
    if len(data) < 64:
        raise ElfError("truncated ELF header")
    ident = data[:16]
    if ident[EI_CLASS] != ELFCLASS64:
        raise ElfError("only ELF64 (class 2) is supported")
    if ident[EI_DATA] != ELFDATA2LSB:
        raise ElfError("only little-endian ELF is supported")
    (e_type, e_machine, _ver, e_entry, e_phoff, e_shoff, _flags,
     _ehsize, _phentsize, e_phnum, _shentsize, e_shnum,
     e_shstrndx) = struct.unpack_from("<HHIQQQIHHHHHH", data, 16)
    header = ElfHeader(ELFCLASS64, ELFDATA2LSB, e_type, e_machine, e_entry,
                       e_phoff, e_shoff, e_phnum, e_shnum, e_shstrndx)
    if e_machine != EM_X86_64:
        raise ElfError(f"unsupported machine {e_machine} (want x86-64)")

    phdrs: list[ProgramHeader] = []
    for i in range(e_phnum):
        off = e_phoff + i * 56
        if off + 56 > len(data):
            raise ElfError("truncated program header table")
        (p_type, p_flags, p_offset, p_vaddr, _paddr, p_filesz,
         p_memsz, _align) = struct.unpack_from("<IIQQQQQQ", data, off)
        phdrs.append(ProgramHeader(p_type, p_flags, p_offset, p_vaddr,
                                   p_filesz, p_memsz))

    raw_sections: list[tuple] = []
    for i in range(e_shnum):
        off = e_shoff + i * 64
        if off + 64 > len(data):
            raise ElfError("truncated section header table")
        raw_sections.append(struct.unpack_from("<IIQQQQIIQQ", data, off))

    def shstr(name_off: int) -> str:
        if e_shstrndx >= len(raw_sections):
            return ""
        tab = raw_sections[e_shstrndx]
        base, size = tab[4], tab[5]
        return _strz(data, base + name_off, base + size)

    sections = [
        Section(shstr(s[0]), s[1], s[2], s[3], s[4], s[5], s[6], s[7], s[9])
        for s in raw_sections
    ]

    symbols: list[ElfSymbol] = []
    for sec, table in ((next((s for s in sections
                              if s.sh_type == SHT_SYMTAB), None), "symtab"),
                       (next((s for s in sections
                              if s.sh_type == SHT_DYNSYM), None), "dynsym")):
        if sec is None:
            continue
        strtab = sections[sec.sh_link] if sec.sh_link < len(sections) else None
        count = sec.sh_size // 24
        for i in range(count):
            off = sec.sh_offset + i * 24
            st_name, st_info, _other, st_shndx, st_value, st_size = \
                struct.unpack_from("<IBBHQQ", data, off)
            name = ""
            if strtab is not None and st_name:
                name = _strz(data, strtab.sh_offset + st_name,
                             strtab.sh_offset + strtab.sh_size)
            symbols.append(ElfSymbol(name, st_value, st_size,
                                     st_info & 0xF, st_info >> 4,
                                     st_shndx, table))

    relocations: list[Relocation] = []
    for sec in sections:
        if sec.sh_type != SHT_RELA:
            continue
        for i in range(sec.sh_size // 24):
            off = sec.sh_offset + i * 24
            r_offset, r_info, r_addend = struct.unpack_from("<QQq", data, off)
            relocations.append(Relocation(r_offset, r_info & 0xFFFFFFFF,
                                          r_info >> 32, r_addend, sec.name))

    return ElfFile(data, header, phdrs, sections, symbols, relocations)


def _strz(data: bytes, start: int, end: int) -> str:
    nul = data.find(b"\x00", start, end)
    if nul < 0:
        nul = end
    return data[start:nul].decode("utf-8", errors="replace")


# ---- PLT / IPLT decoding --------------------------------------------------

PLT_SECTION_NAMES = (".plt", ".plt.sec", ".plt.got", ".iplt")


def decode_plt(elf: ElfFile) -> dict[int, str]:
    """Map every PLT/IPLT entry address to the external it forwards to.

    An entry is an indirect ``jmp *disp32(%rip)`` (``FF 25``), possibly
    preceded by ``endbr64`` (``F3 0F 1E FA``) and/or a ``bnd`` prefix
    (``F2``).  The referenced GOT slot identifies the function:

    * ``R_X86_64_JUMP_SLOT`` relocations name a ``.dynsym`` entry
      directly (dynamically linked binaries);
    * ``R_X86_64_IRELATIVE`` relocations carry the ifunc *resolver*
      address in the addend — the resolver is the symbol glibc names
      after the function itself (``strlen``, ``memcpy`` ... as
      ``STT_GNU_IFUNC``), so a symtab lookup of the addend recovers the
      name (statically linked binaries).
    """
    jump_slots = elf.jump_slot_targets()
    irelative = elf.irelative_targets()
    dynsyms = [s for s in elf.symbols if s.table == "dynsym"]
    out: dict[int, str] = {}
    for sec in elf.sections:
        if sec.name not in PLT_SECTION_NAMES or sec.sh_size == 0:
            continue
        raw = elf.read(sec.sh_addr, sec.sh_size)
        # Entry layout varies (8-byte packed, 16-byte, endbr64/bnd
        # prefixed), so scan for the jmp pattern rather than assuming a
        # stride; call sites target the entry start, i.e. the prefix
        # when one is present.
        entry_off = 0
        while entry_off < len(raw) - 5:
            jmp_off = _find_indirect_jmp(raw[entry_off : entry_off + 16])
            if jmp_off is None:
                entry_off += 1
                continue
            disp = struct.unpack_from("<i", raw, entry_off + jmp_off + 2)[0]
            entry_addr = sec.sh_addr + entry_off
            got_addr = entry_addr + jmp_off + 6 + disp
            name = None
            if got_addr in jump_slots:
                idx = jump_slots[got_addr]
                if 0 <= idx < len(dynsyms):
                    name = dynsyms[idx].name or None
            elif got_addr in irelative:
                resolver = irelative[got_addr]
                for sym in elf.symbols_at(resolver):
                    if sym.is_function:
                        name = sym.name
                        break
            if name:
                out[entry_addr] = name
            entry_off += jmp_off + 6
    return out


def _find_indirect_jmp(entry: bytes) -> int | None:
    """Offset of the ``FF 25`` jmp inside one PLT entry, skipping the
    optional ``endbr64`` / ``bnd`` prefixes; None for non-jump entries
    (such as the push/jmp PLT header)."""
    off = 0
    if entry[off : off + 4] == b"\xf3\x0f\x1e\xfa":  # endbr64
        off += 4
    if off < len(entry) and entry[off : off + 1] == b"\xf2":  # bnd
        off += 1
    if entry[off : off + 2] == b"\xff\x25" and off + 6 <= len(entry):
        return off
    return None
