"""x86-64 machine-code encoder for the subset Lasagne's pipeline uses.

Produces genuine x86-64 bytes (REX prefixes, ModRM/SIB addressing, legacy
prefixes for SSE and LOCK).  The decoder in :mod:`repro.x86.decoder` is the
exact inverse; ``decode(encode(i))`` round-trips, which the property tests
exercise.

Supported subset (Intel operand order, destination first):

* data movement: ``mov`` (r/r, r/imm32, r/m, m/r), ``movabs`` (r/imm64),
  ``movzx``/``movsx``/``movsxd``, ``lea``, ``push``/``pop``
* ALU: ``add``/``sub``/``and``/``or``/``xor``/``cmp`` (r/r, r/imm),
  ``test``, ``imul`` (r/r), ``neg``/``not``, ``cqo``+``idiv``,
  ``shl``/``shr``/``sar`` (imm8 or ``cl``), ``setcc``
* control: ``jmp``/``jcc``/``call`` (rel32), ``call r64``, ``ret``, ``nop``
* concurrency: ``mfence``, ``lock cmpxchg``, ``lock xadd``, ``xchg``
* SSE: ``movsd``/``movss``/``movaps``/``movq``, scalar arithmetic
  (``addsd`` etc.), packed (``addpd``/``paddq``/``paddd``), ``ucomisd``,
  ``pxor``, ``cvtsi2sd``/``cvttsd2si``
"""

from __future__ import annotations

import struct

from .isa import CC_NUM, Imm, Instr, Mem, Operand, Reg
from .registers import reg_info


class EncodeError(Exception):
    pass


ALU_MR_OPCODE = {"add": 0x01, "or": 0x09, "and": 0x21, "sub": 0x29,
                 "xor": 0x31, "cmp": 0x39}
ALU_IMM_EXT = {"add": 0, "or": 1, "and": 4, "sub": 5, "xor": 6, "cmp": 7}
SHIFT_EXT = {"shl": 4, "shr": 5, "sar": 7}
SSE_SCALAR_OPCODE = {"addsd": 0x58, "mulsd": 0x59, "subsd": 0x5C,
                     "divsd": 0x5E, "addss": 0x58, "mulss": 0x59,
                     "subss": 0x5C, "divss": 0x5E, "sqrtsd": 0x51}
SSE_PACKED_OPCODE = {"addpd": 0x58, "subpd": 0x5C, "mulpd": 0x59,
                     "paddq": 0xD4, "paddd": 0xFE}


def _i8(v: int) -> bytes:
    return struct.pack("<b", v)


def _i32(v: int) -> bytes:
    return struct.pack("<i", v)


def _u32(v: int) -> bytes:
    return struct.pack("<I", v & 0xFFFFFFFF)


def _u64(v: int) -> bytes:
    return struct.pack("<Q", v & (2**64 - 1))


def fits_i8(v: int) -> bool:
    return -128 <= v <= 127


def fits_i32(v: int) -> bool:
    return -(2**31) <= v < 2**31


class _ModRM:
    """ModRM/SIB/displacement assembly with REX bit bookkeeping."""

    def __init__(self, reg_field: int, rm: Operand) -> None:
        self.rex_r = reg_field >> 3
        self.rex_x = 0
        self.rex_b = 0
        reg3 = reg_field & 7
        body = bytearray()
        if isinstance(rm, Reg):
            info = rm.info
            self.rex_b = info.num >> 3
            body.append(0xC0 | (reg3 << 3) | (info.num & 7))
        elif isinstance(rm, Mem):
            body.extend(self._encode_mem(reg3, rm))
        else:
            raise EncodeError(f"bad rm operand {rm!r}")
        self.bytes = bytes(body)

    def _encode_mem(self, reg3: int, mem: Mem) -> bytes:
        out = bytearray()
        disp = mem.disp
        if mem.base is None and mem.index is None:
            # Absolute [disp32]: mod=00 rm=100, SIB base=101 index=100.
            out.append((reg3 << 3) | 0x04)
            out.append((0 << 6) | (0x04 << 3) | 0x05)
            out.extend(_i32(disp))
            return bytes(out)
        if mem.base is None:
            raise EncodeError("index without base not supported")
        base = reg_info(mem.base)
        self.rex_b = base.num >> 3
        base3 = base.num & 7
        need_sib = mem.index is not None or base3 == 4  # rsp/r12 need SIB
        # rbp/r13 with mod=00 means disp32-only, so force disp8.
        if disp == 0 and base3 != 5:
            mod = 0
        elif fits_i8(disp):
            mod = 1
        else:
            if not fits_i32(disp):
                raise EncodeError(f"displacement {disp} out of range")
            mod = 2
        if need_sib:
            out.append((mod << 6) | (reg3 << 3) | 0x04)
            if mem.index is not None:
                index = reg_info(mem.index)
                self.rex_x = index.num >> 3
                index3 = index.num & 7
                if index3 == 4 and index.num == 4:
                    raise EncodeError("rsp cannot be an index")
            else:
                index3 = 4  # none
            scale_bits = {1: 0, 2: 1, 4: 2, 8: 3}[mem.scale]
            out.append((scale_bits << 6) | (index3 << 3) | base3)
        else:
            out.append((mod << 6) | (reg3 << 3) | base3)
        if mod == 1:
            out.extend(_i8(disp))
        elif mod == 2:
            out.extend(_i32(disp))
        return bytes(out)


def _rex(w: int, m: _ModRM) -> bytes:
    val = 0x40 | (w << 3) | (m.rex_r << 2) | (m.rex_x << 1) | m.rex_b
    if val == 0x40:
        return b""
    return bytes([val])


def _rex_force(w: int, m: _ModRM) -> bytes:
    """REX that is always emitted (needed when W=1)."""
    return bytes([0x40 | (w << 3) | (m.rex_r << 2) | (m.rex_x << 1) | m.rex_b])


def _rm_instr(opcodes: bytes, reg_field: int, rm: Operand, w: int = 1) -> bytes:
    m = _ModRM(reg_field, rm)
    rex = _rex_force(1, m) if w else _rex(0, m)
    return rex + opcodes + m.bytes


def encode(instr: Instr, rel32: int = 0) -> bytes:
    """Encode one instruction.

    ``rel32`` supplies the pre-computed relative displacement for branch and
    call instructions (the assembler resolves labels and passes it in).
    """
    mn = instr.mnemonic
    ops = instr.operands
    lock = b"\xf0" if instr.lock else b""

    # ---- moves -----------------------------------------------------------
    if mn == "mov":
        dst, src = ops
        if isinstance(dst, Reg) and isinstance(src, Reg):
            w = 1 if dst.info.width == 64 else 0
            return _rm_instr(b"\x89", src.info.num, dst, w)
        if isinstance(dst, Reg) and isinstance(src, Imm):
            if not fits_i32(src.value):
                raise EncodeError("use movabs for 64-bit immediates")
            m = _ModRM(0, dst)
            w = 1 if dst.info.width == 64 else 0
            rex = _rex_force(1, m) if w else _rex(0, m)
            return rex + b"\xc7" + m.bytes + _i32(src.value)
        if isinstance(dst, Reg) and isinstance(src, Mem):
            if src.width == 8:
                return _rm_instr(b"\x8a", dst.info.num, src, 0)
            w = 1 if src.width == 64 else 0
            return _rm_instr(b"\x8b", dst.info.num, src, w)
        if isinstance(dst, Mem) and isinstance(src, Reg):
            if dst.width == 8:
                return _rm_instr(b"\x88", src.info.num, dst, 0)
            w = 1 if dst.width == 64 else 0
            return lock + _rm_instr(b"\x89", src.info.num, dst, w)
        raise EncodeError(f"bad mov operands {instr}")
    if mn == "movabs":
        dst, src = ops
        assert isinstance(dst, Reg) and isinstance(src, Imm)
        num = dst.info.num
        rex = bytes([0x48 | (num >> 3)])
        return rex + bytes([0xB8 + (num & 7)]) + _u64(src.value)
    if mn in ("movzx", "movsx"):
        dst, src = ops
        width = src.width if isinstance(src, Mem) else src.info.width
        if width == 8:
            op = b"\x0f\xb6" if mn == "movzx" else b"\x0f\xbe"
        elif width == 16:
            op = b"\x0f\xb7" if mn == "movzx" else b"\x0f\xbf"
        else:
            raise EncodeError(f"bad {mn} source width {width}")
        return _rm_instr(op, dst.info.num, src, 1)
    if mn == "movsxd":
        dst, src = ops
        return _rm_instr(b"\x63", dst.info.num, src, 1)
    if mn == "lea":
        dst, src = ops
        return _rm_instr(b"\x8d", dst.info.num, src, 1)
    if mn == "push":
        (r,) = ops
        num = r.info.num
        rex = b"\x41" if num >= 8 else b""
        return rex + bytes([0x50 + (num & 7)])
    if mn == "pop":
        (r,) = ops
        num = r.info.num
        rex = b"\x41" if num >= 8 else b""
        return rex + bytes([0x58 + (num & 7)])

    # ---- ALU -----------------------------------------------------------
    if mn in ALU_MR_OPCODE:
        dst, src = ops
        if isinstance(src, Reg):
            w = 1 if dst.info.width == 64 else 0
            return _rm_instr(bytes([ALU_MR_OPCODE[mn]]), src.info.num, dst, w)
        if isinstance(src, Imm):
            ext = ALU_IMM_EXT[mn]
            m = _ModRM(ext, dst)
            w = 1 if dst.info.width == 64 else 0
            rex = _rex_force(1, m) if w else _rex(0, m)
            if fits_i8(src.value):
                return rex + b"\x83" + m.bytes + _i8(src.value)
            if not fits_i32(src.value):
                raise EncodeError(f"{mn} immediate too large")
            return rex + b"\x81" + m.bytes + _i32(src.value)
        raise EncodeError(f"bad {mn} operands {instr}")
    if mn == "test":
        dst, src = ops
        w = 1 if dst.info.width == 64 else 0
        return _rm_instr(b"\x85", src.info.num, dst, w)
    if mn == "imul":
        dst, src = ops
        return _rm_instr(b"\x0f\xaf", dst.info.num, src, 1)
    if mn == "cqo":
        return b"\x48\x99"
    if mn == "cdq":
        return b"\x99"
    if mn == "idiv":
        (r,) = ops
        return _rm_instr(b"\xf7", 7, r, 1)
    if mn == "neg":
        (r,) = ops
        return _rm_instr(b"\xf7", 3, r, 1)
    if mn == "not":
        (r,) = ops
        return _rm_instr(b"\xf7", 2, r, 1)
    if mn in SHIFT_EXT:
        dst, src = ops
        ext = SHIFT_EXT[mn]
        m = _ModRM(ext, dst)
        rex = _rex_force(1, m)
        if isinstance(src, Imm):
            return rex + b"\xc1" + m.bytes + bytes([src.value & 0xFF])
        if isinstance(src, Reg) and src.name == "cl":
            return rex + b"\xd3" + m.bytes
        raise EncodeError(f"bad shift operand {src!r}")
    if mn.startswith("set") and mn[3:] in CC_NUM:
        (r,) = ops
        if r.info.width != 8:
            raise EncodeError("setcc needs an 8-bit register")
        m = _ModRM(0, r)
        return bytes([0x0F, 0x90 + CC_NUM[mn[3:]]]) + m.bytes

    # ---- control flow ----------------------------------------------------
    if mn == "jmp":
        return b"\xe9" + _i32(rel32)
    if mn.startswith("j") and mn[1:] in CC_NUM:
        return bytes([0x0F, 0x80 + CC_NUM[mn[1:]]]) + _i32(rel32)
    if mn == "call":
        if ops and isinstance(ops[0], Reg):
            return _rm_instr(b"\xff", 2, ops[0], 0)
        return b"\xe8" + _i32(rel32)
    if mn == "ret":
        return b"\xc3"
    if mn == "nop":
        return b"\x90"
    if mn == "ud2":
        return b"\x0f\x0b"

    # ---- concurrency -------------------------------------------------------
    if mn == "mfence":
        return b"\x0f\xae\xf0"
    if mn == "cmpxchg":
        dst, src = ops
        return lock + _rm_instr(b"\x0f\xb1", src.info.num, dst, 1)
    if mn == "xadd":
        dst, src = ops
        return lock + _rm_instr(b"\x0f\xc1", src.info.num, dst, 1)
    if mn == "xchg":
        dst, src = ops
        return _rm_instr(b"\x87", src.info.num, dst, 1)

    # ---- SSE -----------------------------------------------------------------
    if mn in ("movsd", "movss"):
        prefix = b"\xf2" if mn == "movsd" else b"\xf3"
        dst, src = ops
        if isinstance(dst, Reg) and dst.info.kind == "xmm":
            return prefix + _rm_instr(b"\x0f\x10", dst.info.num, src, 0)
        return prefix + _rm_instr(b"\x0f\x11", src.info.num, dst, 0)
    if mn == "movaps":
        dst, src = ops
        if isinstance(dst, Reg) and dst.info.kind == "xmm" and not isinstance(src, Mem):
            return _rm_instr(b"\x0f\x28", dst.info.num, src, 0)
        if isinstance(dst, Reg):
            return _rm_instr(b"\x0f\x28", dst.info.num, src, 0)
        return _rm_instr(b"\x0f\x29", src.info.num, dst, 0)
    if mn in SSE_SCALAR_OPCODE:
        prefix = b"\xf3" if mn.endswith("ss") else b"\xf2"
        dst, src = ops
        op = bytes([0x0F, SSE_SCALAR_OPCODE[mn]])
        return prefix + _rm_instr(op, dst.info.num, src, 0)
    if mn in SSE_PACKED_OPCODE:
        dst, src = ops
        op = bytes([0x0F, SSE_PACKED_OPCODE[mn]])
        return b"\x66" + _rm_instr(op, dst.info.num, src, 0)
    if mn == "ucomisd":
        dst, src = ops
        return b"\x66" + _rm_instr(b"\x0f\x2e", dst.info.num, src, 0)
    if mn == "pxor":
        dst, src = ops
        return b"\x66" + _rm_instr(b"\x0f\xef", dst.info.num, src, 0)
    if mn == "cvtsi2sd":
        dst, src = ops
        return b"\xf2" + _rm_instr(b"\x0f\x2a", dst.info.num, src, 1)
    if mn == "cvttsd2si":
        dst, src = ops
        return b"\xf2" + _rm_instr(b"\x0f\x2c", dst.info.num, src, 1)
    if mn == "movq":
        dst, src = ops
        if isinstance(dst, Reg) and dst.info.kind == "xmm":
            return b"\x66" + _rm_instr(b"\x0f\x6e", dst.info.num, src, 1)
        return b"\x66" + _rm_instr(b"\x0f\x7e", src.info.num, dst, 1)

    raise EncodeError(f"cannot encode {instr}")
