"""x86-64 emulator with an operational TSO memory model.

Executes a linked :class:`~repro.x86.objfile.X86Object`.  Each thread owns a
FIFO *store buffer*: stores enter the buffer, loads forward from the
thread's own buffer before falling through to memory, and buffers drain to
memory at scheduling points, on ``mfence`` and on ``lock``-prefixed
instructions — the standard operational presentation of x86-TSO.

The emulator provides the same runtime the LIR interpreter and Arm emulator
provide (``malloc``/``spawn``/``join``/``print_*``), so the whole pipeline is
differentially testable end to end.
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from .. import telemetry
from .decoder import decode_one
from .isa import CC_NUM, Imm, Instr, Mem, Reg
from .objfile import X86Object
from .registers import GPR64, reg_info

HEAP_BASE = 0x900000
STACK_BASE = 0x2000000
STACK_SIZE = 0x40000
MEMORY_SIZE = STACK_BASE + 64 * STACK_SIZE


class EmuError(Exception):
    pass


def _signed(v: int, bits: int) -> int:
    v &= (1 << bits) - 1
    if v >= 1 << (bits - 1):
        v -= 1 << bits
    return v


def _parity(v: int) -> int:
    return 1 if bin(v & 0xFF).count("1") % 2 == 0 else 0


class Thread:
    def __init__(self, tid: int, rip: int, rsp: int) -> None:
        self.tid = tid
        self.regs: dict[str, int] = {r: 0 for r in GPR64}
        self.xmm: list[int] = [0] * 16  # 128-bit values as ints
        self.flags = {"cf": 0, "pf": 0, "zf": 0, "sf": 0, "of": 0}
        self.rip = rip
        self.regs["rsp"] = rsp
        self.store_buffer: list[tuple[int, bytes]] = []
        self.done = False
        self.instret = 0  # retired instruction count


class X86Emulator:
    def __init__(
        self, obj: X86Object, quantum: int = 64, lazy_flush: bool = False
    ) -> None:
        """``lazy_flush=True`` keeps store buffers across scheduling
        quanta (draining only at fences, locked instructions, runtime
        calls, capacity pressure and thread exit), which lets genuinely
        weak TSO behaviours such as SB's a=b=0 manifest.  The default
        drains at every context switch, which is deterministic and
        sufficient for data-race-free programs."""
        self.obj = obj
        self.quantum = quantum
        self.lazy_flush = lazy_flush
        self.buffer_capacity = 16
        self.memory = bytearray(MEMORY_SIZE)
        self.heap_ptr = HEAP_BASE
        self.output: list[str] = []
        self.threads: list[Thread] = []
        self.next_tid = 0
        self.steps = 0
        self.max_steps = 500_000_000
        self.icache: dict[int, Instr] = {}
        self._load_image()
        self.externals: dict[str, Callable[[Thread], None]] = {
            "malloc": self._ext_malloc,
            "spawn": self._ext_spawn,
            "join": self._ext_join,
            "print_i64": self._ext_print_i64,
            "print_f64": self._ext_print_f64,
            "abort": self._ext_abort,
            "thread_id": self._ext_thread_id,
        }
        # Catalogued externals (libc string/memory helpers, pthread
        # mutexes) run through the loader catalog's shared execution
        # kernel; it only fills names the built-in runtime above does not
        # already provide, so minicc-built objects get mutex support
        # without perturbing the core runtime.
        from ..loader.externs import install_x86_catalog
        install_x86_catalog(self)

    # ---- image loading ---------------------------------------------------
    def _load_image(self) -> None:
        base = self.obj.text_base
        self.memory[base : base + len(self.obj.text)] = self.obj.text
        for sym in self.obj.data_symbols.values():
            if sym.init:
                self.memory[sym.address : sym.address + len(sym.init)] = sym.init

    def _fetch(self, rip: int) -> Instr:
        instr = self.icache.get(rip)
        if instr is None:
            offset = rip - self.obj.text_base
            if not 0 <= offset < len(self.obj.text):
                raise EmuError(f"rip outside text: {rip:#x}")
            instr = decode_one(self.obj.text, offset, rip)
            self.icache[rip] = instr
        return instr

    # ---- memory with TSO store buffers -------------------------------------
    def _mem_read(self, thread: Thread, addr: int, size: int) -> bytes:
        if addr < 0 or addr + size > len(self.memory):
            raise EmuError(f"load out of range: {addr:#x}+{size}")
        data = bytearray(self.memory[addr : addr + size])
        # Store-to-load forwarding from this thread's own buffer (oldest
        # first so newer stores win).
        for baddr, bdata in thread.store_buffer:
            lo = max(addr, baddr)
            hi = min(addr + size, baddr + len(bdata))
            if lo < hi:
                data[lo - addr : hi - addr] = bdata[lo - baddr : hi - baddr]
        return bytes(data)

    def _mem_write(self, thread: Thread, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > len(self.memory):
            raise EmuError(f"store out of range: {addr:#x}+{len(data)}")
        thread.store_buffer.append((addr, data))

    def _flush(self, thread: Thread) -> None:
        for addr, data in thread.store_buffer:
            self.memory[addr : addr + len(data)] = data
        thread.store_buffer.clear()

    # ---- register access -----------------------------------------------------
    @staticmethod
    def _read_reg(thread: Thread, name: str) -> int:
        info = reg_info(name)
        if info.kind == "xmm":
            return thread.xmm[info.num]
        full = thread.regs[info.full_name]
        if info.width == 64:
            return full
        return full & ((1 << info.width) - 1)

    @staticmethod
    def _write_reg(thread: Thread, name: str, value: int) -> None:
        info = reg_info(name)
        if info.kind == "xmm":
            thread.xmm[info.num] = value & (2**128 - 1)
            return
        if info.width == 64:
            thread.regs[info.full_name] = value & (2**64 - 1)
        elif info.width == 32:
            # 32-bit writes zero the upper half, as hardware does.
            thread.regs[info.full_name] = value & 0xFFFFFFFF
        else:
            mask = (1 << info.width) - 1
            old = thread.regs[info.full_name]
            thread.regs[info.full_name] = (old & ~mask) | (value & mask)

    def _mem_addr(self, thread: Thread, mem: Mem) -> int:
        addr = mem.disp
        if mem.base is not None:
            addr += self._read_reg(thread, mem.base)
        if mem.index is not None:
            addr += self._read_reg(thread, mem.index) * mem.scale
        return addr & (2**64 - 1)

    # ---- operand helpers ----------------------------------------------------
    def _read_operand(self, thread: Thread, op, width: int) -> int:
        if isinstance(op, Reg):
            return self._read_reg(thread, op.name)
        if isinstance(op, Imm):
            return op.value & (2**64 - 1)
        if isinstance(op, Mem):
            addr = self._mem_addr(thread, op)
            raw = self._mem_read(thread, addr, width // 8)
            return int.from_bytes(raw, "little")
        raise EmuError(f"cannot read operand {op!r}")

    def _write_operand(self, thread: Thread, op, width: int, value: int) -> None:
        if isinstance(op, Reg):
            self._write_reg(thread, op.name, value)
        elif isinstance(op, Mem):
            addr = self._mem_addr(thread, op)
            data = (value & ((1 << width) - 1)).to_bytes(width // 8, "little")
            self._mem_write(thread, addr, data)
        else:
            raise EmuError(f"cannot write operand {op!r}")

    @staticmethod
    def _op_width(op, default: int = 64) -> int:
        if isinstance(op, Reg):
            return op.info.width
        if isinstance(op, Mem):
            return op.width
        return default

    # ---- flags -----------------------------------------------------------------
    def _set_logic_flags(self, thread: Thread, result: int, width: int) -> None:
        mask = (1 << width) - 1
        r = result & mask
        thread.flags.update(
            cf=0, of=0,
            zf=1 if r == 0 else 0,
            sf=1 if r >> (width - 1) else 0,
            pf=_parity(r),
        )

    def _set_add_flags(self, thread: Thread, a: int, b: int, width: int) -> int:
        mask = (1 << width) - 1
        r = (a + b) & mask
        sa, sb, sr = _signed(a, width), _signed(b, width), _signed(r, width)
        thread.flags.update(
            cf=1 if (a & mask) + (b & mask) > mask else 0,
            of=1 if (sa >= 0) == (sb >= 0) and (sr >= 0) != (sa >= 0) else 0,
            zf=1 if r == 0 else 0,
            sf=1 if r >> (width - 1) else 0,
            pf=_parity(r),
        )
        return r

    def _set_sub_flags(self, thread: Thread, a: int, b: int, width: int) -> int:
        mask = (1 << width) - 1
        r = (a - b) & mask
        sa, sb, sr = _signed(a, width), _signed(b, width), _signed(r, width)
        thread.flags.update(
            cf=1 if (a & mask) < (b & mask) else 0,
            of=1 if (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0) else 0,
            zf=1 if r == 0 else 0,
            sf=1 if r >> (width - 1) else 0,
            pf=_parity(r),
        )
        return r

    def _cc_holds(self, thread: Thread, cc: str) -> bool:
        f = thread.flags
        table = {
            "o": f["of"] == 1, "no": f["of"] == 0,
            "b": f["cf"] == 1, "ae": f["cf"] == 0,
            "e": f["zf"] == 1, "ne": f["zf"] == 0,
            "be": f["cf"] == 1 or f["zf"] == 1,
            "a": f["cf"] == 0 and f["zf"] == 0,
            "s": f["sf"] == 1, "ns": f["sf"] == 0,
            "p": f["pf"] == 1, "np": f["pf"] == 0,
            "l": f["sf"] != f["of"], "ge": f["sf"] == f["of"],
            "le": f["zf"] == 1 or f["sf"] != f["of"],
            "g": f["zf"] == 0 and f["sf"] == f["of"],
        }
        return table[cc]

    # ---- run loop -----------------------------------------------------------
    def run(self, entry: Optional[str] = None, args: Optional[list[int]] = None) -> int:
        name = entry or self.obj.entry
        sym = self.obj.functions.get(name)
        if sym is None:
            from .objfile import EntryError
            raise EntryError(name, sorted(self.obj.functions))
        main = self._make_thread(sym.address)
        from .registers import INT_PARAM_REGS

        for reg, val in zip(INT_PARAM_REGS, args or []):
            self._write_reg(main, reg, val)
        while not main.done:
            self._schedule()
        if telemetry.enabled():
            telemetry.count("emu.x86.instret",
                            sum(t.instret for t in self.threads))
            telemetry.count("emu.x86.threads", len(self.threads))
        return _signed(main.regs["rax"], 64)

    RETURN_SENTINEL = 0xDEAD0000

    def _make_thread(self, rip: int) -> Thread:
        tid = self.next_tid
        self.next_tid += 1
        rsp = STACK_BASE + (tid + 1) * STACK_SIZE - 64
        thread = Thread(tid, rip, rsp)
        # Push a sentinel return address; returning to it ends the thread.
        rsp -= 8
        thread.regs["rsp"] = rsp
        self.memory[rsp : rsp + 8] = self.RETURN_SENTINEL.to_bytes(8, "little")
        self.threads.append(thread)
        return thread

    def _schedule(self) -> None:
        ran = False
        for thread in list(self.threads):
            if thread.done:
                continue
            ran = True
            for _ in range(self.quantum):
                if thread.done:
                    break
                self.step(thread)
            # Store buffers drain at context-switch boundaries unless the
            # TSO-exploration mode keeps them live across quanta.
            if not self.lazy_flush:
                self._flush(thread)
            elif len(thread.store_buffer) > self.buffer_capacity:
                # Capacity pressure: drain the oldest half, FIFO order.
                drain = len(thread.store_buffer) // 2
                for addr, data in thread.store_buffer[:drain]:
                    self.memory[addr : addr + len(data)] = data
                del thread.store_buffer[:drain]
        if not ran:
            raise EmuError("no runnable threads")

    # ---- single instruction -----------------------------------------------------
    def step(self, thread: Thread) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise EmuError("instruction budget exceeded")
        instr = self._fetch(thread.rip)
        thread.instret += 1
        next_rip = thread.rip + instr.size
        mn = instr.mnemonic
        ops = instr.operands

        if mn in ("mov", "movabs"):
            dst, src = ops
            width = self._op_width(dst) if not isinstance(dst, Reg) else dst.info.width
            if isinstance(src, Mem):
                width = src.width
            value = self._read_operand(thread, src, width)
            self._write_operand(thread, dst, width, value)
        elif mn in ("movzx", "movsx", "movsxd"):
            dst, src = ops
            src_width = self._op_width(src, 32)
            v = self._read_operand(thread, src, src_width)
            if mn != "movzx":
                v = _signed(v, src_width) & (2**64 - 1)
            self._write_reg(thread, dst.name, v)
        elif mn == "lea":
            dst, src = ops
            self._write_reg(thread, dst.name, self._mem_addr(thread, src))
        elif mn == "push":
            v = self._read_reg(thread, ops[0].name)
            rsp = (thread.regs["rsp"] - 8) & (2**64 - 1)
            thread.regs["rsp"] = rsp
            self._mem_write(thread, rsp, v.to_bytes(8, "little"))
        elif mn == "pop":
            rsp = thread.regs["rsp"]
            v = int.from_bytes(self._mem_read(thread, rsp, 8), "little")
            thread.regs["rsp"] = (rsp + 8) & (2**64 - 1)
            self._write_reg(thread, ops[0].name, v)
        elif mn in ("add", "sub", "and", "or", "xor", "cmp"):
            dst, src = ops
            width = self._op_width(dst)
            a = self._read_operand(thread, dst, width)
            b = self._read_operand(thread, src, width)
            if mn == "add":
                r = self._set_add_flags(thread, a, b, width)
            elif mn in ("sub", "cmp"):
                r = self._set_sub_flags(thread, a, b, width)
            else:
                r = {"and": a & b, "or": a | b, "xor": a ^ b}[mn]
                r &= (1 << width) - 1
                self._set_logic_flags(thread, r, width)
            if mn != "cmp":
                self._write_operand(thread, dst, width, r)
        elif mn == "test":
            dst, src = ops
            width = self._op_width(dst)
            a = self._read_operand(thread, dst, width)
            b = self._read_operand(thread, src, width)
            self._set_logic_flags(thread, a & b, width)
        elif mn == "imul":
            dst, src = ops
            a = _signed(self._read_reg(thread, dst.name), 64)
            b = _signed(self._read_operand(thread, src, 64), 64)
            r = a * b
            self._write_reg(thread, dst.name, r & (2**64 - 1))
            overflow = not (-(2**63) <= r < 2**63)
            thread.flags["cf"] = thread.flags["of"] = 1 if overflow else 0
        elif mn == "cqo":
            rax = _signed(thread.regs["rax"], 64)
            thread.regs["rdx"] = (2**64 - 1) if rax < 0 else 0
        elif mn == "idiv":
            divisor = _signed(self._read_operand(thread, ops[0], 64), 64)
            if divisor == 0:
                raise EmuError("integer division by zero")
            dividend = _signed(
                (thread.regs["rdx"] << 64) | thread.regs["rax"], 128
            )
            q = abs(dividend) // abs(divisor)
            if (dividend < 0) != (divisor < 0):
                q = -q
            r = dividend - q * divisor
            if not -(2**63) <= q < 2**63:
                raise EmuError("idiv overflow")
            thread.regs["rax"] = q & (2**64 - 1)
            thread.regs["rdx"] = r & (2**64 - 1)
        elif mn == "neg":
            width = self._op_width(ops[0])
            a = self._read_operand(thread, ops[0], width)
            r = self._set_sub_flags(thread, 0, a, width)
            self._write_operand(thread, ops[0], width, r)
        elif mn == "not":
            width = self._op_width(ops[0])
            a = self._read_operand(thread, ops[0], width)
            self._write_operand(thread, ops[0], width, ~a)
        elif mn in ("shl", "shr", "sar"):
            dst, src = ops
            width = self._op_width(dst)
            count = self._read_operand(thread, src, 8) & (width - 1)
            a = self._read_operand(thread, dst, width) & ((1 << width) - 1)
            if mn == "shl":
                r = (a << count) & ((1 << width) - 1)
                carry = (a >> (width - count)) & 1 if count else 0
            elif mn == "shr":
                r = a >> count
                carry = (a >> (count - 1)) & 1 if count else 0
            else:
                r = (_signed(a, width) >> count) & ((1 << width) - 1)
                carry = (_signed(a, width) >> (count - 1)) & 1 if count else 0
            if count:
                # zf/sf/pf from the result; CF is the last bit shifted out;
                # OF is architecturally undefined for count>1 — we pin it to
                # 0 and the lifter mirrors that choice.
                self._set_logic_flags(thread, r, width)
                thread.flags["cf"] = carry
            self._write_operand(thread, dst, width, r)
        elif mn.startswith("set") and mn[3:] in CC_NUM:
            v = 1 if self._cc_holds(thread, mn[3:]) else 0
            self._write_operand(thread, ops[0], 8, v)
        elif mn == "jmp":
            next_rip = ops[0].value
        elif mn.startswith("j") and mn[1:] in CC_NUM:
            if self._cc_holds(thread, mn[1:]):
                next_rip = ops[0].value
        elif mn == "call":
            if isinstance(ops[0], Reg):
                target = self._read_reg(thread, ops[0].name)
            else:
                target = ops[0].value
            ext = self.obj.external_at(target)
            if ext is not None:
                handler = self.externals.get(ext)
                if handler is None:
                    raise EmuError(
                        f"call to external {ext!r} at {target:#x} has no "
                        f"runtime handler (opaque/uncatalogued function)")
                self._flush(thread)  # runtime entry is a full barrier
                if handler(thread) == "retry":
                    return  # rip unchanged: re-execute the call later
            else:
                rsp = (thread.regs["rsp"] - 8) & (2**64 - 1)
                thread.regs["rsp"] = rsp
                self._mem_write(thread, rsp, next_rip.to_bytes(8, "little"))
                next_rip = target
        elif mn == "ret":
            rsp = thread.regs["rsp"]
            next_rip = int.from_bytes(self._mem_read(thread, rsp, 8), "little")
            thread.regs["rsp"] = (rsp + 8) & (2**64 - 1)
            if next_rip == self.RETURN_SENTINEL:
                self._flush(thread)
                thread.done = True
                return
        elif mn == "nop":
            pass
        elif mn == "mfence":
            self._flush(thread)
        elif mn == "cmpxchg":
            self._flush(thread)  # locked: acts on memory directly
            dst, src = ops
            width = self._op_width(dst)
            addr = self._mem_addr(thread, dst)
            old = int.from_bytes(self.memory[addr : addr + width // 8], "little")
            rax = thread.regs["rax"] & ((1 << width) - 1)
            self._set_sub_flags(thread, rax, old, width)
            if old == rax:
                new = self._read_reg(thread, src.name) & ((1 << width) - 1)
                self.memory[addr : addr + width // 8] = new.to_bytes(
                    width // 8, "little"
                )
                thread.flags["zf"] = 1
            else:
                thread.flags["zf"] = 0
                self._write_reg(thread, "rax", old)
        elif mn == "xadd":
            self._flush(thread)
            dst, src = ops
            width = self._op_width(dst)
            addr = self._mem_addr(thread, dst)
            old = int.from_bytes(self.memory[addr : addr + width // 8], "little")
            add = self._read_reg(thread, src.name) & ((1 << width) - 1)
            new = self._set_add_flags(thread, old, add, width)
            self.memory[addr : addr + width // 8] = new.to_bytes(
                width // 8, "little"
            )
            self._write_reg(thread, src.name, old)
        elif mn == "xchg":
            self._flush(thread)
            dst, src = ops
            width = self._op_width(dst)
            addr = self._mem_addr(thread, dst)
            old = int.from_bytes(self.memory[addr : addr + width // 8], "little")
            new = self._read_reg(thread, src.name) & ((1 << width) - 1)
            self.memory[addr : addr + width // 8] = new.to_bytes(
                width // 8, "little"
            )
            self._write_reg(thread, src.name, old)
        elif mn in ("movsd", "movss", "movq", "movaps", "pxor", "ucomisd",
                    "cvtsi2sd", "cvttsd2si", "addsd", "subsd", "mulsd",
                    "divsd", "addss", "subss", "mulss", "divss", "sqrtsd",
                    "addpd", "subpd", "mulpd", "paddq", "paddd"):
            self._step_sse(thread, instr)
        elif mn == "ud2":
            raise EmuError(f"ud2 executed at {thread.rip:#x}")
        else:
            raise EmuError(f"cannot emulate {instr}")
        thread.rip = next_rip

    # ---- SSE ---------------------------------------------------------------
    def _xmm_f64(self, value: int) -> float:
        return struct.unpack("<d", (value & (2**64 - 1)).to_bytes(8, "little"))[0]

    def _f64_bits(self, value: float) -> int:
        return int.from_bytes(struct.pack("<d", value), "little")

    def _step_sse(self, thread: Thread, instr: Instr) -> None:
        mn = instr.mnemonic
        ops = instr.operands

        def read64(op) -> int:
            if isinstance(op, Reg):
                return thread.xmm[op.info.num] & (2**64 - 1)
            return self._read_operand(thread, op, 64)

        if mn == "movsd" or mn == "movss":
            width = 64 if mn == "movsd" else 32
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                if isinstance(src, Mem):
                    v = self._read_operand(thread, src, width)
                    thread.xmm[dst.info.num] = v  # load zeroes the upper bits
                else:
                    lo = thread.xmm[src.info.num] & ((1 << width) - 1)
                    old = thread.xmm[dst.info.num]
                    thread.xmm[dst.info.num] = (old >> width << width) | lo
            else:
                v = thread.xmm[src.info.num] & ((1 << width) - 1)
                self._write_operand(thread, dst, width, v)
        elif mn == "movq":
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                thread.xmm[dst.info.num] = self._read_operand(thread, src, 64)
            else:
                self._write_operand(thread, dst, 64, thread.xmm[src.info.num])
        elif mn == "movaps":
            dst, src = ops
            if isinstance(dst, Reg) and dst.info.kind == "xmm":
                if isinstance(src, Mem):
                    thread.xmm[dst.info.num] = self._read_operand(thread, src, 128)
                else:
                    thread.xmm[dst.info.num] = thread.xmm[src.info.num]
            else:
                self._write_operand(thread, dst, 128, thread.xmm[src.info.num])
        elif mn == "pxor":
            dst, src = ops
            thread.xmm[dst.info.num] ^= thread.xmm[src.info.num]
        elif mn == "ucomisd":
            a = self._xmm_f64(thread.xmm[ops[0].info.num])
            b = self._xmm_f64(read64(ops[1]))
            f = thread.flags
            f["of"] = f["sf"] = 0
            if a != a or b != b:
                f["zf"] = f["pf"] = f["cf"] = 1
            elif a == b:
                f["zf"], f["pf"], f["cf"] = 1, 0, 0
            elif a < b:
                f["zf"], f["pf"], f["cf"] = 0, 0, 1
            else:
                f["zf"], f["pf"], f["cf"] = 0, 0, 0
        elif mn == "cvtsi2sd":
            dst, src = ops
            v = _signed(self._read_operand(thread, src, 64), 64)
            old = thread.xmm[dst.info.num]
            thread.xmm[dst.info.num] = (old >> 64 << 64) | self._f64_bits(float(v))
        elif mn == "cvttsd2si":
            dst, src = ops
            f = self._xmm_f64(read64(src))
            self._write_reg(thread, dst.name, int(f) & (2**64 - 1))
        elif mn == "sqrtsd":
            dst, src = ops
            f = self._xmm_f64(read64(src))
            old = thread.xmm[dst.info.num]
            thread.xmm[dst.info.num] = (old >> 64 << 64) | self._f64_bits(
                f ** 0.5
            )
        elif mn in ("addsd", "subsd", "mulsd", "divsd"):
            dst, src = ops
            a = self._xmm_f64(thread.xmm[dst.info.num])
            b = self._xmm_f64(read64(src))
            r = {
                "addsd": a + b, "subsd": a - b, "mulsd": a * b,
                "divsd": a / b if b != 0.0 else float("inf") * (1 if a > 0 else -1 if a < 0 else float("nan")),
            }[mn]
            old = thread.xmm[dst.info.num]
            thread.xmm[dst.info.num] = (old >> 64 << 64) | self._f64_bits(r)
        elif mn in ("addpd", "subpd", "mulpd"):
            dst, src = ops
            av = thread.xmm[dst.info.num]
            bv = thread.xmm[src.info.num] if isinstance(src, Reg) else (
                self._read_operand(thread, src, 128)
            )
            out = 0
            for lane in range(2):
                a = self._xmm_f64(av >> (64 * lane))
                b = self._xmm_f64(bv >> (64 * lane))
                r = {"addpd": a + b, "subpd": a - b, "mulpd": a * b}[mn]
                out |= self._f64_bits(r) << (64 * lane)
            thread.xmm[dst.info.num] = out
        elif mn in ("paddq", "paddd"):
            dst, src = ops
            av = thread.xmm[dst.info.num]
            bv = thread.xmm[src.info.num] if isinstance(src, Reg) else (
                self._read_operand(thread, src, 128)
            )
            lanes = 2 if mn == "paddq" else 4
            width = 128 // lanes
            mask = (1 << width) - 1
            out = 0
            for lane in range(lanes):
                a = (av >> (width * lane)) & mask
                b = (bv >> (width * lane)) & mask
                out |= ((a + b) & mask) << (width * lane)
            thread.xmm[dst.info.num] = out
        else:
            raise EmuError(f"cannot emulate SSE {instr}")

    # ---- runtime externals ---------------------------------------------------
    def _ext_malloc(self, thread: Thread) -> None:
        size = thread.regs["rdi"]
        addr = (self.heap_ptr + 15) & ~15
        self.heap_ptr = addr + max(1, size)
        if self.heap_ptr >= STACK_BASE:
            raise EmuError("heap exhausted")
        thread.regs["rax"] = addr

    def _ext_spawn(self, thread: Thread) -> None:
        target = thread.regs["rdi"]
        child = self._make_thread(target)
        child.regs["rdi"] = thread.regs["rsi"]
        thread.regs["rax"] = child.tid

    def _ext_join(self, thread: Thread):
        """Blocking join: if the target is still running, leave rip on the
        call instruction and yield (the scheduler keeps running the target);
        once done, publish its buffered stores and collect the result."""
        tid = thread.regs["rdi"]
        for t in self.threads:
            if t.tid == tid:
                if not t.done:
                    return "retry"
                self._flush(t)
                thread.regs["rax"] = t.regs["rax"]
                return None
        raise EmuError(f"join of unknown thread {tid}")

    def _ext_print_i64(self, thread: Thread) -> None:
        self.output.append(str(_signed(thread.regs["rdi"], 64)))

    def _ext_print_f64(self, thread: Thread) -> None:
        self.output.append(f"{self._xmm_f64(thread.xmm[0]):.6f}")

    def _ext_abort(self, thread: Thread) -> None:
        raise EmuError("program aborted")

    def _ext_thread_id(self, thread: Thread) -> None:
        thread.regs["rax"] = thread.tid
