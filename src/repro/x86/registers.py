"""x86-64 register model.

Registers are identified by name; :func:`reg_info` maps any architectural
name (``rax``, ``eax``, ``ax``, ``al``, ``xmm3`` ...) to its register file,
hardware encoding number and access width.  The lifter treats sub-registers
as views of the full 64-bit (or 128-bit) register, as hardware does.
"""

from __future__ import annotations

from dataclasses import dataclass

GPR64 = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]
GPR32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]
GPR16 = [
    "ax", "cx", "dx", "bx", "sp", "bp", "si", "di",
    "r8w", "r9w", "r10w", "r11w", "r12w", "r13w", "r14w", "r15w",
]
GPR8 = [
    "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil",
    "r8b", "r9b", "r10b", "r11b", "r12b", "r13b", "r14b", "r15b",
]
XMM = [f"xmm{i}" for i in range(16)]

# System-V AMD64 calling convention.
INT_PARAM_REGS = ["rdi", "rsi", "rdx", "rcx", "r8", "r9"]
SSE_PARAM_REGS = [f"xmm{i}" for i in range(8)]
INT_RETURN_REG = "rax"
SSE_RETURN_REG = "xmm0"
CALLEE_SAVED = ["rbx", "rbp", "r12", "r13", "r14", "r15"]
CALLER_SAVED = ["rax", "rcx", "rdx", "rsi", "rdi", "r8", "r9", "r10", "r11"]


@dataclass(frozen=True)
class RegInfo:
    name: str
    kind: str        # "gpr" or "xmm"
    num: int         # hardware encoding (0-15)
    width: int       # access width in bits
    full_name: str   # name of the containing 64/128-bit register


_INFO: dict[str, RegInfo] = {}
for _i, _n in enumerate(GPR64):
    _INFO[_n] = RegInfo(_n, "gpr", _i, 64, _n)
for _i, _n in enumerate(GPR32):
    _INFO[_n] = RegInfo(_n, "gpr", _i, 32, GPR64[_i])
for _i, _n in enumerate(GPR16):
    _INFO[_n] = RegInfo(_n, "gpr", _i, 16, GPR64[_i])
for _i, _n in enumerate(GPR8):
    _INFO[_n] = RegInfo(_n, "gpr", _i, 8, GPR64[_i])
for _i, _n in enumerate(XMM):
    _INFO[_n] = RegInfo(_n, "xmm", _i, 128, _n)


def reg_info(name: str) -> RegInfo:
    try:
        return _INFO[name]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None


def is_register(name: str) -> bool:
    return name in _INFO


def gpr_name(num: int, width: int) -> str:
    table = {64: GPR64, 32: GPR32, 16: GPR16, 8: GPR8}[width]
    return table[num]


def xmm_name(num: int) -> str:
    return XMM[num]


# RFLAGS bits the emulator and lifter model.
FLAGS = ["cf", "pf", "zf", "sf", "of"]
