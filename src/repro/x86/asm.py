"""Two-pass assembler/linker: symbolic x86-64 → a linked X86Object image.

Input is per-function instruction streams where branch targets are
:class:`~repro.x86.isa.Label` operands.  Labels can name local blocks
(``.Lfoo``), functions, globals or externals; the assembler lays text out at
``TEXT_BASE``, globals at ``DATA_BASE``, gives every external a stub address,
then resolves:

* ``jmp/jcc/call Label`` → rel32 displacements;
* ``movabs reg, Label`` → the absolute address of a global/function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .encoder import encode
from .isa import Imm, Instr, Label
from .objfile import (
    DATA_BASE,
    STUB_BASE,
    STUB_SIZE,
    TEXT_BASE,
    DataSymbol,
    FuncSymbol,
    X86Object,
)


class AsmError(Exception):
    pass


Item = Union[str, Instr]  # a local label definition or an instruction


@dataclass
class AsmFunction:
    name: str
    items: list[Item] = field(default_factory=list)

    def label(self, name: str) -> None:
        self.items.append(name)

    def emit(self, instr: Instr) -> Instr:
        self.items.append(instr)
        return instr


@dataclass
class AsmGlobal:
    name: str
    size: int
    init: bytes = b""


class Assembler:
    def __init__(self) -> None:
        self.functions: list[AsmFunction] = []
        self.globals: list[AsmGlobal] = []
        self.externals: list[str] = []

    def add_function(self, func: AsmFunction) -> AsmFunction:
        self.functions.append(func)
        return func

    def add_global(self, name: str, size: int, init: bytes = b"") -> None:
        self.globals.append(AsmGlobal(name, size, init))

    def declare_external(self, name: str) -> None:
        if name not in self.externals:
            self.externals.append(name)

    # ------------------------------------------------------------------
    def link(self, entry: str = "main") -> X86Object:
        obj = X86Object(entry=entry)
        # Stub addresses for externals.
        for i, name in enumerate(self.externals):
            obj.externals[name] = STUB_BASE + i * STUB_SIZE
        # Data layout.
        addr = DATA_BASE
        for g in self.globals:
            addr = (addr + 15) & ~15
            obj.data_symbols[g.name] = DataSymbol(g.name, addr, g.size, g.init)
            addr += max(1, g.size)

        symbols: dict[str, int] = {}
        symbols.update(obj.externals)
        for name, sym in obj.data_symbols.items():
            symbols[name] = sym.address

        # Pass 1: lay out instructions with placeholder displacements.
        layouts: list[tuple[AsmFunction, list[tuple[Instr, int]]]] = []
        pc = TEXT_BASE
        local_labels: dict[tuple[str, str], int] = {}
        for func in self.functions:
            start = pc
            placed: list[tuple[Instr, int]] = []
            for item in func.items:
                if isinstance(item, str):
                    local_labels[(func.name, item)] = pc
                    continue
                size = len(self._encode(item, pc, symbols, resolve=False))
                item.address = pc
                item.size = size
                placed.append((item, pc))
                pc += size
            symbols[func.name] = start
            obj.functions[func.name] = FuncSymbol(func.name, start, pc - start)
            layouts.append((func, placed))

        # Pass 2: resolve labels and emit final bytes.
        text = bytearray()
        for func, placed in layouts:
            for instr, addr in placed:
                encoded = self._encode(
                    instr, addr, symbols, resolve=True,
                    local=lambda n, f=func.name: local_labels.get((f, n)),
                )
                if len(encoded) != instr.size:
                    raise AsmError(
                        f"{func.name}: size changed between passes for {instr}"
                    )
                text.extend(encoded)
        obj.text = bytes(text)
        return obj

    def _encode(self, instr, addr, symbols, resolve, local=None) -> bytes:
        target_rel = 0
        prepared = instr
        label = self._label_operand(instr)
        if label is not None:
            target = 0
            if resolve:
                target = self._resolve(label.name, symbols, local)
            if instr.mnemonic in ("jmp", "call") or instr.mnemonic.startswith("j"):
                end = addr + (instr.size if resolve else 8)
                # Relative displacement measured from the end of the
                # instruction.  Branch encodings have a fixed size, so pass 1
                # computes sizes with rel=0 and pass 2 supplies the real one.
                target_rel = target - end if resolve else 0
                prepared = Instr(instr.mnemonic, [], lock=instr.lock)
                prepared.size = instr.size
            elif instr.mnemonic == "movabs":
                prepared = Instr(
                    "movabs", [instr.operands[0], Imm(target, 64)],
                    lock=instr.lock,
                )
            else:
                raise AsmError(f"label operand not allowed in {instr}")
        return encode(prepared, rel32=target_rel)

    @staticmethod
    def _label_operand(instr: Instr) -> Label | None:
        for op in instr.operands:
            if isinstance(op, Label):
                return op
        return None

    @staticmethod
    def _resolve(name, symbols, local) -> int:
        if local is not None:
            t = local(name)
            if t is not None:
                return t
        if name in symbols:
            return symbols[name]
        raise AsmError(f"undefined symbol {name!r}")
