"""x86-64 instruction model: operands and the `Instr` record.

This is the MCInst-level representation: a mnemonic plus structured
operands.  The encoder lowers it to machine-code bytes and the decoder
raises bytes back to it, so `decode(encode(i)) == i` round-trips for the
whole subset (property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from .registers import reg_info

# Condition codes in hardware encoding order (Jcc = 0F 80+cc).
CONDITION_CODES = [
    "o", "no", "b", "ae", "e", "ne", "be", "a",
    "s", "ns", "p", "np", "l", "ge", "le", "g",
]
CC_NUM = {cc: i for i, cc in enumerate(CONDITION_CODES)}


@dataclass(frozen=True)
class Reg:
    name: str

    def __post_init__(self) -> None:
        reg_info(self.name)  # validate

    @property
    def info(self):
        return reg_info(self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    value: int
    # Encoded immediate width in bits; chosen by the encoder, informative
    # only, so it does not participate in equality (round-trip tests compare
    # decoded instructions against their sources).
    width: int = field(default=32, compare=False)

    def __str__(self) -> str:
        return f"${self.value}"


@dataclass(frozen=True)
class Mem:
    """Memory operand ``disp(base, index, scale)`` with access width in bits."""

    base: Optional[str] = None
    index: Optional[str] = None
    scale: int = 1
    disp: int = 0
    width: int = 64

    def __post_init__(self) -> None:
        if self.base is not None:
            reg_info(self.base)
        if self.index is not None:
            if self.index == "rsp":
                raise ValueError("rsp cannot be an index register")
            reg_info(self.index)
        if self.scale not in (1, 2, 4, 8):
            raise ValueError(f"bad scale {self.scale}")

    def __str__(self) -> str:
        inner = self.base or ""
        if self.index:
            inner += f",{self.index},{self.scale}"
        return f"{self.disp}({inner})"


@dataclass(frozen=True)
class Label:
    """A symbolic branch/call target, resolved by the assembler."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, Mem, Label]


@dataclass
class Instr:
    """One x86-64 instruction (MCInst level)."""

    mnemonic: str
    operands: list[Operand] = field(default_factory=list)
    lock: bool = False
    # Filled in by the assembler/decoder:
    address: int = 0
    size: int = 0

    def __str__(self) -> str:
        prefix = "lock " if self.lock else ""
        ops = ", ".join(str(o) for o in self.operands)
        return f"{prefix}{self.mnemonic} {ops}".strip()

    def key(self) -> tuple:
        """Equality key ignoring address/size (for round-trip tests)."""
        return (self.mnemonic, tuple(self.operands), self.lock)


# Mnemonic groups used by the encoder, decoder, emulator and lifter.
ALU_RR = {"add", "sub", "and", "or", "xor", "cmp"}  # 64-bit reg,reg / reg,imm
SHIFT_OPS = {"shl", "shr", "sar"}
SSE_ARITH = {"addsd", "subsd", "mulsd", "divsd", "addss", "subss", "mulss",
             "divss"}
SSE_PACKED = {"addpd", "subpd", "mulpd", "paddq", "paddd"}

JCC = {f"j{cc}" for cc in CONDITION_CODES}
SETCC = {f"set{cc}" for cc in CONDITION_CODES}


def is_branch(mnemonic: str) -> bool:
    return mnemonic == "jmp" or mnemonic in JCC


def is_terminator(mnemonic: str) -> bool:
    return mnemonic in ("jmp", "ret") or mnemonic in JCC
