"""x86-64 substrate: registers, ISA model, encoder/decoder, assembler,
object container, and a TSO emulator."""

from .asm import Assembler, AsmError, AsmFunction
from .asmparser import AsmParseError, assemble_text, parse_asm
from .decoder import DecodeError, decode_one
from .emulator import EmuError, X86Emulator
from .encoder import EncodeError, encode
from .isa import (
    CC_NUM,
    CONDITION_CODES,
    Imm,
    Instr,
    Label,
    Mem,
    Operand,
    Reg,
    is_branch,
    is_terminator,
)
from .objfile import DATA_BASE, STUB_BASE, TEXT_BASE, DataSymbol, FuncSymbol, X86Object
from .registers import (
    CALLEE_SAVED,
    CALLER_SAVED,
    GPR64,
    INT_PARAM_REGS,
    INT_RETURN_REG,
    SSE_PARAM_REGS,
    SSE_RETURN_REG,
    XMM,
    reg_info,
)

__all__ = [
    "Assembler", "AsmError", "AsmFunction",
    "AsmParseError", "assemble_text", "parse_asm",
    "DecodeError", "decode_one",
    "EmuError", "X86Emulator",
    "EncodeError", "encode",
    "CC_NUM", "CONDITION_CODES", "Imm", "Instr", "Label", "Mem", "Operand",
    "Reg", "is_branch", "is_terminator",
    "DATA_BASE", "STUB_BASE", "TEXT_BASE", "DataSymbol", "FuncSymbol",
    "X86Object",
    "CALLEE_SAVED", "CALLER_SAVED", "GPR64", "INT_PARAM_REGS",
    "INT_RETURN_REG", "SSE_PARAM_REGS", "SSE_RETURN_REG", "XMM", "reg_info",
]
