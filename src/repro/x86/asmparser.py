"""Text parser for x86-64 assembly (Intel syntax, destination first).

Turns source like::

    main:
        mov rax, 0
        movabs rcx, g          ; symbol reference
    .loop:
        add rax, qword [rcx + rdx*8 + 16]
        cmp rax, 100
        jl .loop
        lock xadd [rcx], rax
        ret

into :class:`~repro.x86.asm.AsmFunction` streams ready for the two-pass
assembler.  Directives: ``.global name, size [, hex-init]`` declares a data
symbol, ``.extern name`` a runtime external.  Memory operand widths come
from ``byte``/``dword``/``qword``/``xmmword`` prefixes (default qword).
"""

from __future__ import annotations

import re
from typing import Optional

from .asm import Assembler, AsmFunction
from .isa import Imm, Instr, Label, Mem, Reg
from .registers import is_register

WIDTHS = {"byte": 8, "word": 16, "dword": 32, "qword": 64, "xmmword": 128}


class AsmParseError(Exception):
    def __init__(self, message: str, line_no: int) -> None:
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _parse_int(token: str) -> Optional[int]:
    try:
        return int(token, 0)
    except ValueError:
        return None


def _parse_mem(text: str, width: int, line_no: int) -> Mem:
    """Parse ``[base + index*scale + disp]`` (any order of terms)."""
    inner = text.strip()
    assert inner.startswith("[") and inner.endswith("]")
    inner = inner[1:-1]
    base = None
    index = None
    scale = 1
    disp = 0
    # Normalize "a - 8" to "a + -8" then split on '+'.
    inner = inner.replace("-", "+-")
    for raw in inner.split("+"):
        term = raw.replace(" ", "")
        if not term:
            continue
        if "*" in term:
            lhs, rhs = [p.strip() for p in term.split("*", 1)]
            if is_register(lhs) and _parse_int(rhs) is not None:
                reg_name, factor = lhs, _parse_int(rhs)
            elif is_register(rhs) and _parse_int(lhs) is not None:
                reg_name, factor = rhs, _parse_int(lhs)
            else:
                raise AsmParseError(f"bad scaled index {term!r}", line_no)
            if index is not None:
                raise AsmParseError("two index registers", line_no)
            index, scale = reg_name, factor
        elif is_register(term):
            if base is None:
                base = term
            elif index is None:
                index = term
            else:
                raise AsmParseError("too many registers in address", line_no)
        else:
            value = _parse_int(term)
            if value is None:
                raise AsmParseError(f"bad address term {term!r}", line_no)
            disp += value
    return Mem(base=base, index=index, scale=scale, disp=disp, width=width)


def _parse_operand(text: str, line_no: int):
    token = text.strip()
    width = 64
    m = re.match(r"(byte|word|dword|qword|xmmword)\s+(.*)$", token)
    if m:
        width = WIDTHS[m.group(1)]
        token = m.group(2).strip()
    if token.startswith("["):
        return _parse_mem(token, width, line_no)
    if is_register(token):
        return Reg(token)
    value = _parse_int(token)
    if value is not None:
        return Imm(value, 64 if not -(2**31) <= value < 2**31 else 32)
    if re.fullmatch(r"[.\w$]+", token):
        return Label(token)
    raise AsmParseError(f"bad operand {token!r}", line_no)


def parse_asm(source: str) -> Assembler:
    """Parse a whole assembly file into an :class:`Assembler`."""
    asm = Assembler()
    current: Optional[AsmFunction] = None
    for line_no, raw in enumerate(source.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        if line.startswith(".global "):
            parts = [p.strip() for p in line[len(".global "):].split(",")]
            if len(parts) < 2:
                raise AsmParseError(".global needs name, size", line_no)
            init = bytes.fromhex(parts[2]) if len(parts) > 2 else b""
            asm.add_global(parts[0], int(parts[1], 0), init)
            continue
        if line.startswith(".extern "):
            asm.declare_external(line[len(".extern "):].strip())
            continue
        m = re.match(r"^([.\w$]+):$", line)
        if m:
            name = m.group(1)
            if name.startswith("."):
                if current is None:
                    raise AsmParseError("local label outside function", line_no)
                current.label(name)
            else:
                current = AsmFunction(name)
                asm.add_function(current)
            continue
        # An instruction line.
        if current is None:
            raise AsmParseError("instruction outside function", line_no)
        lock = False
        body = line
        if body.startswith("lock "):
            lock = True
            body = body[5:].strip()
        parts = body.split(None, 1)
        mnemonic = parts[0]
        operands = []
        if len(parts) > 1:
            depth = 0
            token = ""
            for ch in parts[1]:
                if ch == "[":
                    depth += 1
                elif ch == "]":
                    depth -= 1
                if ch == "," and depth == 0:
                    operands.append(_parse_operand(token, line_no))
                    token = ""
                else:
                    token += ch
            if token.strip():
                operands.append(_parse_operand(token, line_no))
        current.emit(Instr(mnemonic, operands, lock=lock))
    return asm


def assemble_text(source: str, entry: str = "main"):
    """Convenience: parse and link in one step."""
    return parse_asm(source).link(entry)
