"""x86-64 machine-code decoder (disassembler core).

Exact inverse of :mod:`repro.x86.encoder` over the supported subset.
``decode_one`` consumes bytes at an offset and returns the raised
:class:`~repro.x86.isa.Instr` with ``address`` and ``size`` filled in.
Branch targets are rehydrated to absolute addresses (stored in ``Imm``
operands); the disassembler layer turns them back into labels.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .encoder import ALU_IMM_EXT, ALU_MR_OPCODE, SHIFT_EXT
from .isa import CONDITION_CODES, Imm, Instr, Mem, Reg
from .registers import gpr_name, xmm_name

_ALU_BY_OPCODE = {v: k for k, v in ALU_MR_OPCODE.items()}
_ALU_BY_EXT = {v: k for k, v in ALU_IMM_EXT.items()}
_SHIFT_BY_EXT = {v: k for k, v in SHIFT_EXT.items()}
_SSE_SCALAR = {0x58: "add", 0x59: "mul", 0x5C: "sub", 0x5E: "div"}
_SSE_PACKED = {0x58: "addpd", 0x59: "mulpd", 0x5C: "subpd",
               0xD4: "paddq", 0xFE: "paddd"}


class DecodeError(Exception):
    pass


@dataclass
class _Cursor:
    data: bytes
    pos: int

    def u8(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def peek(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("truncated instruction")
        return self.data[self.pos]

    def i8(self) -> int:
        return struct.unpack("<b", bytes([self.u8()]))[0]

    def i32(self) -> int:
        if self.pos + 4 > len(self.data):
            raise DecodeError("truncated imm32")
        v = struct.unpack("<i", self.data[self.pos : self.pos + 4])[0]
        self.pos += 4
        return v

    def u32(self) -> int:
        if self.pos + 4 > len(self.data):
            raise DecodeError("truncated imm32")
        v = struct.unpack("<I", self.data[self.pos : self.pos + 4])[0]
        self.pos += 4
        return v

    def u64(self) -> int:
        if self.pos + 8 > len(self.data):
            raise DecodeError("truncated imm64")
        v = struct.unpack("<Q", self.data[self.pos : self.pos + 8])[0]
        self.pos += 8
        return v


@dataclass
class _Prefixes:
    lock: bool = False
    op66: bool = False
    f2: bool = False
    f3: bool = False
    rex: int = 0
    # Set by _read_modrm when it sees a RIP-relative operand; decode_one
    # patches the displacement to an absolute address once the final
    # instruction size is known.
    rip: bool = False

    @property
    def rex_w(self) -> int:
        return (self.rex >> 3) & 1

    @property
    def rex_r(self) -> int:
        return (self.rex >> 2) & 1

    @property
    def rex_x(self) -> int:
        return (self.rex >> 1) & 1

    @property
    def rex_b(self) -> int:
        return self.rex & 1


def _read_prefixes(cur: _Cursor) -> _Prefixes:
    p = _Prefixes()
    while True:
        b = cur.peek()
        if b == 0xF0:
            p.lock = True
        elif b == 0x66:
            p.op66 = True
        elif b == 0xF2:
            p.f2 = True
        elif b == 0xF3:
            p.f3 = True
        else:
            break
        cur.u8()
    b = cur.peek()
    if 0x40 <= b <= 0x4F:
        p.rex = cur.u8()
    return p


def _reg(num: int, width: int, kind: str = "gpr") -> Reg:
    if kind == "xmm":
        return Reg(xmm_name(num))
    return Reg(gpr_name(num, width))


def _read_modrm(
    cur: _Cursor, p: _Prefixes, rm_width: int, rm_kind: str = "gpr"
) -> tuple[int, object]:
    """Returns (reg_field, rm_operand)."""
    modrm = cur.u8()
    mod = modrm >> 6
    reg_field = ((modrm >> 3) & 7) | (p.rex_r << 3)
    rm3 = modrm & 7
    if mod == 3:
        return reg_field, _reg(rm3 | (p.rex_b << 3), rm_width, rm_kind)
    base = None
    index = None
    scale = 1
    if rm3 == 4:  # SIB
        sib = cur.u8()
        scale = 1 << (sib >> 6)
        index3 = (sib >> 3) & 7
        base3 = sib & 7
        if not (index3 == 4 and p.rex_x == 0):
            index = gpr_name(index3 | (p.rex_x << 3), 64)
        if mod == 0 and base3 == 5:
            base = None  # absolute [disp32] (+index)
            disp = cur.i32()
            return reg_field, Mem(base, index, scale, disp, rm_width)
        base = gpr_name(base3 | (p.rex_b << 3), 64)
    elif mod == 0 and rm3 == 5:
        # RIP-relative in 64-bit mode.  The absolute target is
        # end-of-instruction + disp32, but the instruction size is not
        # known yet — store the raw displacement and flag the prefix
        # record so decode_one can patch it to an absolute address.
        p.rip = True
        disp = cur.i32()
        return reg_field, Mem(None, None, 1, disp, rm_width)
    else:
        base = gpr_name(rm3 | (p.rex_b << 3), 64)
    if mod == 0:
        disp = 0
    elif mod == 1:
        disp = cur.i8()
    else:
        disp = cur.i32()
    return reg_field, Mem(base, index, scale, disp, rm_width)


def _gpr_width(p: _Prefixes) -> int:
    return 64 if p.rex_w else 32


def _imm(v: int) -> Imm:
    return Imm(v, 8 if -128 <= v <= 127 else 32)


def decode_one(data: bytes, offset: int, address: int = 0) -> Instr:
    """Decode the instruction starting at ``data[offset]``.

    ``address`` is the runtime address of the instruction, used to
    materialize absolute branch/call targets.
    """
    cur = _Cursor(data, offset)
    p = _read_prefixes(cur)
    op = cur.u8()
    instr = _decode_opcode(cur, p, op, address, offset)
    instr.address = address
    instr.size = cur.pos - offset
    instr.lock = p.lock
    if p.rip:
        instr.operands = [
            Mem(None, None, 1, o.disp + address + instr.size, o.width)
            if isinstance(o, Mem) and o.base is None and o.index is None
            else o
            for o in instr.operands
        ]
    return instr


def _decode_opcode(
    cur: _Cursor, p: _Prefixes, op: int, address: int, start: int
) -> Instr:
    w = _gpr_width(p)
    if op == 0x0F:
        return _decode_0f(cur, p, address, start)
    if 0x50 <= op <= 0x57:
        return Instr("push", [_reg((op - 0x50) | (p.rex_b << 3), 64)])
    if 0x58 <= op <= 0x5F:
        return Instr("pop", [_reg((op - 0x58) | (p.rex_b << 3), 64)])
    if op in _ALU_BY_OPCODE:
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr(_ALU_BY_OPCODE[op], [rm, _reg(reg_field, w)])
    if (op - 2) in _ALU_BY_OPCODE:  # ALU reg <- r/m (RM direction)
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr(_ALU_BY_OPCODE[op - 2], [_reg(reg_field, w), rm])
    if (op - 4) in _ALU_BY_OPCODE:  # ALU rAX, imm32
        return Instr(_ALU_BY_OPCODE[op - 4], [_reg(0, w), _imm(cur.i32())])
    if (op - 3) in _ALU_BY_OPCODE:  # ALU al, imm8
        return Instr(_ALU_BY_OPCODE[op - 3], [_reg(0, 8), Imm(cur.i8(), 8)])
    if (op + 1) in _ALU_BY_OPCODE:  # ALU r/m8 <- r8 (MR direction)
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr(_ALU_BY_OPCODE[op + 1], [rm, _reg(reg_field, 8)])
    if (op - 1) in _ALU_BY_OPCODE:  # ALU r8 <- r/m8 (RM direction)
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr(_ALU_BY_OPCODE[op - 1], [_reg(reg_field, 8), rm])
    if op == 0x80:  # ALU r/m8, imm8
        reg_field, rm = _read_modrm(cur, p, 8)
        ext = reg_field & 7
        if ext not in _ALU_BY_EXT:
            raise DecodeError(f"bad ALU8 /ext {ext}")
        return Instr(_ALU_BY_EXT[ext], [rm, Imm(cur.i8(), 8)])
    if op in (0x81, 0x83):
        reg_field, rm = _read_modrm(cur, p, w)
        ext = reg_field & 7
        if ext not in _ALU_BY_EXT:
            raise DecodeError(f"bad ALU /ext {ext}")
        v = cur.i8() if op == 0x83 else cur.i32()
        return Instr(_ALU_BY_EXT[ext], [rm, _imm(v)])
    if op == 0x84:
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr("test", [rm, _reg(reg_field, 8)])
    if op == 0x85:
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr("test", [rm, _reg(reg_field, w)])
    if 0x70 <= op <= 0x7F:  # Jcc rel8
        rel = cur.i8()
        end = address + (cur.pos - start)
        return Instr(f"j{CONDITION_CODES[op - 0x70]}", [Imm(end + rel, 64)])
    if op == 0xEB:  # jmp rel8
        rel = cur.i8()
        end = address + (cur.pos - start)
        return Instr("jmp", [Imm(end + rel, 64)])
    if op in (0x69, 0x6B):  # imul reg, r/m, imm
        reg_field, rm = _read_modrm(cur, p, w)
        v = cur.i8() if op == 0x6B else cur.i32()
        return Instr("imul", [_reg(reg_field, w), rm, _imm(v)])
    if op == 0x87:
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr("xchg", [rm, _reg(reg_field, w)])
    if op == 0x63:
        reg_field, rm = _read_modrm(cur, p, 32)
        return Instr("movsxd", [_reg(reg_field, 64), rm])
    if op == 0x88:
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr("mov", [rm, _reg(reg_field, 8)])
    if op == 0x89:
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr("mov", [rm, _reg(reg_field, w)])
    if op == 0x8A:
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr("mov", [_reg(reg_field, 8), rm])
    if op == 0x8B:
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr("mov", [_reg(reg_field, w), rm])
    if op == 0x8D:
        reg_field, rm = _read_modrm(cur, p, 64)
        return Instr("lea", [_reg(reg_field, 64), rm])
    if 0xB8 <= op <= 0xBF and p.rex_w:
        num = (op - 0xB8) | (p.rex_b << 3)
        return Instr("movabs", [_reg(num, 64), Imm(cur.u64(), 64)])
    if 0xB8 <= op <= 0xBF:  # mov r32, imm32 (zero-extends)
        num = (op - 0xB8) | (p.rex_b << 3)
        return Instr("mov", [_reg(num, 32), Imm(cur.u32(), 32)])
    if 0xB0 <= op <= 0xB7:  # mov r8, imm8
        num = (op - 0xB0) | (p.rex_b << 3)
        return Instr("mov", [_reg(num, 8), Imm(cur.u8(), 8)])
    if op == 0xC1:
        reg_field, rm = _read_modrm(cur, p, w)
        ext = reg_field & 7
        if ext not in _SHIFT_BY_EXT:
            raise DecodeError(f"bad shift /ext {ext}")
        return Instr(_SHIFT_BY_EXT[ext], [rm, Imm(cur.u8(), 8)])
    if op == 0xD3:
        reg_field, rm = _read_modrm(cur, p, w)
        ext = reg_field & 7
        if ext not in _SHIFT_BY_EXT:
            raise DecodeError(f"bad shift /ext {ext}")
        return Instr(_SHIFT_BY_EXT[ext], [rm, Reg("cl")])
    if op == 0xC3:
        return Instr("ret")
    if op == 0xC6:
        reg_field, rm = _read_modrm(cur, p, 8)
        if reg_field & 7:
            raise DecodeError("bad mov8 imm /ext")
        return Instr("mov", [rm, Imm(cur.u8(), 8)])
    if op == 0xC7:
        reg_field, rm = _read_modrm(cur, p, w)
        if reg_field & 7:
            raise DecodeError("bad mov imm /ext")
        return Instr("mov", [rm, _imm(cur.i32())])
    if op == 0xC9:
        return Instr("leave")
    if op == 0x90:
        return Instr("nop")
    if op == 0x98:
        if not p.rex_w:
            raise DecodeError("cwde not supported")
        return Instr("cdqe")
    if op == 0x99:
        return Instr("cqo" if p.rex_w else "cdq")
    if op == 0xD1:  # shift r/m by 1
        reg_field, rm = _read_modrm(cur, p, w)
        ext = reg_field & 7
        if ext not in _SHIFT_BY_EXT:
            raise DecodeError(f"bad shift /ext {ext}")
        return Instr(_SHIFT_BY_EXT[ext], [rm, Imm(1, 8)])
    if op == 0xF4:
        return Instr("hlt")
    if op == 0xE8:
        rel = cur.i32()
        end = address + (cur.pos - start)
        return Instr("call", [Imm(end + rel, 64)])
    if op == 0xE9:
        rel = cur.i32()
        end = address + (cur.pos - start)
        return Instr("jmp", [Imm(end + rel, 64)])
    if op == 0xF6:
        reg_field, rm = _read_modrm(cur, p, 8)
        if (reg_field & 7) == 0:
            return Instr("test", [rm, Imm(cur.u8(), 8)])
        raise DecodeError(f"bad F6 /ext {reg_field & 7}")
    if op == 0xF7:
        reg_field, rm = _read_modrm(cur, p, w)
        ext = reg_field & 7
        if ext == 0:
            return Instr("test", [rm, _imm(cur.i32())])
        table = {7: "idiv", 3: "neg", 2: "not"}
        if ext not in table:
            raise DecodeError(f"bad F7 /ext {ext}")
        return Instr(table[ext], [rm])
    if op == 0xFF:
        reg_field, rm = _read_modrm(cur, p, 64)
        ext = reg_field & 7
        if ext == 2:
            return Instr("call", [rm])
        if ext == 4:
            return Instr("jmp", [rm])
        if ext == 6:
            return Instr("push", [rm])
        raise DecodeError(f"bad FF /ext {ext}")
    raise DecodeError(f"unknown opcode {op:#x}")


def _decode_0f(cur: _Cursor, p: _Prefixes, address: int, start: int) -> Instr:
    op = cur.u8()
    if op == 0xAE:
        modrm = cur.u8()
        if modrm == 0xF0:
            return Instr("mfence")
        raise DecodeError(f"bad 0F AE modrm {modrm:#x}")
    if op == 0x0B:
        return Instr("ud2")
    if op == 0x05:
        return Instr("syscall")
    if op == 0x1E and p.f3:
        b = cur.u8()
        if b == 0xFA:
            return Instr("endbr64")
        raise DecodeError(f"bad F3 0F 1E {b:#x}")
    if op == 0x1F:  # multi-byte nop; operand is a hint, discard it
        _read_modrm(cur, p, _gpr_width(p))
        return Instr("nop")
    if 0x40 <= op <= 0x4F:  # cmovcc
        w = _gpr_width(p)
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr(f"cmov{CONDITION_CODES[op - 0x40]}",
                     [_reg(reg_field, w), rm])
    if op == 0xAF:
        w = _gpr_width(p)
        reg_field, rm = _read_modrm(cur, p, w)
        return Instr("imul", [_reg(reg_field, w), rm])
    if op == 0xB1:
        reg_field, rm = _read_modrm(cur, p, _gpr_width(p))
        return Instr("cmpxchg", [rm, _reg(reg_field, _gpr_width(p))])
    if op == 0xC1:
        reg_field, rm = _read_modrm(cur, p, _gpr_width(p))
        return Instr("xadd", [rm, _reg(reg_field, _gpr_width(p))])
    if op in (0xB6, 0xB7, 0xBE, 0xBF):
        width = 8 if op in (0xB6, 0xBE) else 16
        mn = "movzx" if op in (0xB6, 0xB7) else "movsx"
        reg_field, rm = _read_modrm(cur, p, width)
        return Instr(mn, [_reg(reg_field, 64 if p.rex_w else 32), rm])
    if 0x80 <= op <= 0x8F:
        rel = cur.i32()
        end = address + (cur.pos - start)
        return Instr(f"j{CONDITION_CODES[op - 0x80]}", [Imm(end + rel, 64)])
    if 0x90 <= op <= 0x9F:
        reg_field, rm = _read_modrm(cur, p, 8)
        return Instr(f"set{CONDITION_CODES[op - 0x90]}", [rm])
    if op in (0x10, 0x11):
        if p.f2 or p.f3:
            mn = "movsd" if p.f2 else "movss"
            width = 64 if p.f2 else 32
            reg_field, rm = _read_modrm(cur, p, width, rm_kind="xmm")
            xr = _reg(reg_field, 128, "xmm")
            return Instr(mn, [xr, rm] if op == 0x10 else [rm, xr])
        raise DecodeError("unprefixed 0F 10/11 not supported")
    if op in (0x28, 0x29):
        reg_field, rm = _read_modrm(cur, p, 128, rm_kind="xmm")
        xr = _reg(reg_field, 128, "xmm")
        return Instr("movaps", [xr, rm] if op == 0x28 else [rm, xr])
    if op == 0x2A and p.f2:
        reg_field, rm = _read_modrm(cur, p, 64)
        return Instr("cvtsi2sd", [_reg(reg_field, 128, "xmm"), rm])
    if op == 0x2C and p.f2:
        reg_field, rm = _read_modrm(cur, p, 128, rm_kind="xmm")
        return Instr("cvttsd2si", [_reg(reg_field, 64), rm])
    if op == 0x2E and p.op66:
        reg_field, rm = _read_modrm(cur, p, 64, rm_kind="xmm")
        return Instr("ucomisd", [_reg(reg_field, 128, "xmm"), rm])
    if op == 0xEF and p.op66:
        reg_field, rm = _read_modrm(cur, p, 128, rm_kind="xmm")
        return Instr("pxor", [_reg(reg_field, 128, "xmm"), rm])
    if op == 0x6E and p.op66:
        reg_field, rm = _read_modrm(cur, p, 64)
        return Instr("movq", [_reg(reg_field, 128, "xmm"), rm])
    if op == 0x7E and p.op66:
        reg_field, rm = _read_modrm(cur, p, 64)
        return Instr("movq", [rm, _reg(reg_field, 128, "xmm")])
    if op in _SSE_PACKED and p.op66:
        reg_field, rm = _read_modrm(cur, p, 128, rm_kind="xmm")
        return Instr(_SSE_PACKED[op], [_reg(reg_field, 128, "xmm"), rm])
    if op in _SSE_SCALAR and (p.f2 or p.f3):
        suffix = "sd" if p.f2 else "ss"
        width = 64 if p.f2 else 32
        reg_field, rm = _read_modrm(cur, p, width, rm_kind="xmm")
        return Instr(
            _SSE_SCALAR[op] + suffix, [_reg(reg_field, 128, "xmm"), rm]
        )
    if op == 0x51 and p.f2:
        reg_field, rm = _read_modrm(cur, p, 64, rm_kind="xmm")
        return Instr("sqrtsd", [_reg(reg_field, 128, "xmm"), rm])
    raise DecodeError(f"unknown 0F opcode {op:#x}")
