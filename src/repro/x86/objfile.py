"""A minimal linked-image container for x86-64 programs ("ELF-lite").

Holds the final text bytes at a fixed image base, a symbol table for
functions, a data segment for globals, and stub addresses for external
runtime functions (``malloc``, ``spawn`` ...).  This is what the binary
lifter consumes — raw machine code plus the minimal symbol information
mctoll also relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
STUB_BASE = 0x3F0000  # external-function stubs live below text
STUB_SIZE = 16


@dataclass
class FuncSymbol:
    name: str
    address: int
    size: int


@dataclass
class DataSymbol:
    name: str
    address: int
    size: int
    init: bytes  # zero-padded to size at load


@dataclass
class X86Object:
    """A fully linked x86-64 image."""

    text: bytes = b""
    text_base: int = TEXT_BASE
    functions: dict[str, FuncSymbol] = field(default_factory=dict)
    data_symbols: dict[str, DataSymbol] = field(default_factory=dict)
    externals: dict[str, int] = field(default_factory=dict)  # name -> stub addr
    entry: str = "main"

    def function_at(self, address: int) -> FuncSymbol | None:
        for sym in self.functions.values():
            if sym.address <= address < sym.address + sym.size:
                return sym
        return None

    def external_at(self, address: int) -> str | None:
        for name, addr in self.externals.items():
            if addr == address:
                return name
        return None

    def symbol_for_data_address(self, address: int) -> DataSymbol | None:
        for sym in self.data_symbols.values():
            if sym.address <= address < sym.address + max(1, sym.size):
                return sym
        return None

    def function_body(self, name: str) -> bytes:
        sym = self.functions[name]
        start = sym.address - self.text_base
        return self.text[start : start + sym.size]

    def data_end(self) -> int:
        end = DATA_BASE
        for sym in self.data_symbols.values():
            end = max(end, sym.address + sym.size)
        return end
