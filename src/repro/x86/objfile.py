"""A minimal linked-image container for x86-64 programs ("ELF-lite").

Holds the final text bytes at a fixed image base, a symbol table for
functions, a data segment for globals, and stub addresses for external
runtime functions (``malloc``, ``spawn`` ...).  This is what the binary
lifter consumes — raw machine code plus the minimal symbol information
mctoll also relies on.

Address lookups (`function_at`, `external_at`, `symbol_for_data_address`)
run once per decoded instruction operand, so they are backed by sorted
interval tables built lazily and invalidated whenever the symbol dicts
change size — real ELF binaries carry thousands of symbols and the old
linear scans dominated lift time.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

TEXT_BASE = 0x400000
DATA_BASE = 0x600000
STUB_BASE = 0x3F0000  # external-function stubs live below text
STUB_SIZE = 16


class EntryError(Exception):
    """The requested entry function does not exist in the image.

    Carries enough context for triage to print a useful diagnostic
    (what was asked for, what the image actually defines).
    """

    def __init__(self, entry: str, candidates: list[str]):
        self.entry = entry
        self.candidates = candidates
        preview = ", ".join(candidates[:8])
        if len(candidates) > 8:
            preview += f", ... ({len(candidates)} total)"
        hint = f"; defined functions: {preview}" if candidates else \
            "; the image defines no functions at all"
        super().__init__(f"entry function {entry!r} not found in image{hint}")


@dataclass
class FuncSymbol:
    name: str
    address: int
    size: int


@dataclass
class DataSymbol:
    name: str
    address: int
    size: int
    init: bytes  # zero-padded to size at load


@dataclass
class X86Object:
    """A fully linked x86-64 image."""

    text: bytes = b""
    text_base: int = TEXT_BASE
    functions: dict[str, FuncSymbol] = field(default_factory=dict)
    data_symbols: dict[str, DataSymbol] = field(default_factory=dict)
    externals: dict[str, int] = field(default_factory=dict)  # name -> stub addr
    entry: str = "main"
    # Per-external (argc, n_float_args, return kind) overrides discovered by
    # the loader's catalog; consulted before the built-in EXTERNAL_SIGS.
    extern_sigs: dict[str, tuple[int, int, str]] = field(default_factory=dict)
    # "elf-lite" for minicc output, "elf64" for real binaries via repro.loader.
    source_format: str = "elf-lite"

    def __post_init__(self) -> None:
        self._func_index: tuple[list[int], list[FuncSymbol]] | None = None
        self._data_index: tuple[list[int], list[DataSymbol]] | None = None
        self._ext_index: dict[int, str] | None = None

    # ---- lazily built sorted-interval indexes ---------------------------
    def _functions_index(self) -> tuple[list[int], list[FuncSymbol]]:
        cached = self._func_index
        if cached is None or len(cached[1]) != len(self.functions):
            syms = sorted(self.functions.values(), key=lambda s: s.address)
            cached = ([s.address for s in syms], syms)
            self._func_index = cached
        return cached

    def _data_symbols_index(self) -> tuple[list[int], list[DataSymbol]]:
        cached = self._data_index
        if cached is None or len(cached[1]) != len(self.data_symbols):
            syms = sorted(self.data_symbols.values(), key=lambda s: s.address)
            cached = ([s.address for s in syms], syms)
            self._data_index = cached
        return cached

    def _externals_index(self) -> dict[int, str]:
        cached = self._ext_index
        if cached is None or len(cached) != len(self.externals):
            cached = {addr: name for name, addr in self.externals.items()}
            self._ext_index = cached
        return cached

    # ---- lookups ---------------------------------------------------------
    def function_at(self, address: int) -> FuncSymbol | None:
        starts, syms = self._functions_index()
        i = bisect_right(starts, address) - 1
        if i >= 0:
            sym = syms[i]
            if sym.address <= address < sym.address + sym.size:
                return sym
        return None

    def external_at(self, address: int) -> str | None:
        return self._externals_index().get(address)

    def symbol_for_data_address(self, address: int) -> DataSymbol | None:
        starts, syms = self._data_symbols_index()
        i = bisect_right(starts, address) - 1
        if i >= 0:
            sym = syms[i]
            if sym.address <= address < sym.address + max(1, sym.size):
                return sym
        return None

    def require_entry(self) -> FuncSymbol:
        """The entry function's symbol, or a clear :class:`EntryError`
        naming the candidates instead of a ``KeyError`` deep in the
        lifter or emulator."""
        sym = self.functions.get(self.entry)
        if sym is None:
            raise EntryError(self.entry, sorted(self.functions))
        return sym

    def function_body(self, name: str) -> bytes:
        sym = self.functions[name]
        start = sym.address - self.text_base
        return self.text[start : start + sym.size]

    def data_end(self) -> int:
        end = DATA_BASE
        for sym in self.data_symbols.values():
            end = max(end, sym.address + sym.size)
        return end
