import sys

from .cli import main

try:
    raise SystemExit(main())
except BrokenPipeError:  # e.g. piping into `head`
    sys.exit(0)
