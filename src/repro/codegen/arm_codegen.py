"""LIR → AArch64 code generation (the paper's modified LLVM backend, §8).

Implements the IR→Arm mapping of Figure 8b:

* ``ldna → ld``, ``stna → st`` (no extra ordering),
* ``Frm → DMB ISHLD``, ``Fww → DMB ISHST``, ``Fsc → DMB ISH``,
* ``RMWsc → DMB ISH ; ldxr/stxr loop ; DMB ISH``,
* seq_cst loads/stores → ``ldar``/``stlr``.

The backend is a classic three-step code generator: SSA liveness analysis,
Poletto-style linear-scan register allocation over the callee-saved
register files (``x19``–``x28``, ``d8``–``d15``) with frame spill slots,
then per-instruction selection.  Phi nodes are lowered through dedicated
staging slots written at predecessor exits and read at block entry, which
handles parallel-copy cycles without critical-edge surgery.
"""

from __future__ import annotations

import struct
from typing import Optional, Union

from .. import telemetry
from ..profiler.workcounters import work
from ..arm.isa import AImm, AInstr, ALabel, AMem, DReg, XReg
from ..arm.program import ArmFunction, ArmProgram
from ..lir import (
    Alloca,
    Argument,
    AtomicRMW,
    BasicBlock,
    BinOp,
    Br,
    Call,
    Cast,
    CmpXchg,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ExternalFunction,
    FCmp,
    Fence,
    FloatType,
    Function,
    GEP,
    GlobalVariable,
    ICmp,
    Instruction,
    IntType,
    Load,
    Module,
    Phi,
    PointerType,
    Ret,
    Select,
    Store,
    Type,
    UndefValue,
    Unreachable,
    Value,
    format_instruction,
)
from ..provenance.origin import synthetic_origin

INT_POOL = [f"x{i}" for i in range(19, 29)]
FP_POOL = [f"d{i}" for i in range(8, 16)]

ICMP_COND = {"eq": "eq", "ne": "ne", "slt": "lt", "sle": "le", "sgt": "gt",
             "sge": "ge", "ult": "lo", "ule": "ls", "ugt": "hi", "uge": "hs"}
FCMP_COND = {"oeq": "eq", "one": "ne", "olt": "mi", "ole": "ls", "ogt": "gt",
             "oge": "ge", "uno": "vs", "ord": "vc"}
FENCE_MNEMONIC = {"sc": "dmb ish", "rm": "dmb ishld", "ww": "dmb ishst"}


class BackendError(Exception):
    pass


def _is_fp(type_: Type) -> bool:
    return isinstance(type_, FloatType)


def _pow2_shift(n: int) -> Optional[int]:
    if n > 0 and (n & (n - 1)) == 0:
        return n.bit_length() - 1
    return None


class LIRToArm:
    def __init__(self, module: Module, entry: str = "main") -> None:
        self.module = module
        self.entry = entry

    def compile(self) -> ArmProgram:
        program = ArmProgram(entry=self.entry)
        for name in self.module.externals:
            program.declare_external(name)
        for g in self.module.globals.values():
            init = b""
            if isinstance(g.initializer, bytes):
                init = g.initializer
            elif isinstance(g.initializer, ConstantInt):
                size = g.value_type.size_bytes()
                init = (g.initializer.value).to_bytes(size, "little")
            elif isinstance(g.initializer, ConstantFloat):
                init = struct.pack("<d", g.initializer.value)
            program.add_global(g.name, max(1, g.size_bytes()), init)
        for func in self.module.functions.values():
            if not func.is_declaration:
                program.add_function(_FuncCodegen(func).run())
        return program


class _FuncCodegen:
    def __init__(self, func: Function) -> None:
        self.func = func
        self.out = ArmFunction(func.name)
        func.assign_names()
        self.blocks = func.blocks
        # value id -> ("reg", name) | ("slot", off) | special handling
        self.loc: dict[int, tuple[str, Union[str, int]]] = {}
        self.alloca_offset: dict[int, int] = {}
        self.phi_slot: dict[int, int] = {}
        self.frame = 0
        self.used_callee_saved: list[str] = []
        self.label_counter = 0
        self.epilogue = f".Lret_{func.name}"
        # Provenance state: every emitted AInstr is tagged with the current
        # LIR instruction's x86 origins (the LIR→Arm source map).
        self._origins: tuple = ()
        self._lir: str = ""
        self._placement: tuple = ()

    # ------------------------------------------------------------------
    def run(self) -> ArmFunction:
        self._layout_allocas()
        intervals = self._intervals()
        self._allocate(intervals)
        self._layout_frame()
        self._set_synthetic("prologue")
        self._emit_prologue()
        for bb in self.blocks:
            self.out.label(f".L{bb.name}")
            for phi in bb.phis():
                self._set_current(phi)
                self._load_phi(phi)
            for inst in bb.instructions:
                if not isinstance(inst, Phi):
                    self._set_current(inst)
                    self._emit(inst)
        self.out.label(self.epilogue)
        self._set_synthetic("epilogue")
        self._emit_epilogue()
        emitted = len(self.out.instructions())
        work("codegen.instructions", emitted, function=self.func.name)
        work("codegen.intervals", len(intervals), function=self.func.name)
        telemetry.count("codegen.instructions", emitted,
                        function=self.func.name)
        telemetry.count("codegen.intervals", len(intervals),
                        function=self.func.name)
        if self._spill_count:
            telemetry.count("codegen.spills", self._spill_count,
                            function=self.func.name)
            if telemetry.remarks_enabled():
                telemetry.remark(
                    "regalloc", "spill",
                    f"linear scan spilled {self._spill_count} of "
                    f"{len(intervals)} live intervals to frame slots; "
                    f"{emitted} Arm instructions emitted",
                    function=self.func.name,
                    spills=self._spill_count, intervals=len(intervals))
        return self.out

    # ---- liveness + intervals ------------------------------------------
    def _intervals(self) -> list[tuple[Value, int, int]]:
        index: dict[int, int] = {}
        block_range: dict[int, tuple[int, int]] = {}
        pos = 0
        for bb in self.blocks:
            start = pos
            for inst in bb.instructions:
                index[id(inst)] = pos
                pos += 1
            block_range[id(bb)] = (start, pos - 1)

        def needs_interval(v: Value) -> bool:
            if isinstance(v, (Constant, BasicBlock, UndefValue)):
                return False
            if isinstance(v, Alloca):
                return False
            if isinstance(v, Instruction) and v.type.is_void:
                return False
            return isinstance(v, (Instruction, Argument))

        # use/def per block, with phi incomings charged to predecessors.
        use: dict[int, set[int]] = {id(b): set() for b in self.blocks}
        define: dict[int, set[int]] = {id(b): set() for b in self.blocks}
        values: dict[int, Value] = {}
        phi_uses: dict[int, set[int]] = {id(b): set() for b in self.blocks}
        for bb in self.blocks:
            for inst in bb.instructions:
                if needs_interval(inst):
                    define[id(bb)].add(id(inst))
                    values[id(inst)] = inst
                if isinstance(inst, Phi):
                    for v, pred in inst.incoming():
                        if needs_interval(v):
                            phi_uses[id(pred)].add(id(v))
                            values[id(v)] = v
                    continue
                for op in inst.operands:
                    if needs_interval(op) and id(op) not in define[id(bb)]:
                        use[id(bb)].add(id(op))
                        values[id(op)] = op

        live_in: dict[int, set[int]] = {id(b): set() for b in self.blocks}
        changed = True
        while changed:
            changed = False
            for bb in reversed(self.blocks):
                out: set[int] = set(phi_uses[id(bb)])
                for s in bb.successors():
                    out |= live_in[id(s)]
                new_in = use[id(bb)] | (out - define[id(bb)])
                if new_in != live_in[id(bb)]:
                    live_in[id(bb)] = new_in
                    changed = True

        start: dict[int, int] = {}
        end: dict[int, int] = {}
        for arg in self.func.arguments:
            values[id(arg)] = arg
            start[id(arg)] = 0
            end[id(arg)] = 0
        # Pass 1: record every definition point.  Doing this before looking
        # at uses matters: linear block order need not follow control flow,
        # so a value can be *used* in a block that the layout places before
        # its defining block (e.g. a loop-exit successor emitted early).
        for bb in self.blocks:
            for inst in bb.instructions:
                if needs_interval(inst):
                    start.setdefault(id(inst), index[id(inst)])
                    end.setdefault(id(inst), index[id(inst)])
        # Pass 2: widen each interval over explicit uses and over every
        # block where the value is live, in both directions.
        for bb in self.blocks:
            bstart, bend = block_range[id(bb)]
            for inst in bb.instructions:
                if isinstance(inst, Phi):
                    continue
                for op in inst.operands:
                    if needs_interval(op) and id(op) in start:
                        end[id(op)] = max(end[id(op)], index[id(inst)])
                        start[id(op)] = min(start[id(op)], index[id(inst)])
            out: set[int] = set(phi_uses[id(bb)])
            for s in bb.successors():
                out |= live_in[id(s)]
            for vid in out | live_in[id(bb)]:
                if vid in start:
                    end[vid] = max(end[vid], bend)
                    start[vid] = min(start[vid], bstart)
            for vid in phi_uses[id(bb)]:
                if vid in start:
                    end[vid] = max(end[vid], bend)

        out_list = [
            (values[vid], start[vid], end[vid]) for vid in start if vid in values
        ]
        out_list.sort(key=lambda t: (t[1], t[2]))
        return out_list

    # ---- linear scan allocation ---------------------------------------------
    def _allocate(self, intervals: list[tuple[Value, int, int]]) -> None:
        free = {"int": list(INT_POOL), "fp": list(FP_POOL)}
        # (end, seq, pool, v): seq is the interval's position in the
        # (deterministically ordered) interval list, so every sort and
        # victim choice below is reproducible.  Tiebreaking on id(value)
        # would let memory addresses pick the spill victim — the same IR
        # could allocate differently across runs.
        active: list[tuple[int, int, str, Value]] = []
        self._spill_count = 0

        def pool_of(v: Value) -> str:
            return "fp" if _is_fp(v.type) else "int"

        for seq, (value, s, e) in enumerate(intervals):
            active.sort(key=lambda t: (t[0], t[1]))
            while active and active[0][0] < s:
                _, _, pool, old = active.pop(0)
                kind, reg = self.loc[id(old)]
                if kind == "reg":
                    free[pool].append(reg)  # type: ignore[arg-type]
            pool = pool_of(value)
            if free[pool]:
                reg = free[pool].pop(0)
                self.loc[id(value)] = ("reg", reg)
                active.append((e, seq, pool, value))
            else:
                # Spill the active interval with the furthest end if it
                # outlives the current one.
                candidates = [a for a in active if a[2] == pool]
                candidates.sort(key=lambda t: (t[0], t[1]))
                if candidates and candidates[-1][0] > e:
                    victim = candidates[-1]
                    active.remove(victim)
                    old = victim[3]
                    kind, reg = self.loc[id(old)]
                    self.loc[id(old)] = ("slot", self._new_spill())
                    self.loc[id(value)] = ("reg", reg)
                    active.append((e, seq, pool, value))
                else:
                    self.loc[id(value)] = ("slot", self._new_spill())

        self.used_callee_saved = sorted(
            {
                loc[1]
                for loc in self.loc.values()
                if loc[0] == "reg"
            },
            key=lambda r: (r[0], int(r[1:])),  # type: ignore[index]
        )

    def _new_spill(self) -> int:
        self._spill_count += 1
        return self._spill_count - 1

    # ---- frame layout ----------------------------------------------------------
    def _layout_allocas(self) -> None:
        offset = 0
        for bb in self.blocks:
            for inst in bb.instructions:
                if isinstance(inst, Alloca):
                    size = max(1, inst.size_bytes())
                    offset = (offset + 7) & ~7
                    if size >= 16:
                        offset = (offset + 15) & ~15
                    self.alloca_offset[id(inst)] = offset
                    offset += size
        self._alloca_area = (offset + 7) & ~7

    def _layout_frame(self) -> None:
        offset = self._alloca_area
        self._spill_base = offset
        offset += self._spill_count * 8
        self._phi_base = offset
        phis = [
            inst
            for bb in self.blocks
            for inst in bb.instructions
            if isinstance(inst, Phi)
        ]
        for i, phi in enumerate(phis):
            self.phi_slot[id(phi)] = offset
            offset += 8
        self._save_area = offset
        offset += 16 + 8 * len(self.used_callee_saved)
        self.frame = (offset + 15) & ~15

    def _slot_offset(self, slot_index: int) -> int:
        return self._spill_base + slot_index * 8

    # ---- provenance -----------------------------------------------------------
    def _set_current(self, inst: Instruction) -> None:
        """Tag subsequently emitted Arm instructions with ``inst``'s lineage."""
        self._origins = inst.origins
        try:
            self._lir = format_instruction(inst)
        except Exception:  # pragma: no cover - printing is best-effort
            self._lir = inst.opcode
        self._placement = tuple(getattr(inst, "placement", ()))

    def _set_synthetic(self, kind: str) -> None:
        """Anchor prologue/epilogue code at the function's x86 entry."""
        addr = getattr(self.func, "x86_addr", None)
        if addr is None:
            self._origins = ()
        else:
            self._origins = (synthetic_origin(kind, addr, self.func.name),)
        self._lir = f"<{kind}>"
        self._placement = ()

    # ---- emission helpers -----------------------------------------------------
    def emit(self, mnemonic: str, *operands) -> None:
        instr = AInstr(mnemonic, list(operands))
        instr.origins = self._origins
        instr.lir = self._lir
        if self._placement:
            instr.placement = self._placement
        self.out.emit(instr)

    def _new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".L{hint}_{self.func.name}_{self.label_counter}"

    def _emit_prologue(self) -> None:
        self.emit("sub", XReg("sp"), XReg("sp"), AImm(self.frame))
        self.emit("str", XReg("x29"), AMem(base="sp", offset_imm=self.frame - 8))
        self.emit("str", XReg("x30"), AMem(base="sp", offset_imm=self.frame - 16))
        for i, reg in enumerate(self.used_callee_saved):
            mem = AMem(base="sp", offset_imm=self._save_area + 8 * i, width=64)
            if reg.startswith("d"):
                self.emit("fstr", DReg(reg), mem)
            else:
                self.emit("str", XReg(reg), mem)
        self.emit("mov", XReg("x29"), XReg("sp"))
        # Move incoming arguments to their assigned locations.
        int_idx = 0
        fp_idx = 0
        for arg in self.func.arguments:
            if _is_fp(arg.type):
                src = f"d{fp_idx}"
                fp_idx += 1
                self._store_result(arg, src, fp=True)
            else:
                src = f"x{int_idx}"
                int_idx += 1
                self._store_result(arg, src, fp=False)

    def _emit_epilogue(self) -> None:
        for i, reg in enumerate(self.used_callee_saved):
            mem = AMem(base="sp", offset_imm=self._save_area + 8 * i, width=64)
            if reg.startswith("d"):
                self.emit("fldr", DReg(reg), mem)
            else:
                self.emit("ldr", XReg(reg), mem)
        self.emit("ldr", XReg("x29"), AMem(base="sp", offset_imm=self.frame - 8))
        self.emit("ldr", XReg("x30"), AMem(base="sp", offset_imm=self.frame - 16))
        self.emit("add", XReg("sp"), XReg("sp"), AImm(self.frame))
        self.emit("ret")

    # ---- value access ------------------------------------------------------------
    def _reg_of(self, value: Value, temp: str) -> str:
        """Return a register holding ``value``, materializing into ``temp``
        when needed."""
        if isinstance(value, ConstantInt):
            self.emit("mov", XReg(temp), AImm(value.value))
            return temp
        if isinstance(value, ConstantFloat):
            bits = int.from_bytes(struct.pack("<d", value.value), "little")
            self.emit("mov", XReg("x15"), AImm(bits))
            self.emit("fmov", DReg(temp), XReg("x15"))
            return temp
        if isinstance(value, ConstantPointerNull):
            self.emit("mov", XReg(temp), AImm(0))
            return temp
        if isinstance(value, UndefValue):
            if _is_fp(value.type):
                self.emit("mov", XReg("x15"), AImm(0))
                self.emit("fmov", DReg(temp), XReg("x15"))
            else:
                self.emit("mov", XReg(temp), AImm(0))
            return temp
        if isinstance(value, (GlobalVariable, Function, ExternalFunction)):
            self.emit("adr", XReg(temp), ALabel(value.name))
            return temp
        if isinstance(value, Alloca):
            self.emit(
                "add", XReg(temp), XReg("x29"),
                AImm(self.alloca_offset[id(value)]),
            )
            return temp
        loc = self.loc.get(id(value))
        if loc is None:
            raise BackendError(
                f"{self.func.name}: no location for %{value.name}"
            )
        kind, where = loc
        if kind == "reg":
            return where  # type: ignore[return-value]
        off = self._slot_offset(where)  # type: ignore[arg-type]
        if _is_fp(value.type):
            self.emit("fldr", DReg(temp), AMem(base="x29", offset_imm=off, width=64))
        else:
            self.emit("ldr", XReg(temp), AMem(base="x29", offset_imm=off))
        return temp

    def _dest_reg(self, value: Value, temp: str) -> str:
        loc = self.loc.get(id(value))
        if loc is not None and loc[0] == "reg":
            return loc[1]  # type: ignore[return-value]
        return temp

    def _store_result(self, value: Value, reg: str, fp: bool) -> None:
        loc = self.loc.get(id(value))
        if loc is None:
            return  # result never used
        kind, where = loc
        if kind == "reg":
            if where != reg:
                if fp:
                    self.emit("fmov", DReg(where), DReg(reg))
                else:
                    self.emit("mov", XReg(where), XReg(reg))
            return
        off = self._slot_offset(where)  # type: ignore[arg-type]
        if fp:
            self.emit("fstr", DReg(reg), AMem(base="x29", offset_imm=off, width=64))
        else:
            self.emit("str", XReg(reg), AMem(base="x29", offset_imm=off))

    def _finish(self, inst: Value, reg: str, fp: bool = False) -> None:
        self._store_result(inst, reg, fp)

    # ---- phi lowering ------------------------------------------------------------
    def _load_phi(self, phi: Phi) -> None:
        off = self.phi_slot[id(phi)]
        fp = _is_fp(phi.type)
        dst = self._dest_reg(phi, "d16" if fp else "x9")
        if fp:
            self.emit("fldr", DReg(dst), AMem(base="x29", offset_imm=off, width=64))
        else:
            self.emit("ldr", XReg(dst), AMem(base="x29", offset_imm=off))
        self._store_result(phi, dst, fp)

    def _emit_phi_copies(self, bb: BasicBlock) -> None:
        for succ in bb.successors():
            for phi in succ.phis():
                value = phi.incoming_for(bb)
                if value is None:
                    raise BackendError(
                        f"{self.func.name}: phi without incoming for "
                        f"{bb.name}"
                    )
                fp = _is_fp(phi.type)
                reg = self._reg_of(value, "d16" if fp else "x9")
                off = self.phi_slot[id(phi)]
                mem = AMem(base="x29", offset_imm=off, width=64)
                if fp:
                    self.emit("fstr", DReg(reg), mem)
                else:
                    self.emit("str", XReg(reg), mem)

    # ---- instruction selection ------------------------------------------------------
    def _emit(self, inst: Instruction) -> None:
        if isinstance(inst, Alloca):
            return
        if isinstance(inst, Load):
            self._emit_load(inst)
        elif isinstance(inst, Store):
            self._emit_store(inst)
        elif isinstance(inst, Fence):
            self.emit(FENCE_MNEMONIC[inst.kind])
        elif isinstance(inst, AtomicRMW):
            self._emit_rmw(inst)
        elif isinstance(inst, CmpXchg):
            self._emit_cmpxchg(inst)
        elif isinstance(inst, BinOp):
            self._emit_binop(inst)
        elif isinstance(inst, ICmp):
            self._emit_icmp(inst)
        elif isinstance(inst, FCmp):
            self._emit_fcmp(inst)
        elif isinstance(inst, Cast):
            self._emit_cast(inst)
        elif isinstance(inst, GEP):
            self._emit_gep(inst)
        elif isinstance(inst, Select):
            self._emit_select(inst)
        elif isinstance(inst, Call):
            self._emit_call(inst)
        elif isinstance(inst, Br):
            self._emit_phi_copies(inst.parent)
            if inst.is_conditional:
                c = self._reg_of(inst.cond, "x9")
                self.emit("cbnz", XReg(c), ALabel(f".L{inst.targets[0].name}"))
                self.emit("b", ALabel(f".L{inst.targets[1].name}"))
            else:
                self.emit("b", ALabel(f".L{inst.targets[0].name}"))
        elif isinstance(inst, Ret):
            if inst.value is not None:
                if _is_fp(inst.value.type):
                    reg = self._reg_of(inst.value, "d16")
                    if reg != "d0":
                        self.emit("fmov", DReg("d0"), DReg(reg))
                else:
                    reg = self._reg_of(inst.value, "x9")
                    if reg != "x0":
                        self.emit("mov", XReg("x0"), XReg(reg))
            self.emit("b", ALabel(self.epilogue))
        elif isinstance(inst, Unreachable):
            self.emit("udf")
        else:
            raise BackendError(f"cannot select {inst.opcode}")

    def _emit_load(self, inst: Load) -> None:
        p = self._reg_of(inst.pointer, "x9")
        ty = inst.type
        if _is_fp(ty):
            dst = self._dest_reg(inst, "d16")
            self.emit("fldr", DReg(dst), AMem(base=p, width=ty.size_bytes() * 8))
            self._finish(inst, dst, fp=True)
            return
        dst = self._dest_reg(inst, "x10")
        if inst.ordering == "sc":
            self.emit("ldar", XReg(dst), AMem(base=p))
        elif isinstance(ty, IntType) and ty.bits > 32:
            self.emit("ldr", XReg(dst), AMem(base=p))
        elif isinstance(ty, PointerType):
            self.emit("ldr", XReg(dst), AMem(base=p))
        elif isinstance(ty, IntType) and ty.bits > 8:
            self.emit("ldr32", XReg(dst), AMem(base=p, width=32))
        else:
            self.emit("ldrb", XReg(dst), AMem(base=p, width=8))
        self._finish(inst, dst)

    def _emit_store(self, inst: Store) -> None:
        ty = inst.value.type
        p = self._reg_of(inst.pointer, "x9")
        if _is_fp(ty):
            v = self._reg_of(inst.value, "d16")
            self.emit("fstr", DReg(v), AMem(base=p, width=ty.size_bytes() * 8))
            return
        v = self._reg_of(inst.value, "x10")
        if inst.ordering == "sc":
            self.emit("stlr", XReg(v), AMem(base=p))
        elif isinstance(ty, IntType) and ty.bits <= 8:
            self.emit("strb", XReg(v), AMem(base=p, width=8))
        elif isinstance(ty, IntType) and ty.bits <= 32:
            self.emit("str32", XReg(v), AMem(base=p, width=32))
        else:
            self.emit("str", XReg(v), AMem(base=p))

    def _emit_rmw(self, inst: AtomicRMW) -> None:
        p = self._reg_of(inst.pointer, "x9")
        v = self._reg_of(inst.value, "x10")
        loop = self._new_label("rmw")
        self.emit("dmb ish")
        self.out.label(loop)
        self.emit("ldxr", XReg("x11"), AMem(base=p))
        if inst.op == "xchg":
            self.emit("mov", XReg("x12"), XReg(v))
        elif inst.op in ("add", "sub", "and", "or", "xor"):
            mn = {"add": "add", "sub": "sub", "and": "and", "or": "orr",
                  "xor": "eor"}[inst.op]
            self.emit(mn, XReg("x12"), XReg("x11"), XReg(v))
        elif inst.op in ("max", "min"):
            self.emit("cmp", XReg("x11"), XReg(v))
            cond = "gt" if inst.op == "max" else "lt"
            self.emit("csel", XReg("x12"), XReg("x11"), XReg(v), ALabel(cond))
        else:
            raise BackendError(f"rmw op {inst.op}")
        self.emit("stxr", XReg("x13"), XReg("x12"), AMem(base=p))
        self.emit("cbnz", XReg("x13"), ALabel(loop))
        self.emit("dmb ish")
        self._finish(inst, "x11")

    def _emit_cmpxchg(self, inst: CmpXchg) -> None:
        p = self._reg_of(inst.pointer, "x9")
        expected = self._reg_of(inst.expected, "x10")
        new = self._reg_of(inst.new, "x12")
        loop = self._new_label("cas")
        done = self._new_label("casdone")
        self.emit("dmb ish")
        self.out.label(loop)
        self.emit("ldxr", XReg("x11"), AMem(base=p))
        self.emit("cmp", XReg("x11"), XReg(expected))
        self.emit("b.ne", ALabel(done))
        self.emit("stxr", XReg("x13"), XReg(new), AMem(base=p))
        self.emit("cbnz", XReg("x13"), ALabel(loop))
        self.out.label(done)
        self.emit("dmb ish")
        self._finish(inst, "x11")

    _INT_OPS = {"add": "add", "sub": "sub", "mul": "mul", "and": "and",
                "or": "orr", "xor": "eor", "shl": "lsl", "lshr": "lsr",
                "sdiv": "sdiv", "udiv": "udiv"}

    def _emit_binop(self, inst: BinOp) -> None:
        if _is_fp(inst.type):
            a = self._reg_of(inst.lhs, "d16")
            b = self._reg_of(inst.rhs, "d17")
            dst = self._dest_reg(inst, "d18")
            mn = {"fadd": "fadd", "fsub": "fsub", "fmul": "fmul",
                  "fdiv": "fdiv"}[inst.op]
            self.emit(mn, DReg(dst), DReg(a), DReg(b))
            self._finish(inst, dst, fp=True)
            return
        ty = inst.type
        assert isinstance(ty, IntType)
        a = self._reg_of(inst.lhs, "x9")
        b = self._reg_of(inst.rhs, "x10")
        dst = self._dest_reg(inst, "x11")
        op = inst.op
        if op == "ashr" and ty.bits < 64:
            # Sign-extend into 64-bit before the arithmetic shift.
            shift = 64 - ty.bits
            self.emit("lsl", XReg("x12"), XReg(a), AImm(shift))
            self.emit("asr", XReg("x12"), XReg("x12"), AImm(shift))
            self.emit("asr", XReg(dst), XReg("x12"), XReg(b))
        elif op == "ashr":
            self.emit("asr", XReg(dst), XReg(a), XReg(b))
        elif op in ("srem", "urem"):
            div = "sdiv" if op == "srem" else "udiv"
            if op == "srem" and ty.bits < 64:
                raise BackendError("narrow srem unsupported")
            self.emit(div, XReg("x12"), XReg(a), XReg(b))
            self.emit("msub", XReg(dst), XReg("x12"), XReg(b), XReg(a))
        elif op == "sdiv" and ty.bits < 64:
            raise BackendError("narrow sdiv unsupported")
        elif op in self._INT_OPS:
            self.emit(self._INT_OPS[op], XReg(dst), XReg(a), XReg(b))
        else:
            raise BackendError(f"binop {op}")
        # Maintain the invariant that narrow integers stay zero-masked.
        if ty.bits < 64 and op in ("add", "sub", "mul", "shl"):
            self.emit("and", XReg(dst), XReg(dst), AImm(ty.mask()))
        self._finish(inst, dst)

    def _emit_icmp(self, inst: ICmp) -> None:
        ty = inst.lhs.type
        a = self._reg_of(inst.lhs, "x9")
        b = self._reg_of(inst.rhs, "x10")
        signed = inst.pred in ("slt", "sle", "sgt", "sge")
        if signed and isinstance(ty, IntType) and ty.bits < 64:
            shift = 64 - ty.bits
            self.emit("lsl", XReg("x12"), XReg(a), AImm(shift))
            self.emit("asr", XReg("x12"), XReg("x12"), AImm(shift))
            self.emit("lsl", XReg("x13"), XReg(b), AImm(shift))
            self.emit("asr", XReg("x13"), XReg("x13"), AImm(shift))
            a, b = "x12", "x13"
        dst = self._dest_reg(inst, "x11")
        self.emit("cmp", XReg(a), XReg(b))
        self.emit("cset", XReg(dst), ALabel(ICMP_COND[inst.pred]))
        self._finish(inst, dst)

    def _emit_fcmp(self, inst: FCmp) -> None:
        a = self._reg_of(inst.lhs, "d16")
        b = self._reg_of(inst.rhs, "d17")
        dst = self._dest_reg(inst, "x11")
        self.emit("fcmp", DReg(a), DReg(b))
        self.emit("cset", XReg(dst), ALabel(FCMP_COND[inst.pred]))
        self._finish(inst, dst)

    def _emit_cast(self, inst: Cast) -> None:
        op = inst.op
        src_ty = inst.value.type
        dst_ty = inst.type
        if op in ("bitcast",) and isinstance(src_ty, FloatType) and isinstance(
            dst_ty, IntType
        ):
            a = self._reg_of(inst.value, "d16")
            dst = self._dest_reg(inst, "x11")
            self.emit("fmov", XReg(dst), DReg(a))
            self._finish(inst, dst)
            return
        if op in ("bitcast",) and isinstance(src_ty, IntType) and isinstance(
            dst_ty, FloatType
        ):
            a = self._reg_of(inst.value, "x9")
            dst = self._dest_reg(inst, "d16")
            self.emit("fmov", DReg(dst), XReg(a))
            self._finish(inst, dst, fp=True)
            return
        if op == "sitofp":
            a = self._reg_of(inst.value, "x9")
            dst = self._dest_reg(inst, "d16")
            if isinstance(src_ty, IntType) and src_ty.bits < 64:
                shift = 64 - src_ty.bits
                self.emit("lsl", XReg("x12"), XReg(a), AImm(shift))
                self.emit("asr", XReg("x12"), XReg("x12"), AImm(shift))
                a = "x12"
            self.emit("scvtf", DReg(dst), XReg(a))
            self._finish(inst, dst, fp=True)
            return
        if op == "uitofp":
            a = self._reg_of(inst.value, "x9")
            dst = self._dest_reg(inst, "d16")
            self.emit("scvtf", DReg(dst), XReg(a))
            self._finish(inst, dst, fp=True)
            return
        if op in ("fptosi", "fptoui"):
            a = self._reg_of(inst.value, "d16")
            dst = self._dest_reg(inst, "x11")
            self.emit("fcvtzs", XReg(dst), DReg(a))
            if isinstance(dst_ty, IntType) and dst_ty.bits < 64:
                self.emit("and", XReg(dst), XReg(dst), AImm(dst_ty.mask()))
            self._finish(inst, dst)
            return
        if op in ("fpext", "fptrunc"):
            a = self._reg_of(inst.value, "d16")
            dst = self._dest_reg(inst, "d17")
            if dst != a:
                self.emit("fmov", DReg(dst), DReg(a))
            self._finish(inst, dst, fp=True)
            return
        # Integer/pointer-only casts.
        a = self._reg_of(inst.value, "x9")
        dst = self._dest_reg(inst, "x11")
        if op == "trunc":
            assert isinstance(dst_ty, IntType)
            self.emit("and", XReg(dst), XReg(a), AImm(dst_ty.mask()))
        elif op == "zext":
            if dst != a:
                self.emit("mov", XReg(dst), XReg(a))
        elif op == "sext":
            assert isinstance(src_ty, IntType)
            shift = 64 - src_ty.bits
            self.emit("lsl", XReg("x12"), XReg(a), AImm(shift))
            self.emit("asr", XReg(dst), XReg("x12"), AImm(shift))
            if isinstance(dst_ty, IntType) and dst_ty.bits < 64:
                self.emit("and", XReg(dst), XReg(dst), AImm(dst_ty.mask()))
        elif op in ("bitcast", "inttoptr", "ptrtoint"):
            if dst != a:
                self.emit("mov", XReg(dst), XReg(a))
        else:
            raise BackendError(f"cast {op}")
        self._finish(inst, dst)

    def _emit_gep(self, inst: GEP) -> None:
        base = self._reg_of(inst.pointer, "x9")
        dst = self._dest_reg(inst, "x11")
        sizes = [inst.source_type.size_bytes()]
        if len(inst.indices) == 2:
            sizes.append(inst.source_type.element.size_bytes())  # type: ignore[union-attr]
        current = base
        for idx_value, size in zip(inst.indices, sizes):
            if isinstance(idx_value, ConstantInt):
                delta = idx_value.signed_value * size
                if delta == 0:
                    continue
                self.emit("add", XReg(dst), XReg(current), AImm(delta))
                current = dst
                continue
            idx = self._reg_of(idx_value, "x10")
            shift = _pow2_shift(size)
            if size == 1:
                scaled = idx
            elif shift is not None:
                self.emit("lsl", XReg("x12"), XReg(idx), AImm(shift))
                scaled = "x12"
            else:
                self.emit("mov", XReg("x12"), AImm(size))
                self.emit("mul", XReg("x12"), XReg(idx), XReg("x12"))
                scaled = "x12"
            self.emit("add", XReg(dst), XReg(current), XReg(scaled))
            current = dst
        if current != dst:
            self.emit("mov", XReg(dst), XReg(current))
        self._finish(inst, dst)

    def _emit_select(self, inst: Select) -> None:
        c = self._reg_of(inst.cond, "x9")
        self.emit("cmp", XReg(c), AImm(0))
        if _is_fp(inst.type):
            a = self._reg_of(inst.true_value, "d16")
            b = self._reg_of(inst.false_value, "d17")
            dst = self._dest_reg(inst, "d18")
            self.emit("fcsel", DReg(dst), DReg(a), DReg(b), ALabel("ne"))
            self._finish(inst, dst, fp=True)
        else:
            a = self._reg_of(inst.true_value, "x10")
            b = self._reg_of(inst.false_value, "x12")
            dst = self._dest_reg(inst, "x11")
            self.emit("csel", XReg(dst), XReg(a), XReg(b), ALabel("ne"))
            self._finish(inst, dst)

    def _emit_call(self, inst: Call) -> None:
        callee = inst.callee
        # Marshal arguments (AAPCS64: separate int and FP register files).
        int_idx = 0
        fp_idx = 0
        moves: list[tuple[str, Value]] = []
        for arg in inst.args:
            if _is_fp(arg.type):
                moves.append((f"d{fp_idx}", arg))
                fp_idx += 1
            else:
                moves.append((f"x{int_idx}", arg))
                int_idx += 1
        if int_idx > 8 or fp_idx > 8:
            raise BackendError("too many call arguments")
        for dst, arg in moves:
            if dst.startswith("d"):
                reg = self._reg_of(arg, "d16")
                if reg != dst:
                    self.emit("fmov", DReg(dst), DReg(reg))
            else:
                reg = self._reg_of(arg, "x9")
                if reg != dst:
                    self.emit("mov", XReg(dst), XReg(reg))
        if isinstance(callee, (Function, ExternalFunction)):
            self.emit("bl", ALabel(callee.name))
        else:
            target = self._reg_of(callee, "x9")
            self.emit("blr", XReg(target))
        if not inst.type.is_void:
            if _is_fp(inst.type):
                self._store_result(inst, "d0", fp=True)
            else:
                self._store_result(inst, "x0", fp=False)


def compile_lir_to_arm(module: Module, entry: str = "main") -> ArmProgram:
    return LIRToArm(module, entry).compile()
