"""LIR → AArch64 backend (Fig. 8b mapping + linear-scan regalloc)."""

from .arm_codegen import BackendError, LIRToArm, compile_lir_to_arm

__all__ = ["BackendError", "LIRToArm", "compile_lir_to_arm"]
