"""Lasagne: the end-to-end translation pipeline (Figure 3).

``Lasagne.translate`` drives  binary lifting → IR refinement → fence
placement → optimization → fence merging → Arm code generation  for the
five evaluation configurations of §9.1:

* **native** — mini-C → LIR → O2 → Arm (no translation; the baseline)
* **lifted** — x86 → lift → fence placement → Arm (no re-optimization)
* **opt**    — x86 → lift → placement → O2 → Arm
* **popt**   — opt + the §7 fence-merging rules
* **ppopt**  — x86 → lift → §5 IR refinement → placement → O2 → merging → Arm

One deviation from the paper's §8 ordering is recorded in DESIGN.md: our
lifter materializes registers as memory slots (McSema-style), so adjacent
fence pairs only become visible after optimization; merging therefore runs
post-O2 (it is an IR→IR LIMM transformation, valid anywhere).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional

from .. import telemetry
from ..profiler import memory as profmem
from ..profiler import workcounters
from ..arm.emulator import ArmEmulator
from ..arm.program import ArmProgram
from ..codegen import compile_lir_to_arm
from ..fences import count_fences, merge_fences, place_fences
from ..lir import Module, clone_module, verify_module
from ..lifter import lift_program
from ..minicc.codegen_x86 import compile_to_x86
from ..minicc.frontend_lir import compile_to_lir
from ..opt import PassStats, optimize_module
from ..refine import module_pointer_casts, run_refinement
from ..x86.objfile import X86Object

CONFIGS = ["native", "lifted", "opt", "popt", "ppopt"]

# Fence-elision tiers for the translated configurations (§8 + delay sets):
# * "walk"       — seed behaviour: syntactic bitcast/gep walk only
# * "escape"     — interprocedural points-to/escape analysis (default)
# * "delay-sets" — escape analysis + Shasha–Snir delay-set elision of
#                  fences covering no critical-cycle edge
# * "sync"       — delay sets refined by must-locksets: conflict edges
#                  between accesses protected by a common pthread mutex
#                  cannot lie on critical cycles
FENCE_ANALYSES = ["walk", "escape", "delay-sets", "sync"]

# Stage names recorded by ``Lasagne(capture_stages=True)``, in pipeline order.
TRANSLATE_STAGES = ["lift", "refine", "place", "opt", "merge"]
NATIVE_STAGES = ["frontend", "opt"]


@contextmanager
def pipeline_stage(name: str, **attrs):
    """One pipeline stage under full observability.

    Opens the telemetry span (as before), brackets the profiler
    work-counter scope so every deterministic tally inside attributes to
    this stage, and — when a :mod:`repro.profiler.memory` accountant is
    installed — records the stage's tracemalloc peak/delta and annotates
    the span with ``mem_peak_bytes`` / ``mem_delta_bytes``.
    """
    with telemetry.span(name, category="stage", **attrs) as sp:
        with workcounters.scope(stage=name):
            with profmem.account(name) as mem:
                yield sp
        if mem is not None:
            sp.annotate(mem_peak_bytes=mem.peak_bytes,
                        mem_delta_bytes=mem.delta_bytes)


def snapshot_module(module: Module) -> Module:
    """An independent deep copy of ``module``.

    Later pipeline stages mutate the module in place; a snapshot taken here
    is immune to that, which is what differential validation needs.  The
    copy is structural (not a printer/parser round-trip) so instruction
    provenance — the x86 ``origins`` carried by every lifted instruction —
    survives into the captured stage modules.
    """
    return clone_module(module)


@dataclass
class TranslationResult:
    config: str
    module: Module
    program: ArmProgram
    fences: int = 0
    fences_naive: int = 0          # fences right after naive placement
    fences_elided: int = 0         # accesses proven thread-local at placement
    fences_elided_beyond_walk: int = 0  # of those, only via escape analysis
    fences_elided_interproc: int = 0    # of those, only via callee summaries
    fences_elided_delayset: int = 0     # fences removed by delay-set tier
    fences_elided_sync: int = 0         # of the elided, via lockset refinement
    delayset: Optional[object] = None   # DelaySetStats when the tier ran
    pointer_casts_before: int = 0
    pointer_casts_after: int = 0
    pass_stats: Optional[PassStats] = None
    # Per-pass translation-validation report (a repro.analysis.tv.TVReport);
    # populated only under ``Lasagne(tv=True)`` for configs that optimize.
    tv_report: Optional[object] = None
    # Intermediate modules, keyed by stage name (see TRANSLATE_STAGES /
    # NATIVE_STAGES); populated only under ``Lasagne(capture_stages=True)``.
    stages: dict[str, Module] = field(default_factory=dict)
    # Telemetry (populated only when a repro.telemetry session is active):
    # the root pipeline span, with one child span per stage, and a metrics
    # snapshot taken when the translation finished.
    trace: Optional[telemetry.Span] = None
    metrics: Optional[dict] = None

    def stage_seconds(self) -> dict[str, float]:
        """Wall time per pipeline stage, from the telemetry trace."""
        if self.trace is None:
            return {}
        return {
            s.name: s.duration
            for s in self.trace.walk()
            if s.category == "stage" and s.end is not None
        }

    @property
    def arm_instructions(self) -> int:
        return self.program.instruction_count()

    @property
    def lir_instructions(self) -> int:
        return self.module.instruction_count()


@dataclass
class RunResult:
    result: int
    output: list[str]
    cycles: int
    instructions_retired: int


def ingest_binary(data: bytes, entry: str = "main", strict: bool = True):
    """Front-end for real ELF64 executables: run ``repro.loader`` under a
    telemetry span, record the ``loader.*`` coverage metrics the bench
    trajectory tracks, and surface opaque externals as remarks.

    Returns ``(X86Object, TriageReport)``; the object feeds
    :meth:`Lasagne.translate` exactly like a minicc-produced image.
    """
    from ..loader import ingest_elf

    with pipeline_stage("loader", entry=entry):
        obj, report = ingest_elf(data, entry, strict=strict)
    telemetry.count("loader.functions_discovered", len(report.functions))
    telemetry.count("loader.externals_resolved",
                    len(report.externals_resolved))
    telemetry.count("loader.externals_opaque",
                    len(report.externals_opaque))
    telemetry.count("loader.data_symbols", report.data_symbols)
    for name, addr in sorted(report.externals_opaque.items()):
        telemetry.remark(
            "loader", "opaque-external",
            f"external at {addr:#x} is not in the catalog; calls become "
            f"conservative opaque calls named {name!r}")
    return obj, report


class Lasagne:
    """End-to-end static binary translator for weak memory architectures."""

    def __init__(self, verify: bool = True, capture_stages: bool = False,
                 fence_analysis: str = "escape", tv: bool = False) -> None:
        if fence_analysis not in FENCE_ANALYSES:
            raise ValueError(f"unknown fence analysis {fence_analysis!r} "
                             f"(choose from {', '.join(FENCE_ANALYSES)})")
        # Translation validation snapshots the module around every pass
        # invocation and checks refinement; it implies IR verification.
        self.verify = verify or tv
        self.capture_stages = capture_stages
        self.fence_analysis = fence_analysis
        self.tv = tv

    def _tv_checker(self):
        if not self.tv:
            return None
        from ..analysis.tv import TVChecker
        return TVChecker()

    def _capture(self, stages: dict[str, Module], name: str, module: Module) -> None:
        if self.capture_stages:
            stages[name] = snapshot_module(module)

    # ---- the five configurations -------------------------------------------
    def native(self, source: str, entry: str = "main") -> TranslationResult:
        stages: dict[str, Module] = {}
        checker = self._tv_checker()
        with telemetry.span("pipeline", category="pipeline",
                            config="native", entry=entry) as root:
            with pipeline_stage("frontend"):
                module = compile_to_lir(source)
                if self.verify:
                    verify_module(module)
            self._capture(stages, "frontend", module)
            with pipeline_stage("opt"):
                stats = optimize_module(module, verify=self.verify, tv=checker)
            self._capture(stages, "opt", module)
            with pipeline_stage("codegen"):
                program = compile_lir_to_arm(module, entry)
        return TranslationResult(
            "native", module, program,
            fences=count_fences(module), pass_stats=stats,
            tv_report=checker.report if checker is not None else None,
            stages=stages,
            trace=root if isinstance(root, telemetry.Span) else None,
            metrics=telemetry.metrics_snapshot(),
        )

    def translate(
        self, obj: X86Object, config: str = "ppopt", entry: str = "main"
    ) -> TranslationResult:
        if config not in ("lifted", "opt", "popt", "ppopt"):
            raise ValueError(f"unknown configuration {config!r}")
        if entry not in obj.functions:
            # A clear triage diagnostic (what was asked for, what the
            # image defines) instead of a KeyError deep in the lifter.
            from ..x86.objfile import EntryError
            raise EntryError(entry, sorted(obj.functions))
        stages: dict[str, Module] = {}
        checker = self._tv_checker() if config != "lifted" else None
        with telemetry.span("pipeline", category="pipeline",
                            config=config, entry=entry) as root:
            with pipeline_stage("lift"):
                module = lift_program(obj)
                if self.verify:
                    verify_module(module)
            self._capture(stages, "lift", module)
            casts_before = module_pointer_casts(module)
            if config == "ppopt":
                with pipeline_stage("refine"):
                    run_refinement(module)
                    if self.verify:
                        verify_module(module)
                self._capture(stages, "refine", module)
            casts_after = module_pointer_casts(module)
            with pipeline_stage("place"):
                placement = place_fences(
                    module, use_analysis=self.fence_analysis != "walk")
                fences_naive = count_fences(module)
                delay_stats = None
                if self.fence_analysis in ("delay-sets", "sync"):
                    # Runs while every fence is still adjacent to the
                    # access it protects (before O2 / merging).
                    from ..analysis.delayset import elide_redundant_fences
                    delay_stats = elide_redundant_fences(
                        module, sync=self.fence_analysis == "sync")
            self._capture(stages, "place", module)
            stats = None
            if config != "lifted":
                with pipeline_stage("opt"):
                    stats = optimize_module(module, verify=self.verify,
                                            tv=checker)
                self._capture(stages, "opt", module)
                if config in ("popt", "ppopt"):
                    with pipeline_stage("merge"):
                        merge_fences(module)
                        optimize_module(module, ["dce"], verify=self.verify,
                                        tv=checker)
                    self._capture(stages, "merge", module)
            if self.verify:
                verify_module(module)
            with pipeline_stage("codegen"):
                program = compile_lir_to_arm(module, entry)
        return TranslationResult(
            config, module, program,
            fences=count_fences(module),
            fences_naive=fences_naive,
            fences_elided=placement.total_elided,
            fences_elided_beyond_walk=(placement.skipped_escape
                                       + placement.skipped_interproc),
            fences_elided_interproc=placement.skipped_interproc,
            fences_elided_delayset=(delay_stats.elided
                                    if delay_stats is not None else 0),
            fences_elided_sync=(delay_stats.elided_sync
                                if delay_stats is not None else 0),
            delayset=delay_stats,
            pointer_casts_before=casts_before,
            pointer_casts_after=casts_after,
            pass_stats=stats,
            tv_report=checker.report if checker is not None else None,
            stages=stages,
            trace=root if isinstance(root, telemetry.Span) else None,
            metrics=telemetry.metrics_snapshot(),
        )

    # ---- convenience -------------------------------------------------------
    def build(self, source: str, config: str, entry: str = "main") -> TranslationResult:
        """Compile mini-C source and produce the given configuration."""
        if config == "native":
            return self.native(source, entry)
        obj = compile_to_x86(source, entry)
        return self.translate(obj, config, entry)

    @staticmethod
    def run(result: TranslationResult, entry: Optional[str] = None,
            args: Optional[list[int]] = None) -> RunResult:
        emu = ArmEmulator(result.program)
        with telemetry.span("run:arm", category="emu", config=result.config):
            value = emu.run(entry, args)
        return RunResult(
            result=value,
            output=emu.output,
            cycles=sum(t.cycles for t in emu.threads),
            instructions_retired=sum(t.instret for t in emu.threads),
        )
