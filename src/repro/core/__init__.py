"""Lasagne end-to-end pipeline (core of the paper's contribution)."""

from .pipeline import (
    CONFIGS,
    NATIVE_STAGES,
    TRANSLATE_STAGES,
    Lasagne,
    RunResult,
    TranslationResult,
    snapshot_module,
)

__all__ = [
    "CONFIGS", "NATIVE_STAGES", "TRANSLATE_STAGES",
    "Lasagne", "RunResult", "TranslationResult", "snapshot_module",
]
