"""Lasagne end-to-end pipeline (core of the paper's contribution)."""

from .pipeline import CONFIGS, Lasagne, RunResult, TranslationResult

__all__ = ["CONFIGS", "Lasagne", "RunResult", "TranslationResult"]
