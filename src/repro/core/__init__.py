"""Lasagne end-to-end pipeline (core of the paper's contribution)."""

from .pipeline import (
    CONFIGS,
    NATIVE_STAGES,
    TRANSLATE_STAGES,
    Lasagne,
    RunResult,
    TranslationResult,
    ingest_binary,
    snapshot_module,
)

__all__ = [
    "CONFIGS", "NATIVE_STAGES", "TRANSLATE_STAGES",
    "Lasagne", "RunResult", "TranslationResult", "ingest_binary",
    "snapshot_module",
]
