#!/usr/bin/env python3
"""Peek inside every stage of the translation pipeline (Figure 3/4).

Shows one small function as: x86 machine code → disassembly → lifted LIR
→ refined LIR → fence-placed LIR → optimized LIR → Arm assembly.

Run:  python examples/inspect_pipeline.py
"""

from repro.codegen import compile_lir_to_arm
from repro.fences import count_fences, merge_fences, place_fences
from repro.lifter import disassemble_function, lift_program
from repro.lir import format_function
from repro.minicc import compile_to_x86
from repro.opt import optimize_module
from repro.refine import module_pointer_casts, run_refinement

SOURCE = """
int total = 0;

int accumulate(int *data, int n) {
  int s = 0;
  for (int i = 0; i < n; i = i + 1) { s = s + data[i]; }
  total = total + s;
  return s;
}

int buf[8];
int main() {
  for (int i = 0; i < 8; i = i + 1) { buf[i] = i; }
  return accumulate(buf, 8);
}
"""


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    obj = compile_to_x86(SOURCE)

    banner("1. x86-64 machine code (what the lifter actually consumes)")
    body = obj.function_body("accumulate")
    print(f"accumulate: {len(body)} bytes")
    print(body.hex())

    banner("2. Disassembly (MCInst level)")
    for instr in disassemble_function(obj, "accumulate")[:18]:
        print(f"  {instr.address:#x}:  {instr}")
    print("  ...")

    banner("3. Lifted LIR — registers as slots, stack as byte array (§4)")
    module = lift_program(obj)
    text = format_function(module.get_function("accumulate"))
    print("\n".join(text.splitlines()[:28]))
    print(f"  ... ({module.instruction_count()} instructions total, "
          f"{module_pointer_casts(module)} pointer casts)")

    banner("4. IR refinement — typed pointers re-exposed (§5)")
    run_refinement(module)
    print(f"pointer casts after refinement: {module_pointer_casts(module)}")

    banner("5. Fence placement — the Fig. 8a mapping with stack elision (§8)")
    stats = place_fences(module)
    print(f"fences inserted: {stats.total_inserted} "
          f"(loads {stats.loads_fenced}, stores {stats.stores_fenced}); "
          f"stack accesses skipped: {stats.skipped_stack}")

    banner("6. O2 pipeline + fence merging (§7)")
    optimize_module(module)
    merged = merge_fences(module)
    print(f"after O2: {module.instruction_count()} instructions, "
          f"{count_fences(module)} fences ({merged} merged away)")
    print()
    print(format_function(module.get_function("accumulate")))

    banner("7. Arm code (Fig. 8b mapping: Frm→DMBLD, Fww→DMBST)")
    program = compile_lir_to_arm(module)
    func = program.functions["accumulate"]
    for item in func.items[:30]:
        if isinstance(item, str):
            print(f"{item}:")
        else:
            print(f"    {item}")
    print("    ...")

    from repro.arm import ArmEmulator
    from repro.x86 import X86Emulator

    expected = X86Emulator(obj).run()
    got = ArmEmulator(program).run()
    print(f"\nx86 result = {expected}, Arm result = {got} "
          f"({'MATCH' if expected == got else 'MISMATCH'})")


if __name__ == "__main__":
    main()
