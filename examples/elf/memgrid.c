#include <stdio.h>
#include <stdlib.h>
#include <string.h>

long cells[32];

long rowsum(long *row, long n) {
    long s = 0;
    for (long i = 0; i < n; i++)
        s += row[i];
    return s;
}

int main(void) {
    long *grid = calloc(32, sizeof(long));
    for (long i = 0; i < 32; i++)
        grid[i] = i * 3 + 1;
    memcpy(cells, grid, 32 * sizeof(long));
    memset(grid, 0, 16 * sizeof(long));
    long total = rowsum(cells, 32) + rowsum(grid, 32);
    printf("%ld\n", total);
    free(grid);
    return (int)(total & 127);
}
