#include <stdio.h>
#include <stdlib.h>

long acc = 7;

long addmul(long a, long b) {
    return a * b + acc;
}

int main(void) {
    long total = 0;
    for (long i = 1; i <= 10; i++) {
        total = addmul(total, i) - acc + i;
    }
    char *buf = malloc(32);
    buf[0] = (char)(total & 0x7f);
    printf("%ld\n", total + buf[0]);
    free(buf);
    return (int)(total & 63);
}
