#include <stdio.h>
#include <string.h>

char buf[64];

int main(void) {
    const char *a = "hello world";
    strcpy(buf, a);
    long n = strlen(buf);
    if (strcmp(buf, "hello world") == 0)
        puts("match");
    for (long i = 0; i < n; i++)
        putchar(buf[i]);
    putchar(10);
    printf("%ld\n", n);
    return (int)n;
}
