#!/usr/bin/env python3
"""Explore the concurrency models: why naive translation is wrong and how
the Fig. 8 mappings repair it.

Enumerates all consistent executions of classic litmus tests under the
three axiomatic models (x86-TSO, Arm, LIMM), reproducing the paper's
Figures 1, 2 and 9.

Run:  python examples/litmus_explorer.py
"""

from repro.memmodel import (
    MP,
    SB,
    has_outcome,
    map_ir_to_arm,
    map_x86_to_arm,
    map_x86_to_ir,
    outcomes,
    weaken_fences,
)


def show(title, program, model, *observations):
    o = outcomes(program, model)
    print(f"  {title:<34} [{model:>4}]  {len(o)} consistent outcome(s)")
    for desc, regs in observations:
        allowed = has_outcome(o, **regs)
        print(f"      {desc:<28} {'ALLOWED' if allowed else 'forbidden'}")
    return o


def main() -> None:
    print("Figure 1 — SB: the non-SC outcome a=b=0 is weak-memory behaviour")
    show("SB on x86", SB, "x86", ("a=0, b=0", dict(t1_a=0, t2_b=0)))
    show("SB on Arm", SB, "arm", ("a=0, b=0", dict(t1_a=0, t2_b=0)))

    print("\nFigure 1 — MP: x86 forbids a=1,b=0; Arm allows it")
    show("MP on x86", MP, "x86", ("a=1, b=0", dict(t2_a=1, t2_b=0)))
    show("MP on Arm", MP, "arm", ("a=1, b=0", dict(t2_a=1, t2_b=0)))

    print("\nFigure 2 — translating MP with NO fences (mctoll+LLVM style)")
    print("  the Arm binary admits an outcome the x86 source forbids:")
    show("naive MP on Arm", MP, "arm", ("a=1, b=0", dict(t2_a=1, t2_b=0)))

    print("\nFigure 9 — Lasagne's mapping: st→Fww;st and ld→ld;Frm")
    mp_ir = map_x86_to_ir(MP)
    show("mapped MP on LIMM", mp_ir, "limm", ("a=1, b=0", dict(t2_a=1, t2_b=0)))
    mp_arm = map_x86_to_arm(MP)
    show("mapped MP on Arm", mp_arm, "arm", ("a=1, b=0", dict(t2_a=1, t2_b=0)))

    print("\nPrecision (Definition 7.2) — both fences are necessary:")
    for name, drop in (("without DMBLD", {"ld": None}),
                       ("without DMBST", {"st": None})):
        weak = weaken_fences(mp_arm, drop)
        o = outcomes(weak, "arm")
        verdict = "ALLOWED again" if has_outcome(o, t2_a=1, t2_b=0) else "?"
        print(f"  mapped MP {name:<16} a=1,b=0 is {verdict}")

    print("\nTheorem 7.1 on MP: Behav(mapped Arm) ⊆ Behav(x86) —",
          outcomes(mp_arm, "arm") <= outcomes(MP, "x86"))


if __name__ == "__main__":
    main()
