#!/usr/bin/env python3
"""Reproduce the paper's evaluation tables on the Phoenix suite.

Runs every kernel through all five configurations (Native / Lifted / Opt /
POpt / PPOpt) and prints Figure-12/13/14-style summaries.

Run:  python examples/phoenix_evaluation.py [--size tiny|small]
"""

import argparse
import time

from repro.phoenix import (
    SIZE_SMALL,
    SIZE_TINY,
    evaluate_suite,
    geomean,
)

CONFIGS = ["native", "lifted", "opt", "popt", "ppopt"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", choices=["tiny", "small"], default="tiny",
                        help="dataset size (tiny ≈ seconds, small ≈ a minute)")
    args = parser.parse_args()
    size = SIZE_TINY if args.size == "tiny" else SIZE_SMALL

    t0 = time.time()
    rows = evaluate_suite(size=size, verify=False)
    print(f"evaluated {len(rows)} kernels × {len(CONFIGS)} configs "
          f"in {time.time() - t0:.1f}s\n")

    header = f"{'benchmark':<18}" + "".join(f"{c:>9}" for c in CONFIGS)
    print("Normalized runtime (Figure 12; lower is better)")
    print(header)
    norm = {c: [] for c in CONFIGS}
    for row in rows:
        cells = ""
        for c in CONFIGS:
            v = row.normalized_runtime(c)
            norm[c].append(v)
            cells += f"{v:>9.2f}"
        print(f"{row.program:<18}{cells}")
    print(f"{'GMean':<18}"
          + "".join(f"{geomean(norm[c]):>9.2f}" for c in CONFIGS))

    print("\nFence reduction vs naive placement (Figure 14)")
    print(f"{'benchmark':<18}{'lifted':>8}{'popt':>8}{'ppopt':>8}"
          f"{'POpt%':>8}{'PPOpt%':>8}")
    for row in rows:
        print(f"{row.program:<18}"
              f"{row.metrics['lifted'].fences:>8}"
              f"{row.metrics['popt'].fences:>8}"
              f"{row.metrics['ppopt'].fences:>8}"
              f"{row.fence_reduction('popt'):>8.1f}"
              f"{row.fence_reduction('ppopt'):>8.1f}")

    print("\nPointer-cast reduction from IR refinement (Figure 13)")
    for row in rows:
        m = row.metrics["ppopt"]
        print(f"{row.program:<18}{m.pointer_casts_before:>6} → "
              f"{m.pointer_casts_after:<6} ({row.cast_reduction():.1f}% removed)")

    print("\nAll configurations produced identical checksums per kernel.")


if __name__ == "__main__":
    main()
