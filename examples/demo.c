// Two threads bump a shared atomic counter; main then chains two
// non-atomic global accesses (h = g; g = h + 1) so fence placement and
// §7 fence merging both have work to do.  Used by the CI telemetry smoke
// step: `repro translate examples/demo.c --trace` / `repro stats`.
int g = 0;
int h = 0;

int worker(int t) {
  atomic_add(&g, t + 1);
  return 0;
}

int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a);
  join(b);
  h = g;
  g = h + 1;
  return g;
}
