// Two threads bump a shared atomic counter; main then chains two
// non-atomic global accesses (h = g; g = h + 1) so fence placement and
// §7 fence merging both have work to do, and tallies a local through a
// pointer-taking helper so the interprocedural escape summaries have an
// elision to prove (bump's argument never escapes).  Used by the CI
// telemetry/fencecheck/delay-set smoke steps:
// `repro translate examples/demo.c --trace` / `repro stats` /
// `repro analyze examples/demo.c --delay-sets`.
int g = 0;
int h = 0;

int worker(int t) {
  atomic_add(&g, t + 1);
  return 0;
}

int bump(int *p, int v) {
  *p = *p + v;
  return 0;
}

int main() {
  int a = spawn(worker, 1);
  int b = spawn(worker, 2);
  join(a);
  join(b);
  int local = 0;
  bump(&local, 3);
  bump(&local, 4);
  h = g;
  g = h + 1;
  return g + local - 7;
}
