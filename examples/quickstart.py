#!/usr/bin/env python3
"""Quickstart: translate a concurrent x86 binary to Arm with Lasagne.

Compiles a small multi-threaded mini-C program to a genuine x86-64 image,
runs it under the TSO emulator, then translates it to Arm with the fully
optimized pipeline (IR refinement + optimized fence placement + O2) and
runs the result under the weak-memory Arm emulator.  Both must agree.

Run:  python examples/quickstart.py
"""

from repro.core import Lasagne
from repro.minicc import compile_to_x86
from repro.x86 import X86Emulator

SOURCE = """
int counter = 0;
int data[64];

int worker(int t) {
  int chunk = 64 / 4;
  int base = t * chunk;
  int local = 0;
  for (int i = base; i < base + chunk; i = i + 1) {
    local = local + data[i];
  }
  atomic_add(&counter, local);
  return 0;
}

int tids[4];

int main() {
  for (int i = 0; i < 64; i = i + 1) { data[i] = i + 1; }
  for (int t = 0; t < 4; t = t + 1) { tids[t] = spawn(worker, t); }
  for (int t = 0; t < 4; t = t + 1) { join(tids[t]); }
  print_i(counter);
  return counter;
}
"""


def main() -> None:
    # 1. Produce the source binary: mini-C → linked x86-64 machine code.
    obj = compile_to_x86(SOURCE)
    print(f"x86 image: {len(obj.text)} bytes of machine code, "
          f"{len(obj.functions)} functions, {len(obj.data_symbols)} globals")

    # 2. Run it on the x86-TSO emulator (store buffers and all).
    x86 = X86Emulator(obj)
    expected = x86.run()
    print(f"x86 result: {expected}   output: {x86.output}")

    # 3. Translate to Arm: lift → refine → place fences → optimize → codegen.
    lasagne = Lasagne()
    naive = lasagne.translate(obj, config="lifted")
    built = lasagne.translate(obj, config="ppopt")
    print(f"\ntranslated to Arm: {built.arm_instructions} instructions, "
          f"{built.fences} fences "
          f"(naive placement on unrefined code uses {naive.fences})")
    print(f"pointer casts: {built.pointer_casts_before} lifted → "
          f"{built.pointer_casts_after} after IR refinement")

    # 4. Run the Arm binary on the weak-memory emulator.
    run = Lasagne.run(built)
    print(f"\nArm result: {run.result}   output: {run.output}")
    print(f"modelled cycles: {run.cycles}")

    assert run.result == expected, "translation changed program behaviour!"
    assert run.output == x86.output
    print("\nOK — the translated binary preserves x86 semantics.")


if __name__ == "__main__":
    main()
