// Lock-protected message passing: a writer publishes two globals under
// a pthread mutex and a reader consumes them under the same mutex.  The
// must-lockset analysis proves every conflicting access shares lock m,
// so the sync-refined delay sets drop the lock-ordered conflict edges
// and elide the Fig. 8a fences the base delay-set analysis must keep
// (fences_elided_sync > 0).  `repro analyze --racecheck` classifies the
// reader's x/y loads as lock-protected(m) and flags the writer's stores
// racy against main's deliberately unlocked post-join reads (the static
// classifier does not model join ordering), so one program exercises
// both racecheck/* SARIF rules.  Used by the CI racecheck smoke step:
// `repro translate examples/locked.c --fence-analysis sync --run` /
// `repro analyze examples/locked.c --sync --racecheck`.
int m = 0;  // lock word (0 = unlocked, 1 = held)
int x = 0;
int y = 0;

int writer(int t) {
  mutex_lock(&m);
  x = t;
  y = t + 1;
  mutex_unlock(&m);
  return 0;
}

int reader(int t) {
  mutex_lock(&m);
  int b = y;
  int a = x;
  mutex_unlock(&m);
  return b - a;
}

int main() {
  int w = spawn(writer, 1);
  int r = spawn(reader, 0);
  join(w);
  join(r);
  return x + y - 3;
}
